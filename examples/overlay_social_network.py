#!/usr/bin/env python3
"""Overlay-network scenario: graph analytics over a social graph.

The paper's motivation (Section 1): distributed applications run as overlay
networks over shared infrastructure, so per-node bandwidth — not per-edge
bandwidth — is the constraint.  Here, n peers hold a social "friendship"
graph with heavy-tailed degrees (a preferential-attachment graph: a few
hubs with huge degree, but small arboricity) and jointly compute:

* an O(a)-orientation — the structural tool making hub degrees harmless;
* a maximal independent set — e.g. a scheduling/leader set in which no two
  friends are simultaneously active;
* a maximal matching — e.g. pairing peers for data exchange;
* an O(a)-coloring — e.g. slot assignment where friends never share a slot.

All four run over one set of broadcast trees, so the Lemma 5.1 setup cost
is paid once.  The naive MIS baseline is run for contrast: correct, but its
rounds track the hub degree.

Run:  python examples/overlay_social_network.py [n]
"""

import sys

from repro import NCCRuntime
from repro.algorithms import (
    ColoringAlgorithm,
    MISAlgorithm,
    MatchingAlgorithm,
    build_broadcast_trees,
)
from repro.analysis.tables import bench_config
from repro.baselines import sequential as seq
from repro.baselines.naive import naive_mis
from repro.graphs import arboricity, generators


def main(n: int = 96) -> None:
    g = generators.preferential_attachment(n, 2, seed=42)
    lo, hi = arboricity.arboricity_bounds(g)
    print(
        f"social graph: n={g.n}, m={g.m}, max degree {g.max_degree} "
        f"(hubs!), arboricity in [{lo}, {hi}]"
    )

    rt = NCCRuntime(n, bench_config(seed=3))

    # One-time structural setup shared by all analytics.
    bt = build_broadcast_trees(rt, g)
    print(
        f"\norientation: max outdegree {bt.orientation.max_outdegree} "
        f"(hub degree {g.max_degree} tamed to O(a))"
    )
    print(
        f"broadcast trees: congestion {bt.congestion()}, "
        f"setup {bt.setup_rounds} + orientation {bt.orientation_rounds} rounds"
    )

    mis = MISAlgorithm(rt, g, broadcast_trees=bt).run()
    assert seq.is_maximal_independent_set(g, mis.members)
    print(f"\nMIS:      {len(mis.members)} members, {mis.rounds} rounds, {mis.phases} phases")

    mm = MatchingAlgorithm(rt, g, broadcast_trees=bt).run()
    assert seq.is_maximal_matching(g, mm.edges)
    print(f"matching: {len(mm.edges)} pairs,   {mm.rounds} rounds, {mm.phases} phases")

    col = ColoringAlgorithm(rt, g, orientation=bt.orientation).run()
    assert seq.is_proper_coloring(g, col.colors)
    print(
        f"coloring: {col.colors_used()} colors (palette 2(1+ε)â = "
        f"{col.palette_size}; ∆+1 would be {g.max_degree + 1}), {col.rounds} rounds"
    )

    print(f"\ntotal rounds (incl. setup): {rt.net.round_index}")
    print(f"capacity violations: {rt.net.stats.violation_count}")

    # Contrast: naive MIS that talks to neighbours directly.  Honest note:
    # at this small scale the hub degree (~25) still fits a few capacity
    # batches, so direct sends win; the tree machinery's advantage is
    # asymptotic — its cost is polylog while the naive cost grows with
    # ∆/log n (see benchmarks/bench_ablation_naive.py for the scaling).
    rt2 = NCCRuntime(n, bench_config(seed=3))
    res = naive_mis(rt2, g)
    assert seq.is_maximal_independent_set(g, res.output)
    print(
        f"\nnaive MIS baseline (direct sends): {res.rounds} rounds vs "
        f"{mis.rounds} over broadcast trees\n"
        f"  (naive wins at n={n} where ∆={g.max_degree} ≈ capacity; its rounds "
        f"grow with ∆/log n,\n   the tree algorithm's stay polylog — the "
        f"crossover is the point of Sections 4-5)"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 96)
