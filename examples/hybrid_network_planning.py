#!/usr/bin/env python3
"""Hybrid-network scenario: BFS routing structure over an ad-hoc topology.

Section 1's hybrid-network story: cell phones communicate for free over
short-range ad-hoc links (the input graph — here a grid-like street layout,
planar so a ≤ 3) and additionally own a low-bandwidth cellular overlay (the
Node-Capacitated Clique).  The devices use the NCC to build a BFS tree of
the *ad-hoc* graph from a gateway node — e.g. to route traffic toward an
internet uplink over free links — in O((a + D + log n) log n) rounds, far
less than the D·⌈∆/log n⌉-ish cost of flooding the overlay naively.

The example also reuses the broadcast trees for a second BFS from a
different gateway: the setup is paid once per topology, not per query.

Run:  python examples/hybrid_network_planning.py [side]
"""

import math
import sys

from repro import NCCRuntime
from repro.algorithms import BFSAlgorithm, build_broadcast_trees
from repro.analysis.tables import bench_config
from repro.baselines.sequential import bfs_tree
from repro.graphs import generators, properties


def main(side: int = 10) -> None:
    g = generators.grid(side, side)
    n = g.n
    D = properties.diameter(g)
    print(f"ad-hoc street grid: {side}x{side} ({n} devices), diameter {D}, planar (a ≤ 3)")

    rt = NCCRuntime(n, bench_config(seed=11))
    bt = build_broadcast_trees(rt, g)
    print(
        f"cellular overlay ready: broadcast trees congestion {bt.congestion()}, "
        f"setup+orientation {bt.setup_rounds + bt.orientation_rounds} rounds"
    )

    gateways = [0, n - 1]
    for gw in gateways:
        res = BFSAlgorithm(rt, g, broadcast_trees=bt).run(gw)
        expected, _ = bfs_tree(g, gw)
        assert res.dist == expected
        reached = sum(1 for d in res.dist if d is not None)
        depth = max(d for d in res.dist if d is not None)
        bound = (3 + D + math.log2(n)) * math.log2(n)
        print(
            f"\ngateway {gw}: BFS tree over {reached} devices, depth {depth}, "
            f"{res.phases} phases, {res.rounds} rounds"
        )
        print(f"  paper bound (a + D + log n) log n = {bound:.0f}")

    # Each device now knows its uplink parent; print a sample route.
    res = BFSAlgorithm(rt, g, broadcast_trees=bt).run(0)
    node = n - 1
    route = [node]
    while res.parent[route[-1]] is not None:
        route.append(res.parent[route[-1]])
    print(f"\nroute from device {n-1} to gateway 0 over free ad-hoc links:")
    print("  " + " -> ".join(map(str, route)))
    print(f"\ntotal overlay rounds: {rt.net.round_index}, violations: {rt.net.stats.violation_count}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 10)
