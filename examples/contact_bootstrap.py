#!/usr/bin/env python3
"""Section 6's closing remark, made runnable: computing without knowing n−1
identifiers.

The NCC model assumes every node knows all identifiers, but the paper
closes by noting that its algorithms only need the input-graph neighbours
plus Θ(log n) random nodes.  This example exercises the substrate behind
that remark: starting from random contact lists and the *introduction rule*
(you may only message identifiers you have learned), the nodes

1. elect the minimum identifier by flooding minima over their contacts
   (O(log n) rounds — measured and printed),
2. keep the flooding's parent pointers as an O(log n)-depth aggregation
   tree, and
3. run Aggregate-and-Broadcast over that tree — the backbone primitive
   every algorithm in the paper leans on for synchronization — at the same
   O(log n) cost as the full-knowledge butterfly version (also measured).

Run:  python examples/contact_bootstrap.py [n]
"""

import math
import sys

from repro import NCCRuntime
from repro.analysis.tables import bench_config
from repro.overlay import (
    bootstrap_aggregation_tree,
    random_contact_lists,
    tree_aggregate_broadcast,
)
from repro.primitives import SUM


def main(n: int = 256) -> None:
    contacts = random_contact_lists(n, 2.0, seed=17)
    k = len(contacts[0])
    print(f"{n} nodes, each knowing only {k} random contacts (2·log₂ n = {2 * math.log2(n):.0f})")

    rt = NCCRuntime(n, bench_config(seed=4))
    tree = bootstrap_aggregation_tree(rt, contacts)
    print(
        f"\nbootstrap: leader {tree.leader} elected; flooding converged in "
        f"{tree.converged_round} rounds (log₂ n = {math.log2(n):.1f})"
    )
    print(f"aggregation tree: depth {tree.depth}, {len(tree.tree_levels())} levels")

    before = rt.net.round_index
    total = tree_aggregate_broadcast(rt, tree, {u: 1 for u in range(n)}, SUM)
    tree_rounds = rt.net.round_index - before
    assert total == n
    print(f"\nknowledge-free A&B: counted {total} nodes in {tree_rounds} rounds")

    rt2 = NCCRuntime(n, bench_config(seed=4))
    before = rt2.net.round_index
    rt2.aggregate_and_broadcast({u: 1 for u in range(n)}, SUM)
    bf_rounds = rt2.net.round_index - before
    print(f"full-knowledge butterfly A&B (Theorem 2.2): {bf_rounds} rounds")
    print(
        f"\nsame O(log n) regime — the model's all-identifiers assumption is a"
        f"\nconvenience, not a requirement, exactly as Section 6 claims."
    )
    print(f"capacity violations: {rt.net.stats.violation_count}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 256)
