#!/usr/bin/env python3
"""Quickstart: compute an MST in the Node-Capacitated Clique.

Builds a random weighted graph, runs the paper's O(log⁴ n) distributed MST
(Section 3) on a simulated NCC, checks the result against Kruskal, and
prints the round/message accounting — the numbers the paper is about.

Run:  python examples/quickstart.py [n]
"""

import sys

from repro import NCCRuntime
from repro.algorithms import MSTAlgorithm
from repro.analysis.tables import bench_config
from repro.baselines.sequential import kruskal_msf
from repro.graphs import generators, weights


def main(n: int = 48) -> None:
    # 1. An input graph: random connected, with random integer weights.
    g = generators.random_connected(n, extra_edge_prob=0.08, seed=7)
    g = weights.with_random_weights(g, seed=8)
    print(f"input graph: n={g.n}, m={g.m}, max degree {g.max_degree}")

    # 2. A Node-Capacitated Clique of the same n nodes.  Every node can
    #    send/receive O(log n) messages of O(log n) bits per round.
    rt = NCCRuntime(n, bench_config(seed=1))
    print(
        f"NCC model: capacity {rt.net.capacity} msgs/round/node, "
        f"{rt.net.message_bits} bits/message"
    )

    # 3. Run the distributed MST.
    result = MSTAlgorithm(rt, g).run()

    # 4. Verify against the sequential oracle.
    expected = kruskal_msf(g)
    assert result.edges == expected, "distributed MST disagrees with Kruskal!"
    print(
        f"\nMST found: {len(result.edges)} edges, weight {result.weight} "
        f"(matches Kruskal: {result.edges == expected})"
    )

    # 5. The accounting — what Theorem 3.2 bounds.
    import math

    log4 = math.log2(n) ** 4
    print(f"Boruvka phases:     {result.phases}  (O(log n) = ~{math.log2(n):.0f})")
    print(f"NCC rounds:         {result.rounds}  (O(log^4 n): log^4 n = {log4:.0f})")
    print(f"messages:           {rt.net.stats.messages}")
    print(f"capacity violations: {rt.net.stats.violation_count} (0 = stayed inside the model)")
    print("\nper-phase round breakdown:")
    for label in ("mst:findmin", "mst:tree-rebuild", "mst:coin", "mst:neighbor-setup"):
        ps = rt.net.stats.phase(label)
        print(f"  {label:20s} {ps.rounds:7d} rounds, {ps.messages:8d} messages")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 48)
