#!/usr/bin/env python3
"""Data-center scenario: the k-machine conversion of Appendix A.

A large graph is stored across k servers (random vertex partition, as in
the k-machine model of Klauck et al. [36]).  Instead of designing a new
k-machine algorithm, the servers *simulate* the NCC MST algorithm —
Corollary 2: a T-round NCC execution costs Õ(nT/k²) k-machine rounds, which
is how the paper recovers the MST bound of Pandurangan et al. [51].

The conversion runs live: the same NCC execution is observed under several
k values, and the table shows the k² scaling of the simulation cost.

Run:  python examples/datacenter_kmachine.py [n]
"""

import sys

from repro import NCCRuntime
from repro.algorithms import MSTAlgorithm
from repro.analysis.reporting import format_table
from repro.analysis.tables import bench_config
from repro.baselines.sequential import kruskal_msf
from repro.graphs import generators, weights
from repro.kmachine import KMachineSimulation


def main(n: int = 48) -> None:
    g = weights.with_random_weights(
        generators.forest_union(n, 2, seed=21), seed=22
    )
    print(f"graph to process: n={g.n}, m={g.m} (stored across k servers)")

    rows = []
    for k in (2, 4, 8, 16):
        rt = NCCRuntime(n, bench_config(seed=5))
        sim = KMachineSimulation(rt.net, k, seed=99)
        result = MSTAlgorithm(rt, g).run()
        cost = sim.detach()
        assert result.edges == kruskal_msf(g)
        rows.append(
            [
                k,
                cost.ncc_rounds,
                cost.kmachine_rounds,
                cost.cross_messages,
                cost.local_messages,
                round(cost.kmachine_rounds / cost.ncc_rounds, 2),
            ]
        )

    print()
    print(
        format_table(
            ["k servers", "NCC rounds T", "k-machine rounds", "cross msgs", "local msgs", "overhead"],
            rows,
            title="MST via NCC simulation on k machines (Corollary 2: Õ(nT/k²))",
        )
    )
    print(
        "\nreading: the overhead column shrinks toward 1 as k grows — with"
        "\nmore servers the per-link load falls like 1/k², leaving only the"
        "\nlockstep floor of one k-machine round per NCC round."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 48)
