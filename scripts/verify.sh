#!/usr/bin/env bash
# Tier-1 verification plus the engine-parity gates this repo's PRs must keep:
#
#   1. the full test-suite under the reference round engine (tier-1);
#   2. the same suite replayed under the batched round engine and again
#      under the sharded round engine (worker-pool delivery) — every test
#      must pass unchanged because the engines are observably identical;
#   3. the engine fast-path benchmark (>= 2x columnar engine speedup at
#      n = 1024 on steady-state resubmission, plus stats/drop parity on
#      violating rounds);
#   4. the columnar-submission benchmark (>= 1.5x end-to-end through
#      `exchange` on aggregation-heavy traffic at n = 1024, plus a full
#      aggregation-run no-regression check);
#   5. the lazy-inbox whole-run gate (>= 2x full-aggregation-run vs the
#      frozen PR 2 baseline at n = 1024, zero Message objects constructed
#      on the clean run);
#   6. the typed payload-column gates (>= 1.3x whole-aggregation-run vs
#      the object-column pipeline at n = 4096, zero Message objects and
#      zero Python payload boxes on the clean typed run), the
#      n = 4096/16384/65536 scale ladder, and a check that both sections
#      actually landed in BENCH_engine.json (the cross-PR trajectory
#      artifact);
#   7. the experiment-API sweep gates (Session.run_many byte-deterministic
#      for any jobs value through the serial path, the legacy fork pool,
#      and the persistent worker service; >= 1.2x fork speedup when >= 2
#      cores and >= 1.6x persistent-pool speedup at jobs=4 when >= 4
#      cores), plus a `python -m repro sweep` smoke whose JSONL lands in
#      SWEEP_results.jsonl (override with SWEEP_JSONL) for the CI artifact;
#   8. the scenario subsystem: per-family workload-build/run timings
#      (benchmarks/bench_scenarios.py -> BENCH_engine.json `scenarios`)
#      and a `python -m repro matrix` smoke (>= 6 families x >= 3
#      algorithms) whose JSONL lands in MATRIX_results.jsonl (override
#      with MATRIX_JSONL) next to the sweep artifact;
#   9. the sweep-stress smoke: a 1000-run grid driven through the
#      persistent pool into a sharded result store (SWEEP_store, override
#      with SWEEP_STORE), deliberately stopped at row 400 and resumed via
#      `sweep --resume`, then verified complete — exercising the manifest,
#      the store, and crash-safe resume end to end;
#  10. the sharded-engine ladder (benchmarks/bench_sharded.py ->
#      BENCH_engine.json `sharded_ladder`): batched vs sharded rounds/sec
#      at n = 10^5 and 10^6 — the n = 10^6 sharded row completing is an
#      acceptance artifact on any host; the speedup gate applies only on
#      >= 4 cores (below that the pool shares the parent's core);
#  11. the telemetry gates: the disabled-tracer overhead benchmark
#      (hook firings x guard cost <= 3% of the P-TYPED run ->
#      BENCH_engine.json `telemetry_overhead`), a traced parity replay
#      (tests/test_engine_parity.py under --tracing: live hooks must not
#      change a byte), and a traced smoke — `run --trace` into
#      TRACE_run.json (override with TRACE_RUN_JSON), `repro trace`
#      + `--bounds` summaries of it, and a pooled `sweep --telemetry`
#      whose merged trace/events/summary land in TRACE_sweep/ (override
#      with TRACE_SWEEP_DIR) for the CI artifact;
#  12. reprolint (`python -m repro lint --strict`): the AST invariant
#      checks — determinism, hot-path purity, registry discipline,
#      canonical-schema freeze, engine-parity locality, pool fork-safety,
#      telemetry clock containment —
#      fail on any non-baselined finding or a baseline that should have
#      shrunk; the JSON findings document lands in REPROLINT_findings.json
#      (override with REPROLINT_JSON) for the CI artifact;
#  13. a final check that every expected section actually landed in
#      BENCH_engine.json (the cross-PR trajectory artifact) — this is the
#      check that catches a benchmark silently dropping its section, as
#      `sweep_session` once did.
#
# Timings land in BENCH_engine.json (override with BENCH_ENGINE_JSON) so CI
# can archive the perf trajectory across PRs.
#
# Usage: scripts/verify.sh [extra pytest args]
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# The batched engine and both benchmark gates need numpy; fail up front with
# a clear message instead of an import traceback halfway through the suite.
if ! python -c "import numpy" >/dev/null 2>&1; then
    echo "verify: error: numpy is not installed." >&2
    echo "verify: the batched round engine and the benchmark gates require it;" >&2
    echo "verify: install it (pip install numpy) and re-run." >&2
    exit 1
fi

echo "== tier-1: reference engine =="
python -m pytest -x -q "$@"

echo "== replay: batched engine =="
python -m pytest -x -q --engine=batched "$@"

echo "== replay: sharded engine =="
python -m pytest -x -q --engine=sharded "$@"

echo "== engine fast-path benchmark =="
python -m pytest -q benchmarks/bench_engine_fastpath.py

echo "== columnar-submission benchmark =="
python -m pytest -q benchmarks/bench_primitives.py -k "columnar or no_regression"

echo "== lazy-inbox whole-run benchmark =="
python -m pytest -q benchmarks/bench_primitives.py -k "lazy"

echo "== typed payload-column benchmark (gate + scale ladder) =="
python -m pytest -q benchmarks/bench_primitives.py -k "typed_columns"

echo "== sweep session benchmark =="
python -m pytest -q benchmarks/bench_sweep.py

echo "== sweep smoke (parallel Session + JSONL) =="
python -m repro sweep --algos mst --ns 32 --seeds 0:2 --jobs 2 --out - \
    > "${SWEEP_JSONL:-SWEEP_results.jsonl}"
echo "sweep smoke wrote $(wc -l < "${SWEEP_JSONL:-SWEEP_results.jsonl}") reports"

echo "== scenario benchmark (per-family build + run timings) =="
python -m pytest -q benchmarks/bench_scenarios.py

echo "== scenario-matrix smoke (6 families x 3 algorithms) =="
python -m repro matrix --algos mis,matching,components \
    --scenarios forest-union,grid,star,cycle,pa-heavy-tail,ring-of-chords \
    --n 24 --jobs 2 --out "${MATRIX_JSONL:-MATRIX_results.jsonl}"
echo "matrix smoke wrote $(wc -l < "${MATRIX_JSONL:-MATRIX_results.jsonl}") reports"

echo "== sweep-stress smoke (1000-run grid, persistent pool, interrupt + resume) =="
SWEEP_STORE="${SWEEP_STORE:-SWEEP_store}"
rm -rf "$SWEEP_STORE"
python -m repro sweep --algos mis --ns 16 --seeds 0:250 \
    --scenarios star,cycle,grid,forest-union \
    --jobs 4 --store "$SWEEP_STORE" --shards 4 --max-rows 400
python -m repro sweep --resume "$SWEEP_STORE/manifest.jsonl" --jobs 4
python - "$SWEEP_STORE" <<'PY'
import sys
from repro.api import Manifest, ResultStore
store = ResultStore.open(sys.argv[1])
mani = Manifest.load(sys.argv[1] + "/manifest.jsonl")
assert store.count() == len(mani.specs) == 1000, (store.count(), len(mani.specs))
assert mani.complete, mani.done_rows
print(f"sweep stress: {store.count()} runs durable across {store.shards} "
      f"shards; interrupt at 400 + resume exercised")
PY

echo "== sharded engine ladder (n = 10^5 and 10^6) =="
python -m pytest -q benchmarks/bench_sharded.py

echo "== telemetry overhead gate (disabled hooks <= 3%) =="
python -m pytest -q benchmarks/bench_primitives.py -k "telemetry"

echo "== traced parity replay (live hooks change nothing) =="
python -m pytest -q tests/test_engine_parity.py tests/test_telemetry.py --tracing

echo "== telemetry smoke (run --trace, repro trace, sweep --telemetry) =="
TRACE_RUN_JSON="${TRACE_RUN_JSON:-TRACE_run.json}"
TRACE_SWEEP_DIR="${TRACE_SWEEP_DIR:-TRACE_sweep}"
rm -rf "$TRACE_SWEEP_DIR"
python -m repro run mst --n 64 --trace "$TRACE_RUN_JSON" > /dev/null
python -m repro trace "$TRACE_RUN_JSON" > /dev/null
python -m repro trace "$TRACE_RUN_JSON" --bounds | tail -n 3
python -m repro sweep --algos mis,matching --ns 32 --seeds 0:3 --jobs 2 \
    --telemetry "$TRACE_SWEEP_DIR" --out /dev/null
python -m repro trace "$TRACE_SWEEP_DIR/trace.json" | head -n 1
test -s "$TRACE_SWEEP_DIR/events.jsonl" && test -s "$TRACE_SWEEP_DIR/summary.txt"

echo "== reprolint (static invariant checks) =="
python -m repro lint src tests benchmarks --strict \
    --output "${REPROLINT_JSON:-REPROLINT_findings.json}"

echo "== bench-trajectory artifact check =="
python - <<'PY'
import json, os
path = os.environ.get("BENCH_ENGINE_JSON", "BENCH_engine.json")
with open(path, encoding="utf-8") as fh:
    data = json.load(fh)
required = ("typed_columns", "typed_columns_ladder", "sweep_session", "scenarios",
            "sharded_ladder", "telemetry_overhead")
missing = [s for s in required if s not in data]
assert not missing, f"{path} is missing sections: {missing}"
telem = data["telemetry_overhead"]
assert telem["disabled_overhead_frac"] <= telem["budget"], telem
gate = data["typed_columns"]
assert gate["whole_run_speedup"] >= gate["target"], gate
assert gate["messages_constructed_typed_run"] == 0, gate
assert gate["payload_boxes_typed_run"] == 0, gate
ladder = data["typed_columns_ladder"]
assert set(ladder) == {"4096", "16384", "65536"}, sorted(ladder)
sweep = data["sweep_session"]
assert sweep["grid_runs"] >= 12 and "speedup_persistent_jobs4" in sweep, sweep
shard = data["sharded_ladder"]
assert 1_000_000 in [row[0] for row in shard["rows"]], shard
print(f"{path}: {', '.join(required)} sections present "
      f"({len(data)} sections total)")
PY

echo "verify: all gates passed"
