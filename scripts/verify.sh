#!/usr/bin/env bash
# Tier-1 verification plus the engine-parity gates this repo's PRs must keep:
#
#   1. the full test-suite under the reference round engine (tier-1);
#   2. the same suite replayed under the batched round engine — every test
#      must pass unchanged because the engines are observably identical;
#   3. the engine fast-path benchmark (>= 2x columnar speedup at n = 1024
#      plus stats/drop parity on violating rounds).
#
# Usage: scripts/verify.sh [extra pytest args]
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: reference engine =="
python -m pytest -x -q "$@"

echo "== replay: batched engine =="
python -m pytest -x -q --engine=batched "$@"

echo "== engine fast-path benchmark =="
python -m pytest -q benchmarks/bench_engine_fastpath.py

echo "verify: all gates passed"
