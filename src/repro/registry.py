"""Algorithm registry: one source of truth for runnable experiments.

Before this module existed the repo knew its algorithms in four separate
places — the ``TABLE1_RUNNERS`` string-dict in :mod:`repro.analysis.tables`,
the CLI's hardcoded aliases, the differential parity harness, and the
``bench_table1_*`` benchmarks.  Now every algorithm module registers itself
once::

    from ..registry import register_algorithm

    @register_algorithm(
        "mst",
        aliases=("MST",),
        bound="O(log^4 n)",
        table1_key="MST",
        build_workload=_workload,
        check=_check,
        describe=_describe,
    )
    def _run(rt, g):
        return MSTAlgorithm(rt, g).run()

and every consumer — ``analysis.tables`` (kept as a deprecation shim), the
CLI dispatch, ``tests/test_engine_parity.py``, the benchmarks, and the
:class:`repro.api.Session` sweep driver — resolves algorithms through
:func:`get_algorithm` / :func:`iter_algorithms`.

An :class:`AlgorithmSpec` decomposes the old monolithic row runners into

* ``build_workload(n, a, seed, **options)`` — the standard input instance;
* ``run(rt, g, **options)`` — the distributed execution;
* ``check(g, output, params)`` — the sequential oracle;
* ``describe(g, output, rt, params)`` — the row descriptors (everything
  before the ``correct`` column).

:meth:`AlgorithmSpec.run_row` recomposes them into exactly the legacy
Table 1 row dict (same keys, same insertion order), which is pinned by
tests — old entry points must stay byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from importlib import import_module
from typing import TYPE_CHECKING, Any, Callable, Iterator

from .config import Enforcement, NCCConfig
from .errors import ConfigurationError
from .ncc.graph_input import InputGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .butterfly.topology import ButterflyGrid
    from .runtime import NCCRuntime


# ----------------------------------------------------------------------
# Shared experiment profile and workload helpers
# ----------------------------------------------------------------------
def bench_config(seed: int = 0, **overrides: Any) -> NCCConfig:
    """The benchmark simulation profile.

    ``lightweight_sync`` keeps the round accounting of barriers and token
    waves without materializing their messages, because the sweeps run
    hundreds of executions; fidelity tests elsewhere pin the full
    message-level mode.
    """
    base = dict(
        seed=seed,
        enforcement=Enforcement.COUNT,
        extras={"lightweight_sync": True},
    )
    base.update(overrides)
    return NCCConfig(**base)


def standard_workload(n: int, a: int, seed: int) -> InputGraph:
    """The bounded-arboricity workload of the T1 sweeps: a union of ``a``
    random spanning forests (arboricity ≤ a, connected).

    Equivalent to the ``forest-union`` scenario
    (:mod:`repro.scenarios.families`); kept as the legacy spelling for the
    :mod:`repro.analysis.tables` compatibility surface.
    """
    from .graphs import generators

    return generators.forest_union(n, a, seed=seed)


def describe_workload(
    g: InputGraph, *, with_diameter: bool = False, a_known: int | None = None
) -> dict[str, Any]:
    """The workload-descriptor columns every Table 1 row starts with."""
    from .graphs import arboricity, properties

    lo, hi = arboricity.arboricity_bounds(g)
    # A construction-time bound (e.g. forest_union(k) has a ≤ k) beats the
    # greedy estimate, which can overshoot by a constant factor.
    a_label = min(hi, a_known) if a_known is not None else hi
    row: dict[str, Any] = {
        "n": g.n,
        "m": g.m,
        "a": max(lo, a_label),
        "a_lower": lo,
        "a_greedy": hi,
        "max_degree": g.max_degree,
    }
    if with_diameter:
        row["D"] = properties.diameter(g)
    return row


# ----------------------------------------------------------------------
# The spec
# ----------------------------------------------------------------------
WorkloadBuilder = Callable[..., InputGraph]
Runner = Callable[..., Any]
OracleCheck = Callable[[InputGraph, Any, dict], bool]
RowDescriber = Callable[[InputGraph, Any, "NCCRuntime", dict], dict]


@dataclass(frozen=True)
class Execution:
    """One completed algorithm execution with everything observable."""

    #: the legacy Table 1 row dict (descriptors + outputs + correct).
    row: dict[str, Any]
    #: the algorithm's native result object.
    output: Any
    #: the runtime the execution ran on (stats, config, round counter).
    runtime: "NCCRuntime"
    #: the input instance.
    graph: InputGraph


@dataclass(frozen=True)
class AlgorithmSpec:
    """Everything the repo knows about one registered algorithm."""

    name: str
    run: Runner | None = None
    aliases: tuple[str, ...] = ()
    summary: str = ""
    #: the paper's round bound, e.g. ``"O(log^4 n)"``.
    bound: str | None = None
    #: Table 1 row key (``"MST"``…); ``None`` for non-Table-1 entries.
    table1_key: str | None = None
    #: ``(n, a, seed, **options) -> InputGraph``.
    build_workload: WorkloadBuilder | None = None
    #: sequential oracle: ``(g, output, params) -> bool``.
    check: OracleCheck | None = None
    #: row descriptors: ``(g, output, rt, params) -> dict`` — every column
    #: *before* ``correct`` (``messages``/``violations`` are appended by
    #: :meth:`execute`), in the exact legacy insertion order.
    describe: RowDescriber | None = None
    #: engine-parity observable override: ``(rt, g) -> comparable``.
    #: Defaults to ``run`` (results are value-comparable dataclasses).
    parity: Callable[..., Any] | None = None
    #: option names forwarded to ``build_workload`` (e.g. ``("family",)``).
    workload_options: tuple[str, ...] = ()
    #: ``"algorithm"`` or ``"subroutine"`` (registered for discovery/docs
    #: but not independently runnable).
    kind: str = "algorithm"
    #: scenario-registry name of the default workload; used when
    #: ``build_workload`` is not declared (``standard_workload``-style
    #: algorithms point at ``"forest-union"``).
    default_scenario: str | None = None
    #: workload guarantees this algorithm needs from a scenario, drawn
    #: from :data:`repro.scenarios.KNOWN_REQUIREMENTS` (e.g.
    #: ``("weights",)`` for MST).  Scenario resolution validates them.
    requires: tuple[str, ...] = ()

    # ------------------------------------------------------------------
    @property
    def has_workload(self) -> bool:
        """True when the spec can build its standard input instance."""
        return self.build_workload is not None or self.default_scenario is not None

    @property
    def runnable(self) -> bool:
        """True when the spec can produce Table-1-style rows."""
        return (
            self.run is not None
            and self.has_workload
            and self.check is not None
            and self.describe is not None
        )

    @property
    def supports_parity(self) -> bool:
        """True when the differential engine-parity harness can replay it."""
        return self.has_workload and (
            self.parity is not None or self.run is not None
        )

    # ------------------------------------------------------------------
    def workload(self, n: int, a: int = 2, seed: int = 0, **options: Any) -> InputGraph:
        """Build the standard input instance for this algorithm (an
        explicit ``build_workload``, else the declared default scenario)."""
        if self.build_workload is not None:
            return self.build_workload(n, a, seed, **options)
        if self.default_scenario is not None:
            from .scenarios import get_scenario

            return get_scenario(self.default_scenario).build(n, a, seed)
        raise ConfigurationError(f"algorithm {self.name!r} has no workload builder")

    def execute(
        self,
        n: int,
        *,
        a: int = 2,
        seed: int = 0,
        config: NCCConfig | None = None,
        graph: InputGraph | None = None,
        bf: "ButterflyGrid | None" = None,
        **options: Any,
    ) -> Execution:
        """Run the full workload→run→oracle→describe pipeline once.

        ``graph`` / ``bf`` allow a driver (:class:`repro.api.Session`) to
        inject cached instances; when omitted they are built here exactly
        like the legacy row runners did.
        """
        from .runtime import NCCRuntime

        if not self.runnable:
            raise ConfigurationError(
                f"algorithm {self.name!r} ({self.kind}) is not independently "
                "runnable; it has no complete workload/run/check/describe entry"
            )
        workload_kw = {k: options[k] for k in self.workload_options if k in options}
        run_kw = {k: v for k, v in options.items() if k not in self.workload_options}
        g = graph if graph is not None else self.workload(n, a, seed, **workload_kw)
        rt = NCCRuntime(g.n, config or bench_config(seed), bf=bf)
        output = self.run(rt, g, **run_kw)
        params = {"n": n, "a": a, "seed": seed, **options}
        row = self.describe(g, output, rt, params)
        row["correct"] = self.check(g, output, params)
        row["messages"] = rt.net.stats.messages
        row["violations"] = rt.net.stats.violation_count
        return Execution(row=row, output=output, runtime=rt, graph=g)

    def run_row(
        self,
        n: int,
        *,
        a: int = 2,
        seed: int = 0,
        config: NCCConfig | None = None,
        **options: Any,
    ) -> dict[str, Any]:
        """The legacy Table 1 row runner (kept byte-identical)."""
        return self.execute(n, a=a, seed=seed, config=config, **options).row

    def parity_run(self, rt: "NCCRuntime", *, n: int, a: int = 2, seed: int = 0) -> Any:
        """Run the algorithm on its parity-harness instance and return the
        comparable observable (used by ``tests/test_engine_parity.py``)."""
        if not self.supports_parity:
            raise ConfigurationError(f"algorithm {self.name!r} has no parity runner")
        g = self.workload(n, a, seed)
        fn = self.parity if self.parity is not None else self.run
        return fn(rt, g)


# ----------------------------------------------------------------------
# Registration and lookup
# ----------------------------------------------------------------------
#: Algorithm modules that self-register on import, in the registration
#: order that fixes the Table 1 row order (MST, BFS, MIS, MM, COL first).
_REGISTRY_MODULES = (
    "repro.algorithms.mst",
    "repro.algorithms.bfs",
    "repro.algorithms.mis",
    "repro.algorithms.matching",
    "repro.algorithms.coloring",
    "repro.algorithms.components",
    "repro.algorithms.orientation",
    "repro.algorithms.broadcast_trees",
    "repro.algorithms.identification",
    "repro.algorithms.findmin",
)

_SPECS: dict[str, AlgorithmSpec] = {}
_ALIASES: dict[str, str] = {}
_loaded = False


class UnknownAlgorithmError(ConfigurationError):
    """Raised when a name resolves to no registered algorithm."""


def register_algorithm(
    name: str,
    *,
    aliases: tuple[str, ...] = (),
    summary: str = "",
    bound: str | None = None,
    table1_key: str | None = None,
    build_workload: WorkloadBuilder | None = None,
    check: OracleCheck | None = None,
    describe: RowDescriber | None = None,
    parity: Callable[..., Any] | None = None,
    workload_options: tuple[str, ...] = (),
    kind: str = "algorithm",
    default_scenario: str | None = None,
    requires: tuple[str, ...] = (),
) -> Callable[[Runner | None], Runner | None]:
    """Class/function decorator registering an algorithm's run callable.

    The decorated callable (``(rt, g, **options) -> result``) is returned
    unchanged; the registry keeps an :class:`AlgorithmSpec` built from it
    plus the declared pieces.  Registering the same canonical name twice
    replaces the entry (latest wins), so modules are reload-safe.

    Registration is the integration point: a registered (runnable)
    algorithm is automatically runnable by name through ``RunSpec`` /
    ``Session``, every CLI subcommand (``run``/``sweep``/``matrix``),
    the engine-parity harness, and the oracle-check suite — no other
    wiring needed.

    Parameters
    ----------
    name / aliases:
        Canonical lookup name (lowercased) plus alternate spellings
        (``"MM"`` → ``matching``); all resolve via :func:`get_algorithm`.
    summary / bound / table1_key:
        Human-facing description, the paper's round bound (printed next
        to rows), and the Table 1 row key when the algorithm appears
        there.
    build_workload / workload_options:
        Input-instance builder ``(n, a, seed, **options) -> InputGraph``
        and the option names it accepts (forwarded from
        ``RunSpec.extras``; anything else is rejected at
        canonicalization).
    check / describe:
        Sequential-oracle correctness check and row describer — these
        are what make the algorithm's results *verifiable* in sweeps.
    parity:
        Optional callable exercised by the differential engine-parity
        harness.
    kind:
        ``"algorithm"`` (runnable) or ``"subroutine"`` (resolvable but
        not independently runnable, e.g. ``findmin``).
    default_scenario / requires:
        Default workload scenario, and the guarantee names a scenario
        must provide (``"weights"``, ``"connected"``) — checked by the
        scenario compatibility layer before any run.
    """

    def _register(run: Runner | None) -> Runner | None:
        spec = AlgorithmSpec(
            name=name.lower(),
            run=run,
            aliases=tuple(aliases),
            summary=summary,
            bound=bound,
            table1_key=table1_key,
            build_workload=build_workload,
            check=check,
            describe=describe,
            parity=parity,
            workload_options=tuple(workload_options),
            kind=kind,
            default_scenario=default_scenario,
            requires=tuple(requires),
        )
        _add_spec(spec)
        return run

    return _register


def _add_spec(spec: AlgorithmSpec) -> None:
    _SPECS[spec.name] = spec
    _ALIASES[spec.name] = spec.name
    for alias in spec.aliases:
        _ALIASES[alias.lower()] = spec.name
    if spec.table1_key:
        _ALIASES.setdefault(spec.table1_key.lower(), spec.name)


def _ensure_loaded() -> None:
    """Import every self-registering algorithm module exactly once."""
    global _loaded
    if _loaded:
        return
    _loaded = True  # set first so a lookup during the imports cannot recurse
    try:
        for module in _REGISTRY_MODULES:
            import_module(module)
    except Exception:
        # Leave the registry retryable and the real ImportError visible —
        # a sticky half-populated registry would surface as misleading
        # UnknownAlgorithmErrors on every later lookup.
        _loaded = False
        raise


def canonical_name(name: str) -> str:
    """Resolve a name or alias (case-insensitive) to the canonical key."""
    _ensure_loaded()
    key = _ALIASES.get(name.strip().lower())
    if key is None:
        # Suggest only runnable entries, sorted: registration order follows
        # transitive imports, and offering e.g. the findmin subroutine would
        # just set up a second error.
        raise UnknownAlgorithmError(
            f"unknown algorithm {name!r}; known algorithms: "
            f"{', '.join(sorted(algorithm_names(runnable_only=True)))}"
        )
    return key


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look up a registered algorithm by canonical name or alias."""
    return _SPECS[canonical_name(name)]


def algorithm_names(*, runnable_only: bool = False) -> tuple[str, ...]:
    """Canonical names in registration order."""
    _ensure_loaded()
    return tuple(
        s.name for s in _SPECS.values() if s.runnable or not runnable_only
    )


def iter_algorithms() -> Iterator[AlgorithmSpec]:
    """All registered specs in registration order."""
    _ensure_loaded()
    yield from _SPECS.values()


#: the paper's Table 1 row order (registration order can't pin it: any
#: direct ``import repro.algorithms.<x>`` before first registry use would
#: reorder the dict).
_TABLE1_ORDER = ("MST", "BFS", "MIS", "MM", "COL")


def table1_specs() -> tuple[AlgorithmSpec, ...]:
    """The Table 1 rows in the paper's row order (future rows with keys
    outside :data:`_TABLE1_ORDER` follow in registration order)."""
    _ensure_loaded()
    specs = [s for s in _SPECS.values() if s.table1_key]
    known = len(_TABLE1_ORDER)
    return tuple(
        sorted(
            specs,
            key=lambda s: (
                _TABLE1_ORDER.index(s.table1_key)
                if s.table1_key in _TABLE1_ORDER
                else known
            ),
        )
    )
