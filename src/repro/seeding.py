"""Sanctioned constructors for deterministic randomness.

Every random stream in the library must be reproducible from explicit
inputs (the master seed plus a protocol tag) — byte-determinism across
serial/fork/persistent sweeps depends on it, and `reprolint` rule NCC001
enforces it statically: this module is the *only* place allowed to call
``random.Random`` directly.  Library code builds its RNGs through

* :func:`seeded_rng` — an explicitly seeded stream (the seed is typically
  a pipe-joined tag string, e.g. ``f"contacts|{seed}|{n}|{multiplier}"``);
* :func:`derived_rng` — a stream keyed by a tag tuple; the seed is the
  tuple's ``repr``, so ``derived_rng("kwise", k, m, seed)`` is
  byte-identical to the historical
  ``random.Random(("kwise", k, m, seed).__repr__())`` spelling.

Both are re-exported from :mod:`repro.rng` for callers already importing
the randomness broker; :mod:`repro.hashing.kwise` imports from here
directly because ``rng.py`` itself imports ``kwise`` (the re-export would
cycle).

This module is deliberately a stdlib-only leaf so that anything — the
graph generators, the hashing layer, the network core — can depend on it
without import-order concerns.
"""

from __future__ import annotations

import random

__all__ = ["seeded_rng", "derived_rng"]


def seeded_rng(seed: int | str) -> random.Random:
    """A deterministic stream from an *explicit* seed.

    ``None`` is rejected rather than passed through: ``random.Random(None)``
    seeds from OS entropy, which is exactly the nondeterminism NCC001
    exists to keep out of the library.
    """
    if seed is None:
        raise TypeError(
            "seeded_rng requires an explicit seed; random.Random(None) "
            "would seed from OS entropy and break run reproducibility"
        )
    return random.Random(seed)


def derived_rng(*parts: object) -> random.Random:
    """A deterministic stream keyed by a tag tuple.

    The seed is ``repr(parts)``, which is stable across processes and
    Python versions for the int/str/float tags the library uses.
    """
    if not parts:
        raise TypeError("derived_rng requires at least one tag part")
    return seeded_rng(repr(parts))
