"""Shared and private randomness for the simulated nodes.

The paper's primitives rely on two kinds of randomness:

* **Shared (pseudo-)random hash functions** — all nodes must evaluate the
  same function.  Section 2.2: Θ(log n)-wise independence suffices, and
  agreeing on one function means broadcasting Θ(log² n) random bits from
  node 0.  :class:`SharedRandomness` derives every shared function from the
  master seed and *charges* the agreement (via a callback installed by the
  runtime, which performs a real pipelined butterfly broadcast) the first
  time a function with a given tag is requested.

* **Private randomness** — free local coin flips (random injection columns,
  Heads/Tails, MIS ranks).  ``node_rng(u, tag)`` returns a deterministic
  per-node stream so that simulations are reproducible from the master seed
  while distinct nodes and protocol steps stay independent.

All streams are built through the sanctioned constructors in
:mod:`repro.seeding` (re-exported here as :func:`seeded_rng` /
:func:`derived_rng`), the only module allowed to call ``random.Random``
directly — ``reprolint`` rule NCC001 checks this statically.
"""

from __future__ import annotations

import math
import random
from typing import Callable

from .config import NCCConfig
from .hashing.kwise import KWiseHash
from .seeding import derived_rng, seeded_rng

__all__ = ["RANK_RANGE", "SharedRandomness", "derived_rng", "seeded_rng"]

#: Range for packet ranks ρ(i).  Theorem B.2 needs K ≥ 8C; congestion C is
#: O(L/n + log n) = o(2^30) for every instance this library can simulate.
RANK_RANGE = 1 << 30


class SharedRandomness:
    """Deterministic randomness broker for one simulation run."""

    def __init__(
        self,
        config: NCCConfig,
        n: int,
        charge: Callable[[int], None] | None = None,
    ):
        self.config = config
        self.n = int(n)
        self._charge = charge
        self._cache: dict[object, KWiseHash | tuple[KWiseHash, ...]] = {}
        self._counter = 0
        self.agreement_bits = 0  # total shared random bits agreed upon

    # ------------------------------------------------------------------
    # Shared hash functions
    # ------------------------------------------------------------------
    def _model_k(self) -> int:
        return max(2, math.ceil(math.log2(max(2, self.n))) + 1)

    def _seed_for(self, tag: object) -> int:
        # Stable 64-bit seed derived from (master seed, tag).
        return seeded_rng(f"{self.config.seed}|{tag!r}").getrandbits(63)

    def _account(self, bits: int) -> None:
        self.agreement_bits += bits
        if self._charge is not None and self.config.charge_hash_agreement:
            self._charge(bits)

    def hash_function(self, tag: object, range_size: int, *, k: int | None = None) -> KWiseHash:
        """The shared hash function identified by ``tag`` (cached).

        The first request for a tag charges the broadcast that lets all
        nodes agree on its ``k·61`` random bits.
        """
        key = ("fn", tag, range_size, k)
        cached = self._cache.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        kk = k if k is not None else self._model_k()
        fn = KWiseHash(kk, range_size, self._seed_for(tag))
        self._cache[key] = fn
        self._account(fn.random_bits())
        return fn

    def hash_family(
        self, tag: object, count: int, range_size: int, *, k: int | None = None
    ) -> tuple[KWiseHash, ...]:
        """``count`` independent shared functions under one agreement."""
        key = ("fam", tag, count, range_size, k)
        cached = self._cache.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        kk = k if k is not None else self._model_k()
        base = self._seed_for(tag)
        fam = tuple(KWiseHash(kk, range_size, (base << 20) ^ i) for i in range(count))
        self._cache[key] = fam
        self._account(sum(f.random_bits() for f in fam))
        return fam

    def rank_function(self, tag: object = "global") -> KWiseHash:
        """Shared rank function ρ for the random-rank routing protocol.

        One function is agreed on per tag; per-invocation freshness comes
        from salting the *keys* (see :meth:`salted_key`), mirroring the
        paper's "retrieved beforehand" setup where the Θ(log² n) shared
        random bits are broadcast once, not per primitive call.
        """
        return self.hash_function(("rank", tag), RANK_RANGE)

    def target_function(self, columns: int, tag: object = "global") -> KWiseHash:
        """Shared intermediate-target function h mapping groups to level-d
        butterfly columns (same once-per-tag agreement as ranks)."""
        return self.hash_function(("target", tag, columns), columns)

    def next_nonce(self) -> int:
        """A fresh per-invocation nonce known to all nodes (a deterministic
        counter requires no communication)."""
        self._counter += 1
        return self._counter

    @staticmethod
    def salted_key(nonce: int, key: int) -> int:
        """Combine an invocation nonce with a group key into a hash input.

        Distinct (nonce, key) pairs map to distinct inputs for keys below
        2^64, which covers every group identifier this library produces.
        """
        return (nonce << 64) | (key & ((1 << 64) - 1)) ^ (key >> 64)

    # ------------------------------------------------------------------
    # Private per-node randomness (free)
    # ------------------------------------------------------------------
    def node_rng(self, node: int, tag: object) -> random.Random:
        """A private, reproducible stream for one node and protocol step."""
        return seeded_rng(f"{self.config.seed}|node|{node}|{tag!r}")

    def fresh_tag(self, base: str) -> tuple[str, int]:
        """A unique tag (for per-invocation hash functions)."""
        self._counter += 1
        return (base, self._counter)
