"""The bare k-machine network: k machines, per-link message budget.

This is the standalone substrate (usable directly, see
``examples/datacenter_kmachine.py``); the NCC→k-machine conversion in
:mod:`~repro.kmachine.simulation` builds on its accounting rules.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from ..errors import ConfigurationError
from ..rng import seeded_rng


@dataclass
class KMachineStats:
    rounds: int = 0
    messages: int = 0
    max_link_load: int = 0


class KMachineNetwork:
    """``k`` fully connected machines; one message per link per round.

    Messages are O(log n)-bit quanta: payload sizing is the caller's
    concern (the conversion layer slices NCC messages 1:1 since both models
    use O(log n)-bit messages).
    """

    def __init__(self, k: int, *, messages_per_link: int = 1):
        if k < 2:
            raise ConfigurationError("k-machine model needs k >= 2")
        if messages_per_link < 1:
            raise ConfigurationError("messages_per_link must be >= 1")
        self.k = k
        self.messages_per_link = messages_per_link
        self.stats = KMachineStats()
        self._pending: dict[tuple[int, int], list[Any]] = {}

    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, payload: Any) -> None:
        """Queue one message; it is delivered by the next :meth:`exchange`
        (possibly after several rounds if the link is saturated)."""
        self._check(src)
        self._check(dst)
        if src == dst:
            return  # machine-local, free
        self._pending.setdefault((src, dst), []).append(payload)

    def exchange(self) -> dict[int, list[tuple[int, Any]]]:
        """Deliver everything queued, advancing as many rounds as the most
        loaded link needs.  Returns per-machine inboxes as (src, payload)."""
        inboxes: dict[int, list[tuple[int, Any]]] = {}
        max_load = 0
        msgs = 0
        for (src, dst), queue in self._pending.items():
            max_load = max(max_load, len(queue))
            msgs += len(queue)
            for payload in queue:
                inboxes.setdefault(dst, []).append((src, payload))
        self._pending.clear()
        rounds = max(1, math.ceil(max_load / self.messages_per_link))
        self.stats.rounds += rounds
        self.stats.messages += msgs
        self.stats.max_link_load = max(self.stats.max_link_load, max_load)
        return inboxes

    def broadcast(self, src: int, payload: Any) -> None:
        """Queue a message to every other machine."""
        for dst in range(self.k):
            if dst != src:
                self.send(src, dst, payload)

    # ------------------------------------------------------------------
    def _check(self, machine: int) -> None:
        if not 0 <= machine < self.k:
            raise ValueError(f"machine {machine} outside [0, {self.k})")


def random_vertex_partition(n: int, k: int, seed: int = 0) -> list[int]:
    """Assign each of ``n`` graph nodes to a uniformly random machine —
    the standard input distribution of the k-machine model [36]."""
    rng = seeded_rng(f"kmachine-partition|{seed}|{n}|{k}")
    return [rng.randrange(k) for _ in range(n)]
