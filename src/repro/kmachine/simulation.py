"""NCC → k-machine conversion (Appendix A, Corollary 2).

Each machine hosts the NCC nodes assigned to it by the random vertex
partition and simulates their local computation for free; every NCC message
between nodes on different machines crosses the corresponding machine link
as one O(log n)-bit k-machine message.  One NCC round therefore costs

    max(1, ⌈max_{(M₁,M₂)} #messages(M₁→M₂) / messages_per_link⌉)

k-machine rounds.  Over a T-round NCC execution with Θ̃(n) messages per
round this telescopes to the corollary's Õ(n T / k²), which the
``bench_kmachine`` experiment verifies empirically.

The conversion runs *live*: it registers itself as the NCC network's round
observer, so any unmodified NCC algorithm can be measured under conversion
regardless of which round engine executes the rounds (the observer hook is
part of the engine-independent :meth:`~repro.ncc.network.NCCNetwork.exchange`
interface).  Link-load accounting mirrors the engines' columnar idiom: each
round's traffic becomes parallel ``(src, dst)`` arrays mapped through the
vertex partition, with a pure-Python fallback when numpy is unavailable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping

try:  # pragma: no cover - exercised only on numpy-free installs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from ..ncc.message import InboxBatch, MessageBatch
from ..ncc.network import NCCNetwork
from .model import random_vertex_partition


@dataclass
class KMachineCost:
    """Accumulated k-machine cost of an observed NCC execution."""

    kmachine_rounds: int = 0
    ncc_rounds: int = 0
    cross_messages: int = 0
    local_messages: int = 0
    max_link_load: int = 0


class KMachineSimulation:
    """Observe a live NCC run and account its k-machine simulation cost."""

    def __init__(
        self,
        net: NCCNetwork,
        k: int,
        *,
        seed: int = 0,
        messages_per_link: int = 1,
    ):
        if k < 2:
            raise ValueError("k must be >= 2")
        self.net = net
        self.k = k
        self.messages_per_link = messages_per_link
        self.assignment = random_vertex_partition(net.n, k, seed)
        self._assignment_arr = (
            _np.asarray(self.assignment, dtype=_np.int64) if _np is not None else None
        )
        self.cost = KMachineCost()
        self._prev_observer = net.round_observer
        net.round_observer = self._observe

    # ------------------------------------------------------------------
    def _observe(self, round_index: int, per_sender: Mapping[int, list]) -> None:
        if self._prev_observer is not None:
            self._prev_observer(round_index, per_sender)
        if self._assignment_arr is not None:
            cross, local, max_load = self._round_load_columnar(per_sender)
        else:
            cross, local, max_load = self._round_load_scalar(per_sender)
        self.cost.kmachine_rounds += max(
            1, math.ceil(max_load / self.messages_per_link)
        )
        self.cost.ncc_rounds += 1
        self.cost.cross_messages += cross
        self.cost.local_messages += local
        self.cost.max_link_load = max(self.cost.max_link_load, max_load)

    def _round_load_columnar(
        self, per_sender: Mapping[int, list]
    ) -> tuple[int, int, int]:
        """One round's (cross, local, max directed link load), computed over
        parallel ``(src, dst)`` arrays mapped through the partition."""
        groups = list(per_sender.values())
        total = sum(len(msgs) for msgs in groups)
        if total == 0:
            return 0, 0, 0
        if all(type(g) is MessageBatch for g in groups):
            # Columnar submissions already carry the (src, dst) columns; by
            # observer time the engine has validated src == sender key.
            cols = _np.concatenate([g.int_cols[:2] for g in groups], axis=1)
            src_ids, dst_ids = cols
        elif all(type(g) is InboxBatch for g in groups):
            # Lazy columnar submissions: read the id columns straight off
            # the batches — materializing Messages here would undo the
            # whole point of the deferred round.
            src_ids = _np.fromiter(
                (s for g in groups for s in g.srcs()), _np.int64, total
            )
            dst_ids = _np.fromiter(
                (d for g in groups for d in g.dsts()), _np.int64, total
            )
        else:
            src_ids = _np.fromiter(
                (src for src, msgs in per_sender.items() for _ in msgs),
                _np.int64,
                total,
            )
            dst_ids = _np.fromiter(
                (m.dst for msgs in per_sender.values() for m in msgs),
                _np.int64,
                total,
            )
        m_src = self._assignment_arr[src_ids]
        m_dst = self._assignment_arr[dst_ids]
        cross_mask = m_src != m_dst
        cross = int(cross_mask.sum())
        if cross == 0:
            return 0, total, 0
        # Directed machine link (M1, M2) encoded as M1 * k + M2.
        codes = m_src[cross_mask] * self.k + m_dst[cross_mask]
        max_load = int(_np.bincount(codes).max())
        return cross, total - cross, max_load

    def _round_load_scalar(
        self, per_sender: Mapping[int, list]
    ) -> tuple[int, int, int]:
        link_load: dict[tuple[int, int], int] = {}
        cross = 0
        local = 0
        for src, msgs in per_sender.items():
            m_src = self.assignment[src]
            dsts = (
                msgs.dsts()
                if type(msgs) is InboxBatch
                else (m.dst for m in msgs)
            )
            for m_dst in map(self.assignment.__getitem__, dsts):
                if m_src == m_dst:
                    local += 1
                else:
                    link_load[(m_src, m_dst)] = link_load.get((m_src, m_dst), 0) + 1
                    cross += 1
        return cross, local, max(link_load.values(), default=0)

    def detach(self) -> KMachineCost:
        """Stop observing; returns the accumulated cost."""
        self.net.round_observer = self._prev_observer
        return self.cost


def simulate_on_k_machines(
    make_runtime: Callable[[], "object"],
    run_algorithm: Callable[["object"], object],
    k: int,
    *,
    seed: int = 0,
) -> tuple[object, KMachineCost]:
    """Convenience wrapper: build a runtime, attach a k-machine observer,
    run the algorithm, detach, and return (algorithm result, cost)."""
    rt = make_runtime()
    sim = KMachineSimulation(rt.net, k, seed=seed)
    result = run_algorithm(rt)
    cost = sim.detach()
    return result, cost
