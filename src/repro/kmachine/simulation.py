"""NCC → k-machine conversion (Appendix A, Corollary 2).

Each machine hosts the NCC nodes assigned to it by the random vertex
partition and simulates their local computation for free; every NCC message
between nodes on different machines crosses the corresponding machine link
as one O(log n)-bit k-machine message.  One NCC round therefore costs

    max(1, ⌈max_{(M₁,M₂)} #messages(M₁→M₂) / messages_per_link⌉)

k-machine rounds.  Over a T-round NCC execution with Θ̃(n) messages per
round this telescopes to the corollary's Õ(n T / k²), which the
``bench_kmachine`` experiment verifies empirically.

The conversion runs *live*: it registers itself as the NCC network's round
observer, so any unmodified NCC algorithm can be measured under conversion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..ncc.network import NCCNetwork
from .model import random_vertex_partition


@dataclass
class KMachineCost:
    """Accumulated k-machine cost of an observed NCC execution."""

    kmachine_rounds: int = 0
    ncc_rounds: int = 0
    cross_messages: int = 0
    local_messages: int = 0
    max_link_load: int = 0


class KMachineSimulation:
    """Observe a live NCC run and account its k-machine simulation cost."""

    def __init__(
        self,
        net: NCCNetwork,
        k: int,
        *,
        seed: int = 0,
        messages_per_link: int = 1,
    ):
        if k < 2:
            raise ValueError("k must be >= 2")
        self.net = net
        self.k = k
        self.messages_per_link = messages_per_link
        self.assignment = random_vertex_partition(net.n, k, seed)
        self.cost = KMachineCost()
        self._prev_observer = net.round_observer
        net.round_observer = self._observe

    # ------------------------------------------------------------------
    def _observe(self, round_index: int, per_sender: Mapping[int, list]) -> None:
        if self._prev_observer is not None:
            self._prev_observer(round_index, per_sender)
        link_load: dict[tuple[int, int], int] = {}
        cross = 0
        local = 0
        for src, msgs in per_sender.items():
            m_src = self.assignment[src]
            for m in msgs:
                m_dst = self.assignment[m.dst]
                if m_src == m_dst:
                    local += 1
                else:
                    link_load[(m_src, m_dst)] = link_load.get((m_src, m_dst), 0) + 1
                    cross += 1
        max_load = max(link_load.values(), default=0)
        self.cost.kmachine_rounds += max(
            1, math.ceil(max_load / self.messages_per_link)
        )
        self.cost.ncc_rounds += 1
        self.cost.cross_messages += cross
        self.cost.local_messages += local
        self.cost.max_link_load = max(self.cost.max_link_load, max_load)

    def detach(self) -> KMachineCost:
        """Stop observing; returns the accumulated cost."""
        self.net.round_observer = self._prev_observer
        return self.cost


def simulate_on_k_machines(
    make_runtime: Callable[[], "object"],
    run_algorithm: Callable[["object"], object],
    k: int,
    *,
    seed: int = 0,
) -> tuple[object, KMachineCost]:
    """Convenience wrapper: build a runtime, attach a k-machine observer,
    run the algorithm, detach, and return (algorithm result, cost)."""
    rt = make_runtime()
    sim = KMachineSimulation(rt.net, k, seed=seed)
    result = run_algorithm(rt)
    cost = sim.detach()
    return result, cost
