"""The k-machine model and the NCC conversion (Appendix A).

Klauck et al.'s k-machine model [36]: ``k`` fully-interconnected machines,
each link carrying one O(log n)-bit message per synchronous round.  A graph
on ``n`` nodes is *random-vertex-partitioned*: each node (with its incident
edges) lands on a uniformly random machine.

Corollary 2: any NCC algorithm running in ``T`` rounds simulates in
``Õ(n T / k²)`` k-machine rounds — each machine simulates its ~n/k nodes
and per NCC round the Θ̃(n) messages spread across the k(k−1) links.
:class:`~repro.kmachine.simulation.KMachineSimulation` executes this
conversion for real by observing every round of a live NCC run.
"""

from .model import KMachineNetwork, KMachineStats
from .simulation import KMachineSimulation, simulate_on_k_machines

__all__ = [
    "KMachineNetwork",
    "KMachineStats",
    "KMachineSimulation",
    "simulate_on_k_machines",
]
