"""repro.scenarios — named topology×weights families as a sweep axis.

Symmetric to the algorithm registry (:mod:`repro.registry`): every
scenario self-registers a :class:`ScenarioSpec` (deterministic builder +
declared guarantees) via :func:`register_scenario`, and every consumer —
:class:`repro.api.Session` (the ``RunSpec.scenario`` field),
``python -m repro sweep --scenarios`` / ``python -m repro matrix``, the
guarantee property suite, and ``benchmarks/bench_scenarios.py`` —
resolves scenarios through :func:`get_scenario` / :func:`iter_scenarios`.

Quickstart::

    from repro.api import RunSpec, Session

    report = Session().run(RunSpec("mis", n=64, scenario="pa-heavy-tail"))
    print(report.spec.scenario, report.rounds, report.correct)
"""

from .registry import (
    DIAMETER_CLASSES,
    KNOWN_REQUIREMENTS,
    ScenarioCompatibilityError,
    ScenarioSpec,
    UnknownScenarioError,
    canonical_scenario_name,
    check_compatible,
    compatible_scenarios,
    get_scenario,
    is_compatible,
    iter_scenarios,
    register_scenario,
    scenario_names,
)

__all__ = [
    "DIAMETER_CLASSES",
    "KNOWN_REQUIREMENTS",
    "ScenarioCompatibilityError",
    "ScenarioSpec",
    "UnknownScenarioError",
    "canonical_scenario_name",
    "check_compatible",
    "compatible_scenarios",
    "get_scenario",
    "is_compatible",
    "iter_scenarios",
    "register_scenario",
    "scenario_names",
]
