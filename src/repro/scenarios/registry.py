"""Scenario registry: named topology×weights families as a sweep axis.

A *scenario* is a deterministic workload builder — a topology family from
:mod:`repro.graphs.generators`, optionally composed with a weight regime
from :mod:`repro.graphs.weights` — together with its **declared
guarantees**: an arboricity bound (witnessed by the greedy Nash-Williams
forest partition in :mod:`repro.graphs.arboricity`), connectivity,
diameter class, and degree profile.  Scenarios are registered exactly like
algorithms::

    from repro.scenarios import register_scenario

    @register_scenario(
        "grid",
        summary="square grid: planar, diameter Θ(√n)",
        arboricity=lambda n, a: 3,
        diameter="sqrt",
    )
    def _build(n: int, a: int, seed: int) -> InputGraph:
        side = max(2, round(n**0.5))
        return generators.grid(side, side)

and every consumer resolves them here: :class:`repro.api.Session` (the
``RunSpec.scenario`` field), ``python -m repro sweep --scenarios`` /
``python -m repro matrix``, the guarantee property suite
(``tests/test_scenarios.py``), and ``benchmarks/bench_scenarios.py`` —
registering a new scenario automatically lands it on all of them.

Algorithms declare **requirements** (``requires=("weights",)`` on their
:class:`~repro.registry.AlgorithmSpec`); :func:`check_compatible`
validates a pairing and raises :class:`ScenarioCompatibilityError` — a
clean registry error, never a mid-run traceback — when a scenario cannot
provide what the algorithm needs.

Guarantee semantics (what the property suite asserts):

* ``arboricity(n, a)`` — a declared upper bound ``B`` on the built
  graph's true arboricity ``a(G)`` (``None`` = no declared bound).  The
  suite certifies it through the Nash-Williams sandwich in
  :mod:`repro.graphs.arboricity`: the density lower bound (Nash-Williams
  with the peeling-suffix subgraphs as witnesses) must not exceed ``B``,
  and the degeneracy must respect ``degeneracy ≤ 2B − 1`` — both are
  theorems for any graph with ``a(G) ≤ B``, so a lying declaration is
  refuted by the witness whenever a subgraph is denser than ``B`` forests
  allow.
* ``connected=True`` — every built graph is connected.  ``False`` means
  connectivity is *not guaranteed* (nothing is asserted).
* ``weighted`` — whether built graphs carry edge weights (asserted both
  ways; algorithms with ``requires=("weights",)`` only accept ``True``).
* ``diameter`` — a class from :data:`DIAMETER_CLASSES`, checked against
  the exact diameter of the largest component.
* ``degrees`` — a descriptive label (``"balanced"``, ``"regular"``,
  ``"heavy-tail"``, ``"star"``) for docs and the matrix display.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from importlib import import_module
from typing import TYPE_CHECKING, Any, Callable, Iterator

from ..errors import ConfigurationError
from ..ncc.graph_input import InputGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..registry import AlgorithmSpec

#: ``(n, a, seed) -> InputGraph`` — deterministic in all three arguments.
ScenarioBuilder = Callable[[int, int, int], InputGraph]
#: ``(n, a) -> int`` — declared arboricity-witness bound for requested n, a.
ArboricityBound = Callable[[int, int], int]

#: Requirement names algorithms may declare (``AlgorithmSpec.requires``).
KNOWN_REQUIREMENTS = ("weights", "connected")

#: Diameter classes: predicate over (requested-or-built n, exact diameter
#: of the largest component).  Constants are generous — the classes sort
#: scenarios into regimes, they are not tight bounds.
DIAMETER_CLASSES: dict[str, Callable[[int, int], bool]] = {
    "constant": lambda n, d: d <= 2,
    "log": lambda n, d: d <= 6 * math.log2(max(2, n)) + 4,
    "sqrt": lambda n, d: d <= 4 * math.isqrt(max(1, n)) + 4,
    "linear": lambda n, d: d <= max(1, n),
}

#: Degree-profile labels (descriptive; shown by ``python -m repro matrix``).
DEGREE_PROFILES = ("balanced", "regular", "heavy-tail", "star")


class UnknownScenarioError(ConfigurationError):
    """Raised when a name resolves to no registered scenario."""


class ScenarioCompatibilityError(ConfigurationError):
    """Raised when an algorithm's requirements rule out a scenario."""


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything the repo knows about one registered scenario."""

    name: str
    build: ScenarioBuilder
    aliases: tuple[str, ...] = ()
    summary: str = ""
    #: declared arboricity-witness bound ``(n, a) -> int`` (None = unknown).
    arboricity: ArboricityBound | None = None
    connected: bool = True
    weighted: bool = False
    diameter: str = "linear"
    degrees: str = "balanced"
    #: whether the ``a`` sweep knob changes the built graph.
    uses_a: bool = False
    #: topology scenario a weighted variant wraps (for docs/matrix).
    base: str | None = None

    def __post_init__(self) -> None:
        if self.diameter not in DIAMETER_CLASSES:
            raise ConfigurationError(
                f"scenario {self.name!r}: unknown diameter class "
                f"{self.diameter!r}; choose from {', '.join(DIAMETER_CLASSES)}"
            )
        if self.degrees not in DEGREE_PROFILES:
            raise ConfigurationError(
                f"scenario {self.name!r}: unknown degree profile "
                f"{self.degrees!r}; choose from {', '.join(DEGREE_PROFILES)}"
            )

    # ------------------------------------------------------------------
    def provides(self, requirement: str) -> bool:
        """Whether this scenario satisfies one algorithm requirement."""
        if requirement == "weights":
            return self.weighted
        if requirement == "connected":
            return self.connected
        raise ConfigurationError(
            f"unknown algorithm requirement {requirement!r}; known "
            f"requirements: {', '.join(KNOWN_REQUIREMENTS)}"
        )

    def effective_a(self, n: int, a: int) -> int:
        """The arboricity label for rows: the declared bound when the
        family pins one, else the requested ``a`` knob."""
        return self.arboricity(n, a) if self.arboricity is not None else a

    def guarantees(self, n: int = 64, a: int = 2) -> dict[str, Any]:
        """The declared guarantees as a plain dict (docs / matrix); the
        arboricity bound is shown evaluated at the reference ``(n, a)``
        (``"a"`` for a-controlled families)."""
        return {
            "arboricity": "unbounded/unknown"
            if self.arboricity is None
            else "a" if self.uses_a else self.arboricity(n, a),
            "connected": self.connected,
            "weighted": self.weighted,
            "diameter": self.diameter,
            "degrees": self.degrees,
        }


# ----------------------------------------------------------------------
# Registration and lookup (mirrors repro.registry for algorithms)
# ----------------------------------------------------------------------
#: Modules that self-register scenarios on import; registration order is
#: the display order of the matrix columns and ``scenario_names()``.
_REGISTRY_MODULES = ("repro.scenarios.families",)

_SPECS: dict[str, ScenarioSpec] = {}
_ALIASES: dict[str, str] = {}
_loaded = False


def register_scenario(
    name: str,
    *,
    aliases: tuple[str, ...] = (),
    summary: str = "",
    arboricity: ArboricityBound | None = None,
    connected: bool = True,
    weighted: bool = False,
    diameter: str = "linear",
    degrees: str = "balanced",
    uses_a: bool = False,
    base: str | None = None,
) -> Callable[[ScenarioBuilder], ScenarioBuilder]:
    """Decorator registering a scenario's builder callable.

    The decorated builder (``(n, a, seed) -> InputGraph``) is returned
    unchanged; the registry keeps a :class:`ScenarioSpec` built from it
    plus the declared guarantees.  Registering the same canonical name
    twice replaces the entry (latest wins), so modules are reload-safe.

    A registered scenario automatically lands on every axis: the
    ``--scenarios`` sweep axis, the algorithm×scenario ``matrix``, the
    scenario listing, the guarantee-certification suite
    (``tests/test_scenarios.py`` property-tests every declaration
    below), and the scenario benchmarks.

    Parameters
    ----------
    name / aliases:
        Canonical lookup name (lowercased) plus alternate spellings
        (``"PA"`` → ``pa-heavy-tail``); resolve via
        :func:`get_scenario` / :func:`canonical_scenario_name`.
    summary:
        One-line human description shown by ``python -m repro scenarios``.
    arboricity:
        Declared arboricity bound as a callable ``(n, a) -> int``
        (constant for fixed families, knob-tracking for a-controlled
        ones); certified against the Nash-Williams density bound.
        ``None`` means unbounded (the trivial ``n`` bound is displayed).
    connected / weighted / diameter / degrees:
        Declared guarantees: connectivity, edge weights, diameter class
        (``"constant"``/``"log"``/``"sqrt"``/``"linear"``), degree
        profile (``"regular"``/``"heavy-tail"``/``"star"``).  Algorithm
        ``requires`` tuples (e.g. ``("weights",)``) are matched against
        these — a requirement the scenario cannot provide makes the
        pair incompatible.
    uses_a:
        Whether the builder actually consumes the arboricity knob
        (a-controlled families); knob-insensitive families ignore it.
    base:
        For weighted compositions: the underlying topology family whose
        structural guarantees this scenario inherits.
    """

    def _register(build: ScenarioBuilder) -> ScenarioBuilder:
        spec = ScenarioSpec(
            name=name.lower(),
            build=build,
            aliases=tuple(aliases),
            summary=summary,
            arboricity=arboricity,
            connected=connected,
            weighted=weighted,
            diameter=diameter,
            degrees=degrees,
            uses_a=uses_a,
            base=base,
        )
        _add_spec(spec)
        return build

    return _register


def _add_spec(spec: ScenarioSpec) -> None:
    _SPECS[spec.name] = spec
    _ALIASES[spec.name] = spec.name
    for alias in spec.aliases:
        _ALIASES[alias.lower()] = spec.name


def _ensure_loaded() -> None:
    """Import every self-registering scenario module exactly once."""
    global _loaded
    if _loaded:
        return
    _loaded = True  # set first so a lookup during the imports cannot recurse
    try:
        for module in _REGISTRY_MODULES:
            import_module(module)
    except Exception:
        # Keep the registry retryable with the real ImportError visible.
        _loaded = False
        raise


def canonical_scenario_name(name: str) -> str:
    """Resolve a name or alias (case-insensitive) to the canonical key."""
    _ensure_loaded()
    key = _ALIASES.get(name.strip().lower())
    if key is None:
        raise UnknownScenarioError(
            f"unknown scenario {name!r}; known scenarios: "
            f"{', '.join(sorted(_SPECS))}"
        )
    return key


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by canonical name or alias."""
    return _SPECS[canonical_scenario_name(name)]


def scenario_names() -> tuple[str, ...]:
    """Canonical scenario names in registration order."""
    _ensure_loaded()
    return tuple(_SPECS)


def iter_scenarios() -> Iterator[ScenarioSpec]:
    """All registered scenario specs in registration order."""
    _ensure_loaded()
    yield from _SPECS.values()


# ----------------------------------------------------------------------
# Algorithm × scenario compatibility
# ----------------------------------------------------------------------
def missing_requirements(
    alg: "AlgorithmSpec", scenario: ScenarioSpec
) -> tuple[str, ...]:
    """The algorithm requirements this scenario cannot provide."""
    return tuple(r for r in alg.requires if not scenario.provides(r))


def is_compatible(alg: "AlgorithmSpec", scenario: ScenarioSpec) -> bool:
    return not missing_requirements(alg, scenario)


def check_compatible(alg: "AlgorithmSpec", scenario: ScenarioSpec) -> None:
    """Raise :class:`ScenarioCompatibilityError` unless the scenario
    provides everything the algorithm requires."""
    missing = missing_requirements(alg, scenario)
    if missing:
        ok = compatible_scenarios(alg)
        hint = (
            f"; scenarios compatible with {alg.name!r}: {', '.join(sorted(ok))}"
            if ok
            else ""
        )
        raise ScenarioCompatibilityError(
            f"scenario {scenario.name!r} does not satisfy "
            f"{alg.name!r}'s requirement(s) {', '.join(missing)} "
            f"(scenario guarantees: weighted={scenario.weighted}, "
            f"connected={scenario.connected}){hint}"
        )


def compatible_scenarios(alg: "AlgorithmSpec") -> tuple[str, ...]:
    """Canonical names of every scenario the algorithm can run on."""
    return tuple(s.name for s in iter_scenarios() if is_compatible(alg, s))
