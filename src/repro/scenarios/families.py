"""The built-in scenario families.

Every generator family in :mod:`repro.graphs.generators` is registered
here as a named scenario, plus weighted compositions with the regimes in
:mod:`repro.graphs.weights` (the issue-driving examples:
``grid-unique-weights``, ``pa-heavy-tail``, ``cliques-disconnected``).

Builders take ``(n, a, seed)``; families whose natural size is quantized
(grid, hypercube, caterpillar) round the requested ``n`` — the same
convention :class:`~repro.api.schema.RunSpec` documents for workload
builders.  Weighted variants derive their weight seed as ``seed + 1``,
matching the MST default workload byte-for-byte.

Declared arboricity bounds are construction-time bounds on the true
arboricity ``a(G)`` (union of ``k`` forests ⇒ ``a ≤ k``; planar ⇒
``a ≤ 3``; BA with ``m0 = 3`` ⇒ ``a ≤ 4``; ``K_k`` ⇒ ``a = ⌈k/2⌉``; …).
The guarantee suite certifies them against the Nash-Williams machinery in
:mod:`repro.graphs.arboricity` — see :mod:`repro.scenarios.registry` for
the exact obligations.
"""

from __future__ import annotations

from typing import Callable

from ..graphs import generators, weights
from ..ncc.graph_input import InputGraph
from .registry import get_scenario, register_scenario

# ----------------------------------------------------------------------
# Topology families
# ----------------------------------------------------------------------


@register_scenario(
    "forest-union",
    aliases=("forest",),
    summary="union of a random spanning forests (the Table 1 workhorse)",
    arboricity=lambda n, a: a,
    diameter="log",
    uses_a=True,
)
def _forest_union(n: int, a: int, seed: int) -> InputGraph:
    return generators.forest_union(n, a, seed=seed)


@register_scenario(
    "random-tree",
    aliases=("tree",),
    summary="uniform random recursive tree: a = 1, diameter O(log n) w.h.p.",
    arboricity=lambda n, a: 1,
    diameter="log",
)
def _random_tree(n: int, a: int, seed: int) -> InputGraph:
    return generators.random_tree(n, seed=seed)


@register_scenario(
    "path",
    summary="the path: a = 1, diameter n − 1 (worst-case D)",
    arboricity=lambda n, a: 1,
    diameter="linear",
)
def _path(n: int, a: int, seed: int) -> InputGraph:
    return generators.path(n)


@register_scenario(
    "cycle",
    summary="the n-cycle: a = 2, diameter ⌊n/2⌋",
    arboricity=lambda n, a: 2,
    diameter="linear",
    degrees="regular",
)
def _cycle(n: int, a: int, seed: int) -> InputGraph:
    return generators.cycle(max(3, n))


@register_scenario(
    "star",
    summary="star: a = 1 at maximum ∆ (the a-vs-∆ separator of Section 5)",
    arboricity=lambda n, a: 1,
    diameter="constant",
    degrees="star",
)
def _star(n: int, a: int, seed: int) -> InputGraph:
    return generators.star(max(2, n))


@register_scenario(
    "caterpillar",
    summary="spine path with 3 pendant leaves per spine node (tree, mixed D/∆)",
    arboricity=lambda n, a: 1,
    diameter="linear",
)
def _caterpillar(n: int, a: int, seed: int) -> InputGraph:
    return generators.caterpillar(max(2, n // 4), 3)


@register_scenario(
    "grid",
    summary="square grid: planar (a ≤ 3), diameter Θ(√n) — BFS's D-dependence",
    arboricity=lambda n, a: 3,
    diameter="sqrt",
)
def _grid(n: int, a: int, seed: int) -> InputGraph:
    side = max(2, int(round(n**0.5)))
    return generators.grid(side, side)


@register_scenario(
    "hypercube",
    summary="hypercube on 2^⌊log2 n⌋ nodes: log-degree, log-diameter",
    arboricity=lambda n, a: max(1, (max(2, n).bit_length() - 1)),
    diameter="log",
    degrees="regular",
)
def _hypercube(n: int, a: int, seed: int) -> InputGraph:
    return generators.hypercube(max(1, max(2, n).bit_length() - 1))


@register_scenario(
    "complete",
    aliases=("clique",),
    summary="K_n: a = Θ(n) — the high-arboricity stress case",
    arboricity=lambda n, a: max(1, (n + 1) // 2),
    diameter="constant",
    degrees="regular",
)
def _complete(n: int, a: int, seed: int) -> InputGraph:
    return generators.complete(n)


@register_scenario(
    "pa-heavy-tail",
    aliases=("preferential-attachment", "pa"),
    summary="Barabási–Albert (m0 = 3): heavy-tailed degrees at a ≤ 4",
    arboricity=lambda n, a: 4,
    diameter="log",
    degrees="heavy-tail",
)
def _pa_heavy_tail(n: int, a: int, seed: int) -> InputGraph:
    return generators.preferential_attachment(n, 3, seed=seed)


@register_scenario(
    "ring-of-chords",
    aliases=("chordal-ring",),
    summary="cycle + 2 random chords per node: expander-like, diameter O(log n)",
    arboricity=lambda n, a: 4,
    diameter="log",
)
def _ring_of_chords(n: int, a: int, seed: int) -> InputGraph:
    return generators.ring_of_chords(max(3, n), 2, seed=seed)


@register_scenario(
    "series-parallel",
    aliases=("sp",),
    summary="random series-parallel graph: treewidth ≤ 2, a ≤ 2",
    arboricity=lambda n, a: 2,
    diameter="linear",
)
def _series_parallel(n: int, a: int, seed: int) -> InputGraph:
    return generators.series_parallel(max(2, n), seed=seed)


@register_scenario(
    "cliques-disconnected",
    aliases=("disjoint-cliques",),
    summary="disjoint 8-cliques: disconnected input (spanning-*forest* path)",
    arboricity=lambda n, a: 4,
    connected=False,
    diameter="constant",
    degrees="regular",
)
def _cliques_disconnected(n: int, a: int, seed: int) -> InputGraph:
    return generators.disjoint_cliques(n, 8)


@register_scenario(
    "gnp-sparse",
    summary="Erdős–Rényi G(n, 3/n): supercritical but not guaranteed connected",
    arboricity=None,
    connected=False,
    diameter="linear",
)
def _gnp_sparse(n: int, a: int, seed: int) -> InputGraph:
    return generators.gnp(n, min(1.0, 3.0 / max(1, n)), seed=seed)


@register_scenario(
    "bipartite-sparse",
    aliases=("bipartite",),
    summary="random bipartite, expected degree ≈ 4: 2-colorable contrast family",
    arboricity=None,
    connected=False,
    diameter="linear",
)
def _bipartite_sparse(n: int, a: int, seed: int) -> InputGraph:
    left = max(1, n // 2)
    right = max(1, n - left)
    return generators.random_bipartite(left, right, min(1.0, 8.0 / max(1, n)), seed=seed)


# ----------------------------------------------------------------------
# Weighted compositions (topology × weight regime)
# ----------------------------------------------------------------------
WeightRegime = Callable[[InputGraph, int], InputGraph]

#: regime name -> (apply(g, seed), summary fragment).  The weight seed is
#: ``seed + 1``, matching the legacy MST workload byte-for-byte.
WEIGHT_REGIMES: dict[str, tuple[WeightRegime, str]] = {
    "random-weights": (
        lambda g, seed: weights.with_random_weights(g, seed=seed + 1),
        "uniform weights in {1..n²} (ties exercise id tie-breaking)",
    ),
    "unique-weights": (
        lambda g, seed: weights.with_unique_weights(g, seed=seed + 1),
        "a permutation of {1..m}: all weights distinct, unique MST",
    ),
    "constant-weights": (
        lambda g, seed: weights.with_constant_weights(g),
        "all ties: the sketch search runs purely on identifiers",
    ),
}


def register_weighted_variant(base_name: str, regime_name: str) -> str:
    """Register ``<base>-<regime>``: the base topology with the weight
    regime applied on top (weight seed = ``seed + 1``).  The variant
    inherits every guarantee of the base except ``weighted``.  Returns the
    new scenario's canonical name.
    """
    base = get_scenario(base_name)
    regime, regime_doc = WEIGHT_REGIMES[regime_name]
    name = f"{base.name}-{regime_name}"

    def _build(n: int, a: int, seed: int) -> InputGraph:
        return regime(base.build(n, a, seed), seed)

    register_scenario(
        name,
        summary=f"{base.summary}; {regime_doc}",
        arboricity=base.arboricity,
        connected=base.connected,
        weighted=True,
        diameter=base.diameter,
        degrees=base.degrees,
        uses_a=base.uses_a,
        base=base.name,
    )(_build)
    return name


#: (base, regime) pairs registered at import time.  ``forest-union`` ×
#: ``random-weights`` reproduces the legacy MST workload exactly; the rest
#: give every weights-requiring algorithm a ≥ 6-family axis of its own.
_WEIGHTED_VARIANTS = (
    ("forest-union", "random-weights"),
    ("grid", "unique-weights"),
    ("random-tree", "unique-weights"),
    ("pa-heavy-tail", "random-weights"),
    ("ring-of-chords", "random-weights"),
    ("series-parallel", "unique-weights"),
    ("cliques-disconnected", "unique-weights"),
    ("complete", "constant-weights"),
)

for _base, _regime in _WEIGHTED_VARIANTS:
    register_weighted_variant(_base, _regime)
