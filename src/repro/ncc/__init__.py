"""The Node-Capacitated Clique simulator.

This package realizes the communication model of Section 1.1: ``n`` nodes,
each knowing all identifiers ``{0..n-1}``, communicating in synchronous
rounds, where a node can send and receive at most ``O(log n)`` messages of
``O(log n)`` bits per round (excess inbound messages are dropped by the
network).

:class:`~repro.ncc.network.NCCNetwork` is the round engine; all primitives
and algorithms move messages exclusively through it, so its counters are the
ground truth for every round/message/bit measurement reported in
EXPERIMENTS.md.
"""

from .engine import ReferenceEngine, RoundEngine, build_engine, engine_names, register_engine
from .graph_input import InputGraph
from .message import Message, MessageBatch, payload_bits, payload_bits_memoized
from .network import NCCNetwork
from .stats import NetworkStats, PhaseStats, Violation

__all__ = [
    "InputGraph",
    "Message",
    "MessageBatch",
    "payload_bits",
    "payload_bits_memoized",
    "NCCNetwork",
    "NetworkStats",
    "PhaseStats",
    "Violation",
    "RoundEngine",
    "ReferenceEngine",
    "build_engine",
    "engine_names",
    "register_engine",
]
