"""Sharded NCC engine: one network instance, nodes across processes.

Selected via ``NCCConfig(engine="sharded", shards=k)`` (CLI:
``run --shards`` / ``sweep --engine-shards``).  Importing this package
registers :class:`ShardedEngine`; :func:`repro.ncc.engine.build_engine`
does so lazily when the name is first requested.  See
:mod:`repro.ncc.sharded.engine` for the architecture and the
byte-identity argument, and docs/OPERATIONS.md for running at n = 10^6.
"""

from .engine import CUTOFF_EXTRA, SHARD_ROUND_CUTOFF, ShardedEngine

__all__ = ["CUTOFF_EXTRA", "SHARD_ROUND_CUTOFF", "ShardedEngine"]
