"""The per-shard delivery kernel: one block of a round, bucketed.

This is the distributed half of the batched engine's clean-round delivery
(:meth:`repro.ncc.batched.BatchedEngine._deliver_deferred_np`): the same
stable-argsort bucketing, run over the slice of the round's typed columns
whose destinations fall in one shard's contiguous node-id range.  The
parent recovers the *global* delivery from the per-block outputs:

* within one destination, all messages live in the same block (shards
  partition destinations), and the block preserves the round's flat
  submission order — so each inbox's internal order is already right;
* across destinations, the global inbox dict order is first-arrival
  order, recovered by sorting every block's destination groups by
  ``first`` — the global flat index of each group's first message.

One function, imported by both the shard workers and the parent's
in-process crash fallback, so a requeued or fallback block is
byte-identical to a worker-computed one by construction.
"""

from __future__ import annotations

import numpy as np


def bucket_block(dst, pay, src, flat, lo):
    """Bucket one shard block into destination groups.

    Parameters are parallel columns of the block's messages in round flat
    order: ``dst``/``src`` int64 node ids, ``pay`` the typed payload
    column, ``flat`` the global flat index of each message, and ``lo`` the
    first node id the shard owns (offsets the bincount so the count table
    spans the shard, not the whole network).

    Returns ``(dsts, starts, ends, first, src_perm, pay_perm, max_recv)``:
    destination groups in ascending-id order as spans ``[starts, ends)``
    over the permuted ``src_perm``/``pay_perm`` columns, ``first`` the
    global flat index of each group's first message (the parent's merge
    key), and ``max_recv`` the block's largest group.
    """
    order = np.argsort(dst, kind="stable")
    per = np.bincount(dst - lo)
    present = np.flatnonzero(per)
    cnts = per[present]
    ends = np.cumsum(cnts)
    starts = ends - cnts
    return (
        present + lo,
        starts,
        ends,
        flat.take(order.take(starts)),
        src.take(order),
        pay.take(order),
        int(cnts.max()),
    )
