"""Shard worker pool: persistent processes + one shm block shuffle per round.

The architecture mirrors :mod:`repro.api.pool` (the PR 7 persistent sweep
pool), scaled down from "one spec per task" to "one shard block per round":

* workers are spawned once (fork start method where available) and stay
  alive across rounds and runs; tasks travel over per-worker duplex pipes
  so the parent always knows which block each worker holds;
* the bulk data — the block's ``(dst, src, flat, payload)`` request
  columns and its ``(span table, src_perm, pay_perm)`` reply — lives in a
  single parent-owned shared-memory segment per round, laid out at fixed
  per-block offsets; pipes carry only tiny descriptors and acks.  The
  segment is reused (grown geometrically) across rounds and unlinked by
  the parent on close, with a ``weakref.finalize`` backstop — workers
  attach, compute in place, detach, and never unlink (see api/pool.py's
  resource-tracker note for why);
* workers are **stateless** — any worker can bucket any block — so a
  worker dying mid-round (OOM kill, segfault, SIGKILL) just has its block
  requeued to a survivor, the incident is reported upward, and the round
  completes.  A block that exhausts :data:`MAX_REQUEUES` — or a pool with
  no workers left — degrades to computing the block in the parent through
  the same :func:`~repro.ncc.sharded.kernel.bucket_block`, so a sharded
  run *always* finishes, byte-identically, no matter how many workers die.

Chaos injection for the robustness tests follows ``REPRO_POOL_CHAOS``:
``REPRO_SHARD_CHAOS=<shard-index>:<flagfile>`` SIGKILLs the worker that
picks up that shard's block, exactly once across the pool (the flag file
is claimed with O_EXCL); an empty flagfile path kills every worker that
touches the shard, simulating a poisonous block that must fall back to
the parent.  Never set outside tests.
"""

from __future__ import annotations

import os
import signal
import weakref
from collections import deque
from typing import Any, Callable

import numpy as np

from ...errors import ConfigurationError
from ...telemetry import tracer as _tracer
from ...telemetry.metrics import METRICS
from .kernel import bucket_block

_SHM_GROWTHS = METRICS.counter("sharded.shm_growths")

#: times a single shard block may be requeued after killing a worker
#: before the parent computes it in-process (mirrors api/pool.py).
MAX_REQUEUES = 2

#: test-only chaos hook (see module docstring and _maybe_chaos_kill);
#: documented in docs/OPERATIONS.md so operators finding it set know
#: what it is.  Never set outside tests.
CHAOS_ENV = "REPRO_SHARD_CHAOS"

#: per-array alignment inside the round segment (keeps every numpy view
#: aligned regardless of the payload dtype's itemsize).
_ALIGN = 16

_POOL = None


def get_pool(workers: int) -> "ShardPool":
    """The process-wide shard pool, created on first use and reused across
    engines and runs; recreated when the worker count changes or every
    worker of the previous pool has died."""
    global _POOL
    if _POOL is not None and (_POOL.workers != workers or not _POOL._workers):
        _POOL.close()
        _POOL = None
    if _POOL is None:
        _POOL = ShardPool(workers)
    return _POOL


def close_pool() -> None:
    """Tear down the process-wide pool (tests; idempotent)."""
    global _POOL
    if _POOL is not None:
        _POOL.close()
        _POOL = None


# ----------------------------------------------------------------------
# Segment layout
# ----------------------------------------------------------------------
def _aligned(pos: int) -> int:
    return (pos + _ALIGN - 1) // _ALIGN * _ALIGN


def _block_offsets(counts, itemsize):
    """Byte offsets of every per-block array in the round segment.

    Per block of ``c`` messages: request columns ``dst``/``src``/``flat``
    (int64) and ``pay`` (payload dtype), then the reply region — a span
    table of four int64 arrays (``dsts``/``starts``/``ends``/``first``,
    each sized for the worst case of ``c`` distinct destinations) and the
    permuted ``src_perm``/``pay_perm`` columns.  Returns the per-block
    offset tuples and the total segment size."""
    offs = []
    pos = 0
    for c in counts:
        w = 8 * c
        o_dst = pos
        pos = _aligned(pos + w)
        o_src = pos
        pos = _aligned(pos + w)
        o_flat = pos
        pos = _aligned(pos + w)
        o_pay = pos
        pos = _aligned(pos + itemsize * c)
        o_spans = pos
        pos = _aligned(pos + 4 * w)
        o_rsrc = pos
        pos = _aligned(pos + w)
        o_rpay = pos
        pos = _aligned(pos + itemsize * c)
        offs.append((o_dst, o_src, o_flat, o_pay, o_spans, o_rsrc, o_rpay))
    return offs, max(pos, 8)


def _write_request(buf, offs, dst, src, flat, pay):
    c = len(dst)
    o_dst, o_src, o_flat, o_pay = offs[0], offs[1], offs[2], offs[3]
    np.frombuffer(buf, np.int64, c, o_dst)[:] = dst
    np.frombuffer(buf, np.int64, c, o_src)[:] = src
    np.frombuffer(buf, np.int64, c, o_flat)[:] = flat
    np.frombuffer(buf, pay.dtype, c, o_pay)[:] = pay


def _read_reply(buf, offs, count, dtype, d, max_recv):
    """Copy one block's reply out of the segment into parent-owned arrays
    (the segment is reused next round, so delivered spans must not alias
    it)."""
    o_spans, o_rsrc, o_rpay = offs[4], offs[5], offs[6]
    w = 8 * count
    return (
        np.frombuffer(buf, np.int64, d, o_spans).copy(),
        np.frombuffer(buf, np.int64, d, o_spans + w).copy(),
        np.frombuffer(buf, np.int64, d, o_spans + 2 * w).copy(),
        np.frombuffer(buf, np.int64, d, o_spans + 3 * w).copy(),
        np.frombuffer(buf, np.int64, count, o_rsrc).copy(),
        np.frombuffer(buf, dtype, count, o_rpay).copy(),
        max_recv,
    )


def _parent_block(block):
    """In-process fallback: the same shared kernel the workers run, so a
    block computed here is byte-identical to a worker-computed one."""
    _shard, lo, dst, src, flat, pay = block
    return bucket_block(dst, pay, src, flat, lo)


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _maybe_chaos_kill(shard: int) -> None:
    """Crash-injection hook for the robustness tests (see module
    docstring).  Never set outside tests."""
    raw = os.environ.get(CHAOS_ENV)
    if not raw:
        return
    token, _, flag = raw.partition(":")
    if not token.isdigit() or int(token) != shard:
        return
    if flag:
        try:
            os.close(os.open(flag, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        except FileExistsError:
            return  # the one crash already happened; run normally
    os.kill(os.getpid(), signal.SIGKILL)


def _process_block(buf, offs, count, lo, dtype):
    """Bucket one block in place: read the request columns from the
    segment, run the kernel, write the reply back.  All views live only
    inside this frame so the caller can detach the segment afterwards."""
    o_dst, o_src, o_flat, o_pay, o_spans, o_rsrc, o_rpay = offs
    dst = np.frombuffer(buf, np.int64, count, o_dst)
    src = np.frombuffer(buf, np.int64, count, o_src)
    flat = np.frombuffer(buf, np.int64, count, o_flat)
    pay = np.frombuffer(buf, dtype, count, o_pay)
    dsts, starts, ends, first, src_perm, pay_perm, max_recv = bucket_block(
        dst, pay, src, flat, lo
    )
    d = len(dsts)
    w = 8 * count
    np.frombuffer(buf, np.int64, d, o_spans)[:] = dsts
    np.frombuffer(buf, np.int64, d, o_spans + w)[:] = starts
    np.frombuffer(buf, np.int64, d, o_spans + 2 * w)[:] = ends
    np.frombuffer(buf, np.int64, d, o_spans + 3 * w)[:] = first
    np.frombuffer(buf, np.int64, count, o_rsrc)[:] = src_perm
    np.frombuffer(buf, dtype, count, o_rpay)[:] = pay_perm
    return d, max_recv


def _worker_main(conn) -> None:
    """Long-lived shard worker: recv ``(gen, block-idx, shard, segment
    name, count, lo, dtype, offsets)`` descriptors, bucket the block
    inside the round segment, ack ``(gen, block-idx, groups, max_recv)``.
    ``None`` (or a closed pipe) shuts down."""
    from multiprocessing import shared_memory

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None:
            break
        gen, bidx, shard, seg_name, count, lo, dtype, offs = msg
        _maybe_chaos_kill(shard)
        shm = shared_memory.SharedMemory(name=seg_name)
        try:
            d, max_recv = _process_block(shm.buf, offs, count, lo, dtype)
        finally:
            shm.close()
        conn.send(("ok", gen, bidx, d, max_recv))
    conn.close()


class _Worker:
    __slots__ = ("proc", "conn")

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
class ShardPool:
    """``workers`` long-lived shard processes plus one reusable round
    segment.  See the module docstring for architecture and crash
    semantics."""

    def __init__(self, workers: int):
        import multiprocessing as mp

        from ...api.pool import shared_memory_available

        if workers < 1:
            raise ConfigurationError(f"shard pool needs >= 1 worker, got {workers}")
        if not shared_memory_available():
            raise ConfigurationError(
                "the sharded engine needs multiprocessing.shared_memory; "
                "use engine='batched' on this host"
            )
        method = "fork" if "fork" in mp.get_all_start_methods() else None
        ctx = mp.get_context(method)
        self.workers = workers
        self._workers: dict[int, _Worker] = {}
        self._segments: dict[str, Any] = {}
        self._generation = 0
        for wid in range(workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn,),
                daemon=True,
                name=f"repro-shard-worker-{wid}",
            )
            proc.start()
            child_conn.close()
            self._workers[wid] = _Worker(proc, parent_conn)
        # Backstop: unlink the segment and reap workers even if the engine
        # is dropped without close() (incl. interpreter exit).
        self._finalizer = weakref.finalize(
            self, ShardPool._cleanup, self._workers, self._segments
        )

    # ------------------------------------------------------------------
    def _ensure_segment(self, nbytes: int):
        """The round segment, grown geometrically; at most one is live.
        Growth unlinks the old segment (no delivered span aliases it —
        replies are copied out before the round ends)."""
        from multiprocessing import shared_memory

        previous = 0
        for name, seg in list(self._segments.items()):
            if seg.size >= nbytes:
                return seg
            previous = seg.size
            del self._segments[name]
            try:
                seg.close()
                seg.unlink()
            except Exception:  # pragma: no cover - already gone
                pass
        seg = shared_memory.SharedMemory(
            create=True, size=max(nbytes * 3 // 2, 1 << 16)
        )
        self._segments[seg.name] = seg
        _SHM_GROWTHS.inc()
        tr = _tracer.CURRENT
        if tr is not None:
            tr.event(
                "shm-grow", size=seg.size, previous=previous, requested=nbytes
            )
        return seg

    # ------------------------------------------------------------------
    def shuffle(
        self,
        blocks,
        dtype,
        on_incident: Callable[[dict[str, Any]], None] | None = None,
    ):
        """One all-to-all block shuffle: fan ``blocks`` — ``(shard, lo,
        dst, src, flat, pay)`` tuples — out over the workers and return
        the per-block ``bucket_block`` results (parent-owned arrays), in
        block order.

        Worker deaths requeue the block to a survivor (budget
        :data:`MAX_REQUEUES`, incidents via ``on_incident``); an exhausted
        budget or an empty pool computes the block in the parent, so this
        method always returns a complete, byte-identical result set."""
        from multiprocessing.connection import wait as conn_wait

        counts = [len(b[2]) for b in blocks]
        results: list[Any] = [None] * len(blocks)
        if self._workers:
            offs, total = _block_offsets(counts, dtype.itemsize)
            seg = self._ensure_segment(total)
            for block, off in zip(blocks, offs):
                _write_request(seg.buf, off, block[2], block[3], block[4], block[5])
            self._generation += 1
            gen = self._generation
            pending = deque(range(len(blocks)))
            attempts: dict[int, int] = {}
            inflight: dict[int, int] = {}
            idle = list(self._workers)
            while pending or inflight:
                while pending and idle:
                    wid = idle.pop()
                    i = pending.popleft()
                    try:
                        self._workers[wid].conn.send(
                            (gen, i, blocks[i][0], seg.name,
                             counts[i], blocks[i][1], dtype, offs[i])
                        )
                    except (BrokenPipeError, OSError):
                        # Death noticed at dispatch: requeue without
                        # charging the block's budget (the worker's death
                        # says nothing about this block).
                        pending.appendleft(i)
                        self._reap(wid, None, attempts, on_incident)
                        continue
                    inflight[wid] = i
                if not self._workers:
                    break  # the None-scan below computes the rest in-parent
                if not inflight:
                    continue
                conns = {self._workers[w].conn: w for w in inflight}
                sentinels = {
                    self._workers[w].proc.sentinel: w for w in self._workers
                }
                ready = conn_wait(list(conns) + list(sentinels))
                # Results first: a worker that answered and then exited
                # must still have its reply consumed before the sentinel.
                for obj in ready:
                    wid = conns.get(obj)
                    if wid is None:
                        continue
                    try:
                        _tag, msg_gen, i, d, max_recv = obj.recv()
                    except (EOFError, OSError):
                        continue  # died mid-send; the sentinel path requeues
                    if msg_gen != gen:
                        continue  # stale ack from an abandoned round
                    inflight.pop(wid, None)
                    idle.append(wid)
                    results[i] = _read_reply(
                        seg.buf, offs[i], counts[i], dtype, d, max_recv
                    )
                for obj in ready:
                    wid = sentinels.get(obj)
                    if wid is None or wid not in self._workers:
                        continue
                    i = inflight.pop(wid, None)
                    if wid in idle:
                        idle.remove(wid)
                    over = self._reap(wid, i, attempts, on_incident)
                    if i is not None:
                        if over:
                            # Poisonous block: stop feeding it workers.
                            results[i] = _parent_block(blocks[i])
                        else:
                            pending.appendleft(i)
        for i, r in enumerate(results):
            if r is None:  # pool died (or never had workers): parent math
                results[i] = _parent_block(blocks[i])
        return results

    def _reap(self, wid, i, attempts, on_incident) -> bool:
        """Reap a dead worker; account the requeue of block ``i`` (``None``
        = death noticed at dispatch, no budget charge).  Returns True when
        the block exhausted its budget and must fall back to the parent."""
        worker = self._workers.pop(wid, None)
        exitcode = None
        if worker is not None:
            worker.proc.join()
            exitcode = worker.proc.exitcode
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
        over = False
        if i is not None:
            attempts[i] = attempts.get(i, 0) + 1
            over = attempts[i] > MAX_REQUEUES
        if on_incident is not None:
            on_incident(
                {
                    "kind": "shard-worker-crash",
                    "block": i,
                    "exitcode": exitcode,
                    "requeued": i is not None and not over,
                    "attempt": attempts.get(i, 0) if i is not None else 0,
                    "workers_left": len(self._workers),
                }
            )
        return over

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def alive_workers(self) -> int:
        return sum(1 for w in self._workers.values() if w.proc.is_alive())

    def close(self) -> None:
        """Shut workers down (politely, then terminate) and unlink the
        round segment.  Idempotent."""
        self._finalizer.detach()
        ShardPool._cleanup(self._workers, self._segments)

    @staticmethod
    def _cleanup(workers: dict[int, _Worker], segments: dict[str, Any]) -> None:
        for w in workers.values():
            try:
                w.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for w in workers.values():
            w.proc.join(timeout=5)
            if w.proc.is_alive():  # pragma: no cover - stuck worker
                w.proc.terminate()
                w.proc.join(timeout=5)
            try:
                w.conn.close()
            except OSError:  # pragma: no cover
                pass
        workers.clear()
        for seg in segments.values():
            try:
                seg.close()
                seg.unlink()
            except Exception:  # pragma: no cover - already gone
                pass
        segments.clear()

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
