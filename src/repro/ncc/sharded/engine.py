"""Sharded round engine: one network instance, nodes across processes.

:class:`ShardedEngine` is the :class:`~repro.ncc.batched.BatchedEngine`
with its one O(messages) clean-round hot spot — the typed columnar
delivery — distributed across a persistent worker pool.  Node ids are
partitioned into ``k`` contiguous shards (``shard_of(d) = d*k//n``); per
round the parent splits the typed ``(src, dst, payload)`` columns into
per-destination-shard blocks, ships them through one shared-memory block
shuffle (:meth:`~repro.ncc.sharded.workers.ShardPool.shuffle`), and merges
the returned span tables into the delivered ``InboxBatch`` dict.  A clean
typed sharded round constructs zero ``Message`` objects, same as
single-process.

Byte-identity with the batched engine (the engine-parity invariant,
pinned differentially in ``tests/test_engine_parity.py`` and
``tests/test_sharded.py``) holds by construction, for every ``shards``
value:

* within a destination, all messages live in one block (shards partition
  destinations) in round flat order — inbox-internal order is untouched;
* across destinations, the global dict order is recovered by sorting all
  blocks' groups on ``first`` (each group's global flat index), exactly
  the ``argsort(order[starts])`` arrival key of the single-process path;
* all statistics are the same aggregates (``max_recv`` is the max of the
  block maxima), and every anomaly — malformed input, send/bits/receive
  violations, DROP sampling — takes the *inherited* canonical walks of
  :class:`~repro.ncc.engine.RoundEngine`, never re-derived semantics.

Everything else — small rounds, object-payload rounds, mixed-kind
rounds, numpy-free installs, daemonic processes (a ``Session`` sweep
worker cannot spawn children), hosts without shared memory, or a pool
whose workers all died — simply inherits the batched behavior, so the
engine degrades to single-process without changing a byte of output.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised only on numpy-free installs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from ...telemetry import tracer as _tracer
from ...telemetry.metrics import METRICS
from ..batched import BatchedEngine
from ..engine import register_engine
from ..message import InboxBatch

_DEGRADATIONS = METRICS.counter("sharded.degradations")
_SHARD_INCIDENTS = METRICS.counter("sharded.incidents")

#: below this many messages in a clean typed round the block split + IPC
#: round trip costs more than the single-process argsort, so the round
#: inherits the batched delivery (identical observables either way).
SHARD_ROUND_CUTOFF = 32768

#: ``NCCConfig.extras`` key overriding :data:`SHARD_ROUND_CUTOFF` — the
#: determinism tests force it to 1 so tiny grids exercise the full
#: distributed path.
CUTOFF_EXTRA = "shard_cutoff"


def _auto_shards() -> int:
    """Default shard count when ``NCCConfig.shards`` is 0: leave one core
    for the parent (it runs the split/merge and everything non-delivery),
    capped at 8 — the block shuffle is memory-bandwidth bound well before
    that at the n = 10^6 target scale."""
    import os

    return max(1, min(8, (os.cpu_count() or 1) - 1))


class ShardedEngine(BatchedEngine):
    """Batched engine with worker-pool delivery; observably identical."""

    name = "sharded"

    def __init__(self, net):
        super().__init__(net)
        cfg = net.config
        self.shards = max(1, min(int(cfg.shards) or _auto_shards(), net.n))
        self._cutoff = int(cfg.extras.get(CUTOFF_EXTRA, SHARD_ROUND_CUTOFF))
        #: shard-worker crash records for this engine's lifetime (the
        #: sharded analogue of the sweep manifest's incident journal).
        #: Kept off ``NetworkStats`` deliberately: stats are part of the
        #: byte-identical observable surface, crash recovery is not.
        self.incidents: list[dict] = []
        self._pool = None
        self._disabled = False
        #: why the engine fell back to single-process batched delivery
        #: (``None`` while fully sharded) — surfaced as the telemetry
        #: ``sharded-degraded`` event's ``reason`` field.
        self._disabled_reason: str | None = None
        if _np is None:  # pragma: no cover - exercised only without numpy
            self._degrade("numpy-unavailable")

    def _degrade(self, reason: str) -> None:
        """Fall back to single-process delivery, keeping the reason
        observable (today's silent inheritance was satellite work of the
        telemetry issue: degradation must carry *why*)."""
        if self._disabled:
            return
        self._disabled = True
        self._disabled_reason = reason
        _DEGRADATIONS.inc()
        tr = _tracer.CURRENT
        if tr is not None:
            tr.event("sharded-degraded", reason=reason, shards=self.shards)

    def _record_incident(self, incident: dict) -> None:
        """Journal a shard-worker crash and mirror it into telemetry."""
        self.incidents.append(incident)
        _SHARD_INCIDENTS.inc()
        tr = _tracer.CURRENT
        if tr is not None:
            tr.event("shard-worker-crash", **incident)

    # ------------------------------------------------------------------
    def _ensure_pool(self):
        """The shard pool, created lazily on the first qualifying round.
        Environments that cannot host worker processes disable the engine
        (it then inherits single-process batched behavior wholesale)."""
        if self._pool is not None:
            return self._pool
        import multiprocessing

        from ...api.pool import shared_memory_available

        if multiprocessing.current_process().daemon:
            self._degrade("daemonic-process")
            return None
        if not shared_memory_available():
            self._degrade("no-shared-memory")
            return None
        from . import workers

        self._pool = workers.get_pool(self.shards)
        return self._pool

    # ------------------------------------------------------------------
    def _deliver_deferred_np(self, senders, kcols, counts, m_count, dst, pay_l):
        """Distribute the clean typed delivery; inherit everything else.

        Both columnar call sites (``run_builder``'s whole-round typed bulk
        and ``_deliver_deferred``'s uniform typed path) land here with the
        destination column already bounds-checked and the send watermark
        committed, so the only remaining work is bucketing + delivery —
        exactly the part that shards."""
        if (
            self._disabled
            or m_count < self._cutoff
            or type(pay_l) is list
        ):
            return super()._deliver_deferred_np(
                senders, kcols, counts, m_count, dst, pay_l
            )
        kind = self._round_kind_scalar(kcols)
        if kind is None:  # mixed-kind rounds keep the single-process path
            return super()._deliver_deferred_np(
                senders, kcols, counts, m_count, dst, pay_l
            )
        pool = self._ensure_pool()
        if pool is None:
            return super()._deliver_deferred_np(
                senders, kcols, counts, m_count, dst, pay_l
            )
        return self._deliver_sharded(pool, senders, kind, counts, m_count, dst, pay_l)

    def _deliver_sharded(self, pool, senders, kind, counts, m_count, dst, pay):
        """One all-to-all block shuffle, then the byte-identical merge."""
        net = self.net
        stats = net.stats
        n = net.n
        k = self.shards
        snd = _np.fromiter(senders, _np.int64, len(senders))
        cnt = _np.fromiter(counts, _np.int64, len(counts))
        src_flat = _np.repeat(snd, cnt)

        # Split the round's flat columns by destination shard.  The stable
        # argsort keeps each block in round flat order, and the selection
        # indices double as the blocks' global flat-index columns (the
        # merge key the workers thread through their span tables).
        shard_col = dst * k // n
        order_sh = _np.argsort(shard_col, kind="stable")
        per_shard = _np.bincount(shard_col, minlength=k)
        sh_ends = _np.cumsum(per_shard)
        blocks = []
        for i in _np.flatnonzero(per_shard).tolist():
            sel = order_sh[sh_ends[i] - per_shard[i] : sh_ends[i]]
            lo = (i * n + k - 1) // k  # first node id shard i owns
            blocks.append(
                (i, lo, dst.take(sel), src_flat.take(sel), sel, pay.take(sel))
            )

        tr = _tracer.CURRENT
        if tr is None:
            results = pool.shuffle(blocks, pay.dtype, self._record_incident)
        else:
            t0 = tr.now()
            results = pool.shuffle(blocks, pay.dtype, self._record_incident)
            tr.add_span(
                "shard-shuffle",
                t0,
                tr.now(),
                blocks=len(blocks),
                messages=m_count,
                shards=k,
                round=net._round,
            )
        if pool.alive_workers == 0:
            # Every worker died: later rounds inherit the in-process
            # batched delivery instead of paying the split for nothing.
            self._degrade("all-workers-dead")

        # Merge: concatenating the blocks' group tables and sorting on the
        # global flat index of each group's first message recovers the
        # single-process first-arrival dict order (distinct keys, so the
        # sort is a permutation); each inbox is a span over its own
        # block's permuted columns — InboxBatch equality is element-wise,
        # so per-block backing columns are observably identical to the
        # single whole-round column.
        firsts = _np.concatenate([r[3] for r in results])
        arrival = _np.argsort(firsts, kind="stable")
        dst_l: list[int] = []
        starts_l: list[int] = []
        ends_l: list[int] = []
        cols: list[tuple] = []
        max_recv = 0
        for dsts_r, starts_r, ends_r, _first, src_perm, pay_perm, mr in results:
            dst_l += dsts_r.tolist()
            starts_l += starts_r.tolist()
            ends_l += ends_r.tolist()
            cols += [(src_perm, pay_perm)] * len(dsts_r)
            if mr > max_recv:
                max_recv = mr
        delivered = InboxBatch._over_spans(
            None, None, kind, dst_l, starts_l, ends_l, arrival.tolist(),
            cols=cols,
        )
        if max_recv <= net.capacity:
            if max_recv > stats.max_received_per_round:
                stats.max_received_per_round = max_recv
            return delivered
        # Overloaded receivers: the inherited canonical receive walk keeps
        # ledger order and DROP rng draws byte-identical.
        return self._recv_walk(delivered)


register_engine(ShardedEngine.name, ShardedEngine)
