"""Round/message/bit statistics and the capacity-violation ledger.

Everything the benchmark harness reports comes from here.  The network
attributes each round's traffic to the currently active *phase labels* (a
stack pushed by :meth:`repro.ncc.network.NCCNetwork.phase`), so a caller can
ask "how many rounds did MST spend inside aggregations?" without any
instrumentation in the algorithms themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class Violation:
    """One capacity-budget violation observed by the engine."""

    round_index: int
    node: int
    kind: str  # "send" | "recv" | "bits"
    count: int
    capacity: int


@dataclass
class PhaseStats:
    """Counters attributed to one phase label."""

    rounds: int = 0
    messages: int = 0
    bits: int = 0
    entries: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "rounds": self.rounds,
            "messages": self.messages,
            "bits": self.bits,
            "entries": self.entries,
        }


@dataclass
class NetworkStats:
    """Cumulative statistics of one :class:`NCCNetwork` instance."""

    rounds: int = 0
    messages: int = 0
    bits: int = 0
    dropped: int = 0
    max_sent_per_round: int = 0
    max_received_per_round: int = 0
    violations: list[Violation] = field(default_factory=list)
    phases: dict[str, PhaseStats] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def record_round(
        self,
        active_phases: Iterator[str] | tuple[str, ...],
        messages: int,
        bits: int,
    ) -> None:
        self.rounds += 1
        self.messages += messages
        self.bits += bits
        labels = (
            active_phases
            if isinstance(active_phases, tuple)
            else tuple(active_phases)
        )
        if len(labels) > 1:
            # The phase stack is raw nesting: a label nested inside itself
            # (e.g. a primitive reentered under the same tag) must charge
            # each round/message/bit once, not once per stack level.
            labels = dict.fromkeys(labels)
        for label in labels:
            ps = self.phases.setdefault(label, PhaseStats())
            ps.rounds += 1
            ps.messages += messages
            ps.bits += bits

    def record_phase_entry(self, label: str) -> None:
        self.phases.setdefault(label, PhaseStats()).entries += 1

    def record_violation(self, v: Violation) -> None:
        self.violations.append(v)

    # ------------------------------------------------------------------
    @property
    def violation_count(self) -> int:
        return len(self.violations)

    def phase(self, label: str) -> PhaseStats:
        """Stats for one phase label (zeroed if the phase never ran)."""
        return self.phases.get(label, PhaseStats())

    def summary(self) -> dict[str, object]:
        return {
            "rounds": self.rounds,
            "messages": self.messages,
            "bits": self.bits,
            "dropped": self.dropped,
            "violations": self.violation_count,
            "max_sent_per_round": self.max_sent_per_round,
            "max_received_per_round": self.max_received_per_round,
        }

    def to_dict(self) -> dict[str, object]:
        """Full JSON-serializable export (tooling / experiment archival)."""
        return {
            **self.summary(),
            "phases": {k: v.as_dict() for k, v in self.phases.items()},
            "violation_log": [
                {
                    "round": v.round_index,
                    "node": v.node,
                    "kind": v.kind,
                    "count": v.count,
                    "capacity": v.capacity,
                }
                for v in self.violations
            ],
        }

    def comparable(self) -> dict[str, object]:
        """Canonical snapshot for differential engine testing.

        Captures every observable the round engines must agree on: the
        cumulative counters, the phase attribution, and the violation
        ledger *in order*.  Two engine runs are indistinguishable iff
        their ``comparable()`` dicts are equal.  A named alias of
        :meth:`to_dict` so there is exactly one exporter to extend when a
        new stats field is added — anything in the export is automatically
        under the parity invariant.
        """
        return self.to_dict()

    def to_json(self, **dumps_kwargs: object) -> str:
        """Serialize :meth:`to_dict` with :func:`json.dumps`."""
        import json

        return json.dumps(self.to_dict(), **dumps_kwargs)  # type: ignore[arg-type]

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{k}={v}" for k, v in self.summary().items()]
        return "NetworkStats(" + ", ".join(parts) + ")"
