"""The input graph G of the graph problems (Section 1.1).

``G = (V, E)`` shares its node set with the Node-Capacitated Clique; each
node initially knows only which identifiers are its neighbours (and, for
MST, the weights of its incident edges — both endpoints of an edge know its
weight).  :class:`InputGraph` is the immutable container algorithms read
their *local* knowledge from; the convention throughout the code base is
that per-node logic only consults ``neighbors(u)`` / ``weight(u, v)`` for
its own ``u``.

Edge/arc identifiers follow the paper: ``id(u, v) = id(u) ∘ id(v)`` —
concatenation of the two node identifiers — realized as
``(u << idbits) | v`` plus one to keep identifiers non-zero (a zero
identifier would be XOR-invisible in sketches).
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Mapping

from ..errors import InputGraphError

EdgeT = tuple[int, int]


def canonical_edge(u: int, v: int) -> EdgeT:
    """The undirected edge key with endpoints sorted."""
    return (u, v) if u <= v else (v, u)


class InputGraph:
    """An undirected input graph on the NCC's node set.

    Parameters
    ----------
    n:
        Number of nodes (same as the clique's).
    edges:
        Iterable of ``(u, v)`` pairs, 0-based ids, no self-loops.  Duplicates
        collapse to one edge.
    weights:
        Optional mapping from canonical edges to positive integer weights in
        ``{1..W}`` (Section 3 assumes integral weights, W = poly(n)).
    """

    def __init__(
        self,
        n: int,
        edges: Iterable[EdgeT],
        weights: Mapping[EdgeT, int] | None = None,
    ):
        if n < 1:
            raise InputGraphError("n must be >= 1")
        self.n = int(n)
        adj: list[set[int]] = [set() for _ in range(self.n)]
        edge_set: set[EdgeT] = set()
        for u, v in edges:
            u, v = int(u), int(v)
            if u == v:
                raise InputGraphError(f"self-loop at node {u}")
            if not (0 <= u < self.n and 0 <= v < self.n):
                raise InputGraphError(f"edge ({u},{v}) outside node range [0,{self.n})")
            e = canonical_edge(u, v)
            if e in edge_set:
                continue
            edge_set.add(e)
            adj[u].add(v)
            adj[v].add(u)
        self._adj: tuple[tuple[int, ...], ...] = tuple(
            tuple(sorted(s)) for s in adj
        )
        self._edges: tuple[EdgeT, ...] = tuple(sorted(edge_set))
        self._weights: dict[EdgeT, int] | None = None
        if weights is not None:
            w: dict[EdgeT, int] = {}
            for (u, v), wt in weights.items():
                e = canonical_edge(int(u), int(v))
                if e not in edge_set:
                    raise InputGraphError(f"weight given for non-edge {e}")
                if not isinstance(wt, int) or wt < 1:
                    raise InputGraphError(f"weight of {e} must be a positive integer")
                w[e] = wt
            missing = edge_set - set(w)
            if missing:
                raise InputGraphError(f"{len(missing)} edges missing weights")
            self._weights = w
        # id(u,v) = u ∘ v needs ceil(log2 n) bits per endpoint.
        self.idbits = max(1, math.ceil(math.log2(max(2, self.n))))

    @classmethod
    def from_canonical_arrays(
        cls,
        n: int,
        edges: Iterable[EdgeT],
        weights: Iterable[int] | None = None,
    ) -> "InputGraph":
        """Rebuild a graph from already-canonical columns, skipping
        validation and dedup.

        The trusted fast path of the persistent sweep pool
        (:mod:`repro.api.pool`): the parent process publishes a validated
        graph's ``edges()`` (sorted canonical pairs) and aligned weight
        column through shared memory, and workers reconstruct the graph
        without re-running the generator or the ``__init__`` edge checks.
        ``edges`` must be exactly what :meth:`edges` returned — sorted,
        endpoint-ordered, duplicate-free, in ``[0, n)`` — and ``weights``
        (when given) positive ints aligned with it.  Feeding anything else
        silently builds a corrupt graph; this is an internal transport
        constructor, not an input API.  The result is observably
        indistinguishable from the originally validated instance.
        """
        self = cls.__new__(cls)
        self.n = int(n)
        adj: list[list[int]] = [[] for _ in range(self.n)]
        edge_tuples = tuple((int(u), int(v)) for u, v in edges)
        for u, v in edge_tuples:
            adj[u].append(v)
            adj[v].append(u)
        self._adj = tuple(tuple(sorted(neigh)) for neigh in adj)
        self._edges = edge_tuples
        self._weights = (
            {e: int(w) for e, w in zip(edge_tuples, weights)}
            if weights is not None
            else None
        )
        self.idbits = max(1, math.ceil(math.log2(max(2, self.n))))
        return self

    # ------------------------------------------------------------------
    # Global views (used by generators/oracles, not by per-node logic)
    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Number of edges."""
        return len(self._edges)

    def edges(self) -> tuple[EdgeT, ...]:
        return self._edges

    @property
    def max_degree(self) -> int:
        return max((len(a) for a in self._adj), default=0)

    @property
    def average_degree(self) -> float:
        return 2.0 * self.m / self.n if self.n else 0.0

    def is_weighted(self) -> bool:
        return self._weights is not None

    def max_weight(self) -> int:
        if not self._weights:
            return 1
        return max(self._weights.values())

    # ------------------------------------------------------------------
    # Per-node local knowledge
    # ------------------------------------------------------------------
    def neighbors(self, u: int) -> tuple[int, ...]:
        """Sorted neighbour identifiers of ``u`` (its initial knowledge)."""
        return self._adj[u]

    def degree(self, u: int) -> int:
        return len(self._adj[u])

    def has_edge(self, u: int, v: int) -> bool:
        return v in set(self._adj[u]) if self.degree(u) <= self.degree(v) else u in set(self._adj[v])

    def weight(self, u: int, v: int) -> int:
        """Weight of the edge {u,v}; both endpoints know it (Section 3)."""
        if self._weights is None:
            return 1
        try:
            return self._weights[canonical_edge(u, v)]
        except KeyError:
            raise InputGraphError(f"({u},{v}) is not an edge") from None

    # ------------------------------------------------------------------
    # Identifiers (Section 3 / 4.1 conventions)
    # ------------------------------------------------------------------
    def arc_id(self, u: int, v: int) -> int:
        """Directed-arc identifier id(u,v) = id(u) ∘ id(v), shifted to be
        non-zero so XOR sketches cannot hide it."""
        return ((u << self.idbits) | v) + 1

    def arc_of_id(self, arc_id: int) -> tuple[int, int]:
        """Inverse of :meth:`arc_id`."""
        raw = arc_id - 1
        u = raw >> self.idbits
        v = raw & ((1 << self.idbits) - 1)
        return (u, v)

    def edge_id(self, u: int, v: int) -> int:
        """Undirected edge identifier id(e) with endpoints sorted
        (Stage 3 of Section 4.2 uses id(u) ∘ id(v) for id(u) < id(v))."""
        a, b = canonical_edge(u, v)
        return self.arc_id(a, b)

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export to a networkx graph (oracle computations in tests)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        if self._weights is not None:
            g.add_weighted_edges_from(
                (u, v, self._weights[(u, v)]) for (u, v) in self._edges
            )
        else:
            g.add_edges_from(self._edges)
        return g

    def __iter__(self) -> Iterator[EdgeT]:
        return iter(self._edges)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        w = "weighted" if self.is_weighted() else "unweighted"
        return f"InputGraph(n={self.n}, m={self.m}, {w})"
