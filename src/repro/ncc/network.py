"""The synchronous round engine of the Node-Capacitated Clique.

Usage pattern (all primitives follow it)::

    net = NCCNetwork(n, config)
    with net.phase("my-protocol"):
        inboxes = net.exchange(outgoing)   # one synchronous round
        ...

``exchange`` takes the messages every node wants to send this round, enforces
the model's send/receive capacity and message-size budgets, and returns the
per-node inboxes for the start of the next round.  The three enforcement
modes are described in :class:`repro.config.Enforcement`.

Design notes
------------
* The engine is deliberately *centralized but message-faithful*: algorithms
  are orchestrated from ordinary Python control flow (the paper's
  Aggregate-and-Broadcast synchronization is executed for real where the
  paper charges it), while every unit of communication is a concrete
  :class:`~repro.ncc.message.Message` moving through this class.
* Local computation is free (the model allows arbitrary local computation
  per round), so the engine counts only rounds, messages and bits.
* Randomness for DROP-mode selection comes from the engine's own stream so
  that algorithm-level randomness is unaffected by the enforcement mode.
* The per-round enforcement/accounting core is a pluggable
  :class:`~repro.ncc.engine.RoundEngine` selected by ``NCCConfig.engine``:
  the ``"reference"`` engine walks messages one by one (the executable
  specification), the ``"batched"`` engine (:mod:`repro.ncc.batched`) runs
  the same checks columnar over parallel ``(src, dst, bits)`` arrays.  The
  paper only charges for rounds, messages and bits, so the internal
  representation is free to change — but the engines must stay *observably
  indistinguishable*: same inboxes (including list and dict insertion
  order), same statistics, same violation-ledger order, same exceptions,
  and same DROP-rng draws.  ``tests/test_engine_parity.py`` certifies this
  differentially; ``run_rounds``, ``idle_rounds``, the ``round_observer``
  hook, and the k-machine conversion all funnel through the same
  ``exchange`` → engine interface, so parity there covers every consumer.
* Input validation (node ids, ``src`` consistency of a ``Mapping`` entry)
  happens *before* any DROP-mode trimming, so STRICT and DROP report the
  same offending messages: a malformed message cannot escape detection by
  being randomly dropped.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator, Mapping

from ..config import DEFAULT_CONFIG, Enforcement, NCCConfig
from ..errors import CapacityError, MessageSizeError, SimulationLimitError
from ..rng import derived_rng
from ..telemetry import tracer as _tracer
from ..telemetry.metrics import METRICS
from .engine import InboxT, RoundEngine, build_engine
from .message import BatchBuilder, InboxBatch, Message, merge_round_inboxes
from .stats import NetworkStats, Violation

# Registry counters for the rare events the tracer also records; one int
# add per violation, cheap enough to run unconditionally.
_CAPACITY_VIOLATIONS = METRICS.counter("ncc.violations")
_BITS_VIOLATIONS = METRICS.counter("ncc.bits_violations")

OutgoingT = Mapping[int, list[Message]] | Iterable[Message] | BatchBuilder


class NCCNetwork:
    """A Node-Capacitated Clique on ``n`` nodes.

    Parameters
    ----------
    n:
        Number of nodes; identifiers are ``0..n-1`` (Section 1.1 lets us
        assume this w.l.o.g. since identifiers are common knowledge).
    config:
        Model constants; see :class:`repro.config.NCCConfig`.
    """

    def __init__(self, n: int, config: NCCConfig | None = None):
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = int(n)
        self.config = config if config is not None else DEFAULT_CONFIG
        self.capacity = self.config.capacity(self.n)
        self.message_bits = self.config.message_bits(self.n)
        self.stats = NetworkStats()
        self._round = 0
        self._phase_stack: list[str] = []
        self._drop_rng = derived_rng("ncc-drop", self.config.seed, n)
        #: The pluggable enforcement/accounting core executing each round.
        self.engine: RoundEngine = build_engine(self.config.resolve_engine(), self)
        #: Optional per-round observer ``f(round_index, messages)`` — used by
        #: the k-machine conversion (Appendix A) to re-account each NCC
        #: round's traffic in another model without touching the algorithms.
        self.round_observer = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def round_index(self) -> int:
        """Number of completed rounds."""
        return self._round

    @property
    def log2n(self) -> int:
        return self.config.log2n(self.n)

    def nodes(self) -> range:
        return range(self.n)

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, label: str) -> Iterator[None]:
        """Attribute all traffic inside the block to ``label`` (stackable)."""
        self._phase_stack.append(label)
        self.stats.record_phase_entry(label)
        tr = _tracer.CURRENT
        if tr is not None:
            tr.begin("phase", label=label)
        try:
            yield
        finally:
            self._phase_stack.pop()
            tr = _tracer.CURRENT
            if tr is not None:
                tr.end(rounds=self._round)

    # ------------------------------------------------------------------
    # The round
    # ------------------------------------------------------------------
    def exchange(self, outgoing: OutgoingT) -> dict[int, InboxT]:
        """Run one synchronous round.

        ``outgoing`` maps each sender to its messages, or is a flat iterable
        of messages, or a :class:`~repro.ncc.message.BatchBuilder` holding
        the round's traffic in columnar form.

        Returns the inbox of every node that received at least one message,
        keyed by receiver in first-arrival order.  The model says messages
        are received "at the beginning of the next round" (Section 1.1);
        since the caller drives rounds explicitly, that simply means the
        return value is available to the caller's next iteration.  Each
        inbox is ``list[Message]``-compatible but not necessarily a list:
        the batched engine delivers lazy
        :class:`~repro.ncc.message.InboxBatch` column views on clean rounds
        (element access materializes a ``Message``; ``payloads()`` and
        friends read the columns without constructing any).
        """
        if self._round >= self.config.max_rounds:
            raise SimulationLimitError(
                f"simulation exceeded max_rounds={self.config.max_rounds}"
            )

        if isinstance(outgoing, BatchBuilder):
            # Columnar submission: the builder finalizes straight into
            # per-sender groups (first-occurrence sender order, per-sender
            # append order — identical to flat-list bucketing) with int
            # keys and no empty groups, so the normalization loop below
            # would be a no-op.  An engine that can consume the builder's
            # raw columns does so directly (skipping the per-group batch
            # objects); with an observer installed the batch form is
            # materialized anyway because observers receive the mapping.
            if self.round_observer is None:
                run_builder = self.engine.run_builder
                if run_builder is not None:
                    tr = _tracer.CURRENT
                    if tr is None:
                        delivered, sent_messages, sent_bits = run_builder(outgoing)
                    else:
                        t0 = tr.now()
                        delivered, sent_messages, sent_bits = run_builder(outgoing)
                        tr.add_span(
                            "round",
                            t0,
                            tr.now(),
                            round=self._round,
                            phases="/".join(self._phase_stack),
                            messages=sent_messages,
                            bits=sent_bits,
                        )
                    self._round += 1
                    self.stats.record_round(
                        tuple(self._phase_stack), sent_messages, sent_bits
                    )
                    return delivered
            per_sender = outgoing.batches()
            return self._finish_round(per_sender)

        per_sender: dict[int, list[Message]] = {}
        if isinstance(outgoing, Mapping):
            for src, msgs in outgoing.items():
                if msgs:
                    src = int(src)
                    existing = per_sender.get(src)
                    if existing is None:
                        # Engines never mutate a sender's group, so the
                        # caller's list (or MessageBatch / InboxBatch) can
                        # be shared instead of copied — listing an
                        # InboxBatch here would defeat its laziness.
                        per_sender[src] = (
                            msgs
                            if isinstance(msgs, (list, InboxBatch))
                            else list(msgs)
                        )
                    else:  # distinct keys coercing to the same int
                        per_sender[src] = list(existing) + list(msgs)
        else:
            for m in outgoing:
                per_sender.setdefault(m.src, []).append(m)

        return self._finish_round(per_sender)

    def _finish_round(self, per_sender: Mapping[int, list[Message]]) -> dict[int, InboxT]:
        """Engine dispatch + round bookkeeping shared by every submission
        form of :meth:`exchange`."""
        tr = _tracer.CURRENT
        if tr is None:
            delivered, sent_messages, sent_bits = self.engine.run_round(per_sender)
        else:
            t0 = tr.now()
            delivered, sent_messages, sent_bits = self.engine.run_round(per_sender)
            tr.add_span(
                "round",
                t0,
                tr.now(),
                round=self._round,
                phases="/".join(self._phase_stack),
                messages=sent_messages,
                bits=sent_bits,
            )

        if self.round_observer is not None:
            self.round_observer(self._round, per_sender)
        self._round += 1
        self.stats.record_round(tuple(self._phase_stack), sent_messages, sent_bits)
        return delivered

    def run_rounds(
        self, schedule: Mapping[int, list[Message]]
    ) -> dict[int, InboxT]:
        """Run a multi-round send schedule keyed by round offset.

        ``schedule[r]`` is the list of messages sent in the r-th round from
        now (0-based); negative keys are rejected — they can never elapse,
        so their traffic would silently vanish.  All inboxes are merged
        into one dict keyed by receiver; useful for the "pick a random
        round in {1..s}" spreading pattern the paper uses repeatedly.
        Rounds with no traffic still elapse (they are part of the
        protocol's fixed-length window).  Every round goes through
        :meth:`exchange` and therefore through the configured round engine.
        """
        negative = sorted(r for r in schedule if r < 0)
        if negative:
            raise ValueError(
                f"run_rounds schedule keys must be 0-based round offsets; "
                f"got negative keys {negative} whose traffic would never "
                f"be sent"
            )
        merged: dict[int, InboxT] = {}
        horizon = max(schedule.keys(), default=-1)
        for r in range(horizon + 1):
            merge_round_inboxes(merged, self.exchange(schedule.get(r, ())))
        return merged

    def idle_rounds(self, k: int) -> None:
        """Let ``k`` empty rounds elapse (fixed-length protocol windows)."""
        for _ in range(k):
            self.exchange(())

    # ------------------------------------------------------------------
    # Internal
    # ------------------------------------------------------------------
    def _check_node_id(self, node: int) -> None:
        if not 0 <= node < self.n:
            raise ValueError(f"node id {node} outside [0, {self.n})")

    def _violate(self, kind: str, node: int, count: int) -> None:
        v = Violation(self._round, node, kind, count, self.capacity)
        self.stats.record_violation(v)
        _CAPACITY_VIOLATIONS.inc()
        tr = _tracer.CURRENT
        if tr is not None:
            # Recorded before the STRICT raise so the trace keeps the
            # violation that aborted the run.
            tr.event(
                "violation",
                kind=kind,
                node=node,
                count=count,
                capacity=self.capacity,
                round=self._round,
            )
        if self.config.enforcement is Enforcement.STRICT:
            raise CapacityError(
                f"node {node} {kind} capacity exceeded in round {self._round}: "
                f"{count} > {self.capacity}",
                node=node,
                round_index=self._round,
                count=count,
                capacity=self.capacity,
            )

    def _violate_bits(self, m: Message, bits: int) -> None:
        v = Violation(self._round, m.src, "bits", bits, self.message_bits)
        self.stats.record_violation(v)
        _BITS_VIOLATIONS.inc()
        tr = _tracer.CURRENT
        if tr is not None:
            tr.event(
                "bits-violation",
                src=m.src,
                dst=m.dst,
                bits=bits,
                budget=self.message_bits,
                round=self._round,
            )
        if self.config.enforcement is Enforcement.STRICT:
            raise MessageSizeError(
                f"message {m.src}->{m.dst} ({m.kind!r}) payload {bits} bits "
                f"exceeds budget {self.message_bits}",
                bits=bits,
                budget=self.message_bits,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NCCNetwork(n={self.n}, capacity={self.capacity}, "
            f"engine={self.engine.name!r}, round={self._round}, "
            f"violations={self.stats.violation_count})"
        )
