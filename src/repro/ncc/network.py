"""The synchronous round engine of the Node-Capacitated Clique.

Usage pattern (all primitives follow it)::

    net = NCCNetwork(n, config)
    with net.phase("my-protocol"):
        inboxes = net.exchange(outgoing)   # one synchronous round
        ...

``exchange`` takes the messages every node wants to send this round, enforces
the model's send/receive capacity and message-size budgets, and returns the
per-node inboxes for the start of the next round.  The three enforcement
modes are described in :class:`repro.config.Enforcement`.

Design notes
------------
* The engine is deliberately *centralized but message-faithful*: algorithms
  are orchestrated from ordinary Python control flow (the paper's
  Aggregate-and-Broadcast synchronization is executed for real where the
  paper charges it), while every unit of communication is a concrete
  :class:`~repro.ncc.message.Message` moving through this class.
* Local computation is free (the model allows arbitrary local computation
  per round), so the engine counts only rounds, messages and bits.
* Randomness for DROP-mode selection comes from the engine's own stream so
  that algorithm-level randomness is unaffected by the enforcement mode.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import Iterable, Iterator, Mapping

from ..config import DEFAULT_CONFIG, Enforcement, NCCConfig
from ..errors import CapacityError, MessageSizeError, SimulationLimitError
from .message import Message
from .stats import NetworkStats, Violation

OutgoingT = Mapping[int, list[Message]] | Iterable[Message]


class NCCNetwork:
    """A Node-Capacitated Clique on ``n`` nodes.

    Parameters
    ----------
    n:
        Number of nodes; identifiers are ``0..n-1`` (Section 1.1 lets us
        assume this w.l.o.g. since identifiers are common knowledge).
    config:
        Model constants; see :class:`repro.config.NCCConfig`.
    """

    def __init__(self, n: int, config: NCCConfig | None = None):
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = int(n)
        self.config = config if config is not None else DEFAULT_CONFIG
        self.capacity = self.config.capacity(self.n)
        self.message_bits = self.config.message_bits(self.n)
        self.stats = NetworkStats()
        self._round = 0
        self._phase_stack: list[str] = []
        self._drop_rng = random.Random(("ncc-drop", self.config.seed, n).__repr__())
        #: Optional per-round observer ``f(round_index, messages)`` — used by
        #: the k-machine conversion (Appendix A) to re-account each NCC
        #: round's traffic in another model without touching the algorithms.
        self.round_observer = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def round_index(self) -> int:
        """Number of completed rounds."""
        return self._round

    @property
    def log2n(self) -> int:
        return self.config.log2n(self.n)

    def nodes(self) -> range:
        return range(self.n)

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, label: str) -> Iterator[None]:
        """Attribute all traffic inside the block to ``label`` (stackable)."""
        self._phase_stack.append(label)
        self.stats.record_phase_entry(label)
        try:
            yield
        finally:
            self._phase_stack.pop()

    # ------------------------------------------------------------------
    # The round
    # ------------------------------------------------------------------
    def exchange(self, outgoing: OutgoingT) -> dict[int, list[Message]]:
        """Run one synchronous round.

        ``outgoing`` maps each sender to its messages (or is a flat iterable
        of messages).  Returns the inbox of every node that received at least
        one message.  Messages are received "at the beginning of the next
        round" (Section 1.1); since the caller drives rounds explicitly, that
        simply means the return value is available to the caller's next
        iteration.
        """
        if self._round >= self.config.max_rounds:
            raise SimulationLimitError(
                f"simulation exceeded max_rounds={self.config.max_rounds}"
            )

        per_sender: dict[int, list[Message]] = {}
        if isinstance(outgoing, Mapping):
            for src, msgs in outgoing.items():
                if msgs:
                    per_sender.setdefault(int(src), []).extend(msgs)
        else:
            for m in outgoing:
                per_sender.setdefault(m.src, []).append(m)

        sent_messages = 0
        sent_bits = 0
        inboxes: dict[int, list[Message]] = {}
        mode = self.config.enforcement

        for src, msgs in per_sender.items():
            self._check_node_id(src)
            count = len(msgs)
            if count > self.stats.max_sent_per_round:
                self.stats.max_sent_per_round = count
            if count > self.capacity:
                self._violate("send", src, count)
                if mode is Enforcement.DROP:
                    # The model does not drop on the send side (sending is
                    # under node control), but an over-budget sender in DROP
                    # mode gets trimmed to keep the simulation inside the
                    # model; a random subset is kept to avoid bias.
                    msgs = self._drop_rng.sample(msgs, self.capacity)
                    self.stats.dropped += count - self.capacity
            for m in msgs:
                self._check_node_id(m.dst)
                if m.src != src:
                    raise ValueError(f"message src {m.src} enqueued under sender {src}")
                bits = m.sized()
                if bits > self.message_bits:
                    self._violate_bits(m, bits)
                sent_messages += 1
                sent_bits += bits
                inboxes.setdefault(m.dst, []).append(m)

        # Receive-side capacity.
        delivered: dict[int, list[Message]] = {}
        for dst, msgs in inboxes.items():
            count = len(msgs)
            if count > self.stats.max_received_per_round:
                self.stats.max_received_per_round = count
            if count > self.capacity:
                self._violate("recv", dst, count)
                if mode is Enforcement.DROP:
                    # "it receives an arbitrary subset of O(log n) messages.
                    # Additional messages are simply dropped by the network."
                    msgs = self._drop_rng.sample(msgs, self.capacity)
                    self.stats.dropped += count - self.capacity
            delivered[dst] = msgs

        if self.round_observer is not None:
            self.round_observer(self._round, per_sender)
        self._round += 1
        self.stats.record_round(tuple(self._phase_stack), sent_messages, sent_bits)
        return delivered

    def run_rounds(
        self, schedule: Mapping[int, list[Message]]
    ) -> dict[int, list[Message]]:
        """Run a multi-round send schedule keyed by round offset.

        ``schedule[r]`` is the list of messages sent in the r-th round from
        now (0-based).  All inboxes are merged into one dict keyed by
        receiver; useful for the "pick a random round in {1..s}" spreading
        pattern the paper uses repeatedly.  Rounds with no traffic still
        elapse (they are part of the protocol's fixed-length window).
        """
        merged: dict[int, list[Message]] = {}
        horizon = max(schedule.keys(), default=-1)
        for r in range(horizon + 1):
            inb = self.exchange(schedule.get(r, ()))
            for dst, msgs in inb.items():
                merged.setdefault(dst, []).extend(msgs)
        return merged

    def idle_rounds(self, k: int) -> None:
        """Let ``k`` empty rounds elapse (fixed-length protocol windows)."""
        for _ in range(k):
            self.exchange(())

    # ------------------------------------------------------------------
    # Internal
    # ------------------------------------------------------------------
    def _check_node_id(self, node: int) -> None:
        if not 0 <= node < self.n:
            raise ValueError(f"node id {node} outside [0, {self.n})")

    def _violate(self, kind: str, node: int, count: int) -> None:
        v = Violation(self._round, node, kind, count, self.capacity)
        self.stats.record_violation(v)
        if self.config.enforcement is Enforcement.STRICT:
            raise CapacityError(
                f"node {node} {kind} capacity exceeded in round {self._round}: "
                f"{count} > {self.capacity}",
                node=node,
                round_index=self._round,
                count=count,
                capacity=self.capacity,
            )

    def _violate_bits(self, m: Message, bits: int) -> None:
        v = Violation(self._round, m.src, "bits", bits, self.message_bits)
        self.stats.record_violation(v)
        if self.config.enforcement is Enforcement.STRICT:
            raise MessageSizeError(
                f"message {m.src}->{m.dst} ({m.kind!r}) payload {bits} bits "
                f"exceeds budget {self.message_bits}",
                bits=bits,
                budget=self.message_bits,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NCCNetwork(n={self.n}, capacity={self.capacity}, "
            f"round={self._round}, violations={self.stats.violation_count})"
        )
