"""Columnar fast-path round engine.

The reference engine pays several Python-level operations per message
(node-id checks, src consistency, ``sized()`` calls, dict bucketing).  At
the n >= 1024 scales of the ROADMAP targets that per-object walk dominates
simulation wall time.  This engine represents a round's traffic as parallel
``(src, dst, bits, payload-ref)`` arrays and replaces the per-message work
with vectorized/bucketed operations:

* id validation / src consistency — array bound checks plus one
  ``repeat``/equality pass over the ``src`` column;
* send capacity — a max over the per-sender group sizes;
* message-size budget and bit accounting — max/sum over the ``bits`` column;
* receive bucketing — one stable argsort over the ``dst`` column, groups
  emitted in first-arrival order via fancy indexing of the object column.

When every sender group is a :class:`~repro.ncc.message.MessageBatch` the
columns are simply concatenated (no per-message attribute access at all);
plain lists are lowered to columns first.  The clean round — no violations,
no malformed input — never takes a per-message Python branch.

A round with *any* anomaly replays the canonical walks of
:class:`~repro.ncc.engine.RoundEngine`, which keeps the violation-ledger
order, STRICT raise points, and DROP-mode rng draws byte-for-byte identical
to the reference engine — the invariant ``tests/test_engine_parity.py``
certifies.  Receive-side overloads (the model-faithful DROP scenario) keep
the bucketed argsort delivery and only walk per-inbox, not per-message.

numpy is optional: without it the engine degrades to the canonical walks
(identical behavior, no speedup), so importing this module never hard-fails.
"""

from __future__ import annotations

from typing import Mapping

try:  # pragma: no cover - exercised only on numpy-free installs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from .engine import RoundEngine, RoundResult, register_engine
from .message import Message, MessageBatch

HAVE_NUMPY = _np is not None

#: Below this many messages per round the fixed cost of the numpy round
#: setup (~a few dozen array ops) exceeds the per-message walk, so small
#: rounds take the canonical walks — same observable behavior either way.
SMALL_ROUND_CUTOFF = 128


class BatchedEngine(RoundEngine):
    """Vectorized round engine; observably identical to the reference."""

    name = "batched"

    def run_round(self, per_sender: Mapping[int, list[Message]]) -> RoundResult:
        if not per_sender:
            return {}, 0, 0
        senders = list(per_sender.keys())
        groups = [per_sender[s] for s in senders]
        if _np is None:
            return self._run_walks(senders, groups)
        counts_l = [len(g) for g in groups]
        m_count = sum(counts_l)
        if m_count < SMALL_ROUND_CUTOFF:
            # Empty rounds included: the walk still validates sender ids
            # exactly like the reference engine.
            return self._run_walks(senders, groups)

        # Two ways to know the send-side facts of a round: full per-message
        # ``src``/``bits`` columns, or per-group metadata proved at batch
        # construction (uniform sender + bits sum/max).  The metadata form
        # replaces O(messages) column work with O(senders) work and is the
        # common case for primitive-built traffic.
        src = bits = None
        usrc = bsum = bmax = None
        # One classification pass: are all groups MessageBatch, do they all
        # have cached numpy columns (steady-state resubmission), and do they
        # all carry construction-time metadata (fresh builder batches)?
        all_batches = cached = meta = True
        for g in groups:
            if type(g) is not MessageBatch:
                all_batches = cached = meta = False
                break
            if g._int_cols is None:
                cached = False
            if g._uniform_src is None or g._bits_agg is None:
                meta = False
        try:
            if all_batches and cached:
                # Steady-state resubmission (the same batches replayed
                # round after round, e.g. by benchmarks): concatenate the
                # cached per-batch arrays — one call for all three int
                # rows, one for the object refs.
                cols = _np.concatenate([g.int_cols for g in groups], axis=1)
                if cols.dtype != _np.int64:  # a batch degraded to lists
                    return self._run_walks(senders, groups)
                src, dst, bits = cols
                obj = _np.concatenate([g.obj_col for g in groups])
            elif all_batches and meta:
                # Fresh builder/from_columns batches (the common case:
                # primitives build new batches every round): the sender is
                # uniform per group by construction and the bits aggregates
                # were captured at finalize, so only the dst and object
                # columns need to exist per message — send-side checks
                # become O(senders) instead of O(messages).
                dst_l: list[int] = []
                flat: list[Message] = []
                for g in groups:
                    dst_l += g.list_cols[1]
                    flat += g
                dst = _np.fromiter(dst_l, _np.int64, m_count)
                obj = _np.fromiter(flat, dtype=object, count=m_count)
                k = len(groups)
                usrc = _np.fromiter([g._uniform_src for g in groups], _np.int64, k)
                bsum = _np.fromiter([g._bits_agg[0] for g in groups], _np.int64, k)
                bmax = _np.fromiter([g._bits_agg[1] for g in groups], _np.int64, k)
            elif all_batches:
                # Batches without construction-time metadata: flat-extend
                # the Python-list columns — one memcpy per group — then
                # lower each column once.
                src_l: list[int] = []
                dst_l = []
                bits_l: list[int] = []
                flat = []
                for g in groups:
                    s, d, b = g.list_cols
                    src_l += s
                    dst_l += d
                    bits_l += b
                    flat += g
                src = _np.fromiter(src_l, _np.int64, m_count)
                dst = _np.fromiter(dst_l, _np.int64, m_count)
                bits = _np.fromiter(bits_l, _np.int64, m_count)
                obj = _np.fromiter(flat, dtype=object, count=m_count)
            else:
                # Plain lists: lower the groups to columns once, flat order.
                flat = []
                for g in groups:
                    flat.extend(g)
                src = _np.fromiter([m.src for m in flat], _np.int64, m_count)
                dst = _np.fromiter([m.dst for m in flat], _np.int64, m_count)
                bits = _np.fromiter([m.bits for m in flat], _np.int64, m_count)
                obj = _np.fromiter(flat, dtype=object, count=m_count)
            counts = _np.fromiter(counts_l, _np.int64, len(counts_l))
            snd = _np.fromiter(senders, _np.int64, len(senders))
        except (OverflowError, TypeError, ValueError):
            # A value that does not lower to int64 (e.g. an id >= 2**63)
            # cannot take the columnar path; the canonical walks raise the
            # same errors the reference engine would.
            return self._run_walks(senders, groups)

        net = self.net
        stats = net.stats
        n = net.n

        # dst must be range-checked BEFORE bincount: the count table is
        # dst.max()+1 slots, so a single absurd id would otherwise turn the
        # reference engine's ValueError into a huge allocation.  Bucketing
        # happens here, before any statistics are touched.
        bounds = None
        if 0 <= int(dst.min()) and int(dst.max()) < n:
            per_dst = _np.bincount(dst)
            dsts_present = _np.flatnonzero(per_dst)
            group_counts = per_dst[dsts_present]
            bounds = (dsts_present, group_counts)

        max_sent = int(counts.max())
        if src is not None:
            src_consistent = bool((src == _np.repeat(snd, counts)).all())
            max_bits = int(bits.max())
        else:
            src_consistent = bool((usrc == snd).all())
            max_bits = int(bmax.max())
        clean = (
            bounds is not None
            and 0 <= int(snd.min())
            and int(snd.max()) < n
            and max_sent <= net.capacity
            and max_bits <= net.message_bits
            and src_consistent
        )
        if not clean:
            # Malformed input or a send/bits anomaly: replay the canonical
            # ordered walk so errors, ledger order, and DROP sampling match
            # the reference engine exactly.
            accepted, sent_messages, sent_bits = self._send_walk(senders, groups)
            if not accepted:
                return {}, sent_messages, sent_bits
            dst = _np.fromiter([m.dst for m in accepted], _np.int64, len(accepted))
            obj = _np.fromiter(accepted, dtype=object, count=len(accepted))
            per_dst = _np.bincount(dst)
            dsts_present = _np.flatnonzero(per_dst)
            bounds = (dsts_present, per_dst[dsts_present])
        else:
            if max_sent > stats.max_sent_per_round:
                stats.max_sent_per_round = max_sent
            sent_messages = m_count
            sent_bits = int(bits.sum()) if bits is not None else int(bsum.sum())

        return self._deliver(obj, dst, bounds), sent_messages, sent_bits

    def _run_walks(self, senders, groups) -> RoundResult:
        accepted, sent_messages, sent_bits = self._send_walk(senders, groups)
        return self._recv_walk(self._bucket(accepted)), sent_messages, sent_bits

    # ------------------------------------------------------------------
    def _deliver(self, obj, dst, bounds) -> dict[int, list[Message]]:
        """Bucket the object column into inboxes via one stable argsort and
        enforce receive capacity.  Inboxes are emitted in first-arrival
        order and each keeps the flat (send-order) message order, matching
        the reference engine's incremental dict bucketing."""
        net = self.net
        stats = net.stats
        dsts_present, group_counts = bounds

        order = _np.argsort(dst, kind="stable")
        # Bucket boundaries without re-gathering dst: per-destination counts
        # prefix-sum to the group extents in ascending-dst order, matching
        # the argsort's group layout.
        ends = _np.cumsum(group_counts)
        starts = ends - group_counts
        max_recv = int(group_counts.max())
        # order[starts[j]] is the flat index of group j's first message, so
        # sorting groups by it recovers first-arrival order.
        arrival = _np.argsort(order[starts], kind="stable")

        permuted = obj.take(order).tolist()
        starts_l = starts.tolist()
        ends_l = ends.tolist()
        dsts_l = dsts_present.tolist()

        if max_recv <= net.capacity:
            if max_recv > stats.max_received_per_round:
                stats.max_received_per_round = max_recv
            delivered: dict[int, list[Message]] = {}
            for j in arrival.tolist():
                delivered[dsts_l[j]] = permuted[starts_l[j] : ends_l[j]]
            return delivered

        # Overloaded receivers: materialize the inboxes (still bucketed) and
        # run the canonical receive walk for ledger/rng parity.
        inboxes: dict[int, list[Message]] = {}
        for j in arrival.tolist():
            inboxes[dsts_l[j]] = permuted[starts_l[j] : ends_l[j]]
        return self._recv_walk(inboxes)


register_engine(BatchedEngine.name, BatchedEngine)
