"""Columnar fast-path round engine.

The reference engine pays several Python-level operations per message
(node-id checks, src consistency, ``sized()`` calls, dict bucketing).  At
the n >= 1024 scales of the ROADMAP targets that per-object walk dominates
simulation wall time.  This engine represents a round's traffic as parallel
``(src, dst, bits, payload-ref)`` arrays and replaces the per-message work
with vectorized/bucketed operations:

* id validation / src consistency — array bound checks plus one
  ``repeat``/equality pass over the ``src`` column;
* send capacity — a max over the per-sender group sizes;
* message-size budget and bit accounting — max/sum over the ``bits`` column;
* receive bucketing — one stable argsort over the ``dst`` column, groups
  emitted in first-arrival order via fancy indexing of the object column.

When every sender group is a :class:`~repro.ncc.message.MessageBatch` the
columns are simply concatenated (no per-message attribute access at all);
plain lists are lowered to columns first.  The clean round — no violations,
no malformed input — never takes a per-message Python branch.

Deferred (lazy) rounds go further still: when every group is a
column-backed :class:`~repro.ncc.message.InboxBatch` — the default
:class:`~repro.ncc.message.BatchBuilder` output — the send-side checks run
entirely off construction metadata (uniform sender, bits sum/max, C-level
min/max over the dst columns) and delivery permutes the *columns*, handing
each destination an ``InboxBatch`` span.  A clean deferred round therefore
constructs **zero** ``Message`` objects end-to-end, at any round size, with
or without numpy (small or numpy-free rounds bucket the columns in plain
Python instead of via argsort — same observables, still object-free).

A round with *any* anomaly replays the canonical walks of
:class:`~repro.ncc.engine.RoundEngine`, which keeps the violation-ledger
order, STRICT raise points, and DROP-mode rng draws byte-for-byte identical
to the reference engine — the invariant ``tests/test_engine_parity.py``
certifies.  (For lazy groups the walk materializes the messages, which is
exactly what the reference engine observes.)  Receive-side overloads (the
model-faithful DROP scenario) keep the bucketed argsort delivery and only
walk per-inbox, not per-message.

numpy is optional: without it non-deferred submissions degrade to the
canonical walks (identical behavior, no speedup), so importing this module
never hard-fails.
"""

from __future__ import annotations

from typing import Mapping

try:  # pragma: no cover - exercised only on numpy-free installs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from ..telemetry import tracer as _tracer
from ..telemetry.metrics import METRICS
from .engine import RoundEngine, RoundResult, register_engine
from .message import BuilderBatches, InboxBatch, Message, MessageBatch
from .message import _count_boxes

HAVE_NUMPY = _np is not None

_TYPED_FALLBACKS = METRICS.counter("ncc.typed_fallbacks")

#: Below this many messages per round the fixed cost of the numpy round
#: setup (~a few dozen array ops) exceeds the per-message walk, so small
#: rounds take the canonical walks — same observable behavior either way.
SMALL_ROUND_CUTOFF = 128


class BatchedEngine(RoundEngine):
    """Vectorized round engine; observably identical to the reference."""

    name = "batched"

    def run_round(self, per_sender: Mapping[int, list[Message]]) -> RoundResult:
        if not per_sender:
            return {}, 0, 0
        senders = list(per_sender.keys())
        groups = [per_sender[s] for s in senders]
        if type(per_sender) is BuilderBatches:
            # The builder's frozen finalize product: every group is proven
            # column-backed, uniform-sender, whole-span and keyed by its
            # own sender — no classification pass, no src-consistency scan,
            # and the bit totals were tracked during accumulation.
            return self._run_deferred(
                senders,
                groups,
                trusted=True,
                round_bits=(per_sender.bits_sum, per_sender.bits_max),
            )
        deferred = True
        for g in groups:
            # The lazy path needs builder-shaped groups: column-backed,
            # uniform sender, whole-span (delivered spans have non-scalar
            # srcs and resubmissions of them take the generic paths below).
            if (
                type(g) is not InboxBatch
                or g._msgs is not None
                or type(g._srcs) is not int
                or g._start != 0
                or g._end != len(g._payloads)
                # len(), not truthiness: a typed (ndarray) payload column
                # of more than one element raises on bool().
                or len(g._payloads) == 0
            ):
                deferred = False
                break
        if deferred:
            return self._run_deferred(senders, groups)
        if _np is None:
            return self._run_walks(senders, groups)
        counts_l = [len(g) for g in groups]
        m_count = sum(counts_l)
        if m_count < SMALL_ROUND_CUTOFF:
            # Empty rounds included: the walk still validates sender ids
            # exactly like the reference engine.
            return self._run_walks(senders, groups)

        # Two ways to know the send-side facts of a round: full per-message
        # ``src``/``bits`` columns, or per-group metadata proved at batch
        # construction (uniform sender + bits sum/max).  The metadata form
        # replaces O(messages) column work with O(senders) work and is the
        # common case for primitive-built traffic.
        src = bits = None
        usrc = bsum = bmax = None
        # One classification pass: are all groups MessageBatch, do they all
        # have cached numpy columns (steady-state resubmission), and do they
        # all carry construction-time metadata (fresh builder batches)?
        all_batches = cached = meta = True
        for g in groups:
            if type(g) is not MessageBatch:
                all_batches = cached = meta = False
                break
            if g._int_cols is None:
                cached = False
            if g._uniform_src is None or g._bits_agg is None:
                meta = False
        try:
            if all_batches and cached:
                # Steady-state resubmission (the same batches replayed
                # round after round, e.g. by benchmarks): concatenate the
                # cached per-batch arrays — one call for all three int
                # rows, one for the object refs.
                cols = _np.concatenate([g.int_cols for g in groups], axis=1)
                if cols.dtype != _np.int64:  # a batch degraded to lists
                    return self._run_walks(senders, groups)
                src, dst, bits = cols
                obj = _np.concatenate([g.obj_col for g in groups])
            elif all_batches and meta:
                # Fresh builder/from_columns batches (the common case:
                # primitives build new batches every round): the sender is
                # uniform per group by construction and the bits aggregates
                # were captured at finalize, so only the dst and object
                # columns need to exist per message — send-side checks
                # become O(senders) instead of O(messages).
                dst_l: list[int] = []
                flat: list[Message] = []
                for g in groups:
                    dst_l += g.list_cols[1]
                    flat += g
                dst = _np.fromiter(dst_l, _np.int64, m_count)
                obj = _np.fromiter(flat, dtype=object, count=m_count)
                k = len(groups)
                usrc = _np.fromiter([g._uniform_src for g in groups], _np.int64, k)
                bsum = _np.fromiter([g._bits_agg[0] for g in groups], _np.int64, k)
                bmax = _np.fromiter([g._bits_agg[1] for g in groups], _np.int64, k)
            elif all_batches:
                # Batches without construction-time metadata: flat-extend
                # the Python-list columns — one memcpy per group — then
                # lower each column once.
                src_l: list[int] = []
                dst_l = []
                bits_l: list[int] = []
                flat = []
                for g in groups:
                    s, d, b = g.list_cols
                    src_l += s
                    dst_l += d
                    bits_l += b
                    flat += g
                src = _np.fromiter(src_l, _np.int64, m_count)
                dst = _np.fromiter(dst_l, _np.int64, m_count)
                bits = _np.fromiter(bits_l, _np.int64, m_count)
                obj = _np.fromiter(flat, dtype=object, count=m_count)
            else:
                # Plain lists: lower the groups to columns once, flat order.
                flat = []
                for g in groups:
                    flat.extend(g)
                src = _np.fromiter([m.src for m in flat], _np.int64, m_count)
                dst = _np.fromiter([m.dst for m in flat], _np.int64, m_count)
                bits = _np.fromiter([m.bits for m in flat], _np.int64, m_count)
                obj = _np.fromiter(flat, dtype=object, count=m_count)
            counts = _np.fromiter(counts_l, _np.int64, len(counts_l))
            snd = _np.fromiter(senders, _np.int64, len(senders))
        except (OverflowError, TypeError, ValueError):
            # A value that does not lower to int64 (e.g. an id >= 2**63)
            # cannot take the columnar path; the canonical walks raise the
            # same errors the reference engine would.
            return self._run_walks(senders, groups)

        net = self.net
        stats = net.stats
        n = net.n

        # dst must be range-checked BEFORE bincount: the count table is
        # dst.max()+1 slots, so a single absurd id would otherwise turn the
        # reference engine's ValueError into a huge allocation.  Bucketing
        # happens here, before any statistics are touched.
        bounds = None
        if 0 <= int(dst.min()) and int(dst.max()) < n:
            per_dst = _np.bincount(dst)
            dsts_present = _np.flatnonzero(per_dst)
            group_counts = per_dst[dsts_present]
            bounds = (dsts_present, group_counts)

        max_sent = int(counts.max())
        if src is not None:
            src_consistent = bool((src == _np.repeat(snd, counts)).all())
            max_bits = int(bits.max())
        else:
            src_consistent = bool((usrc == snd).all())
            max_bits = int(bmax.max())
        clean = (
            bounds is not None
            and 0 <= int(snd.min())
            and int(snd.max()) < n
            and max_sent <= net.capacity
            and max_bits <= net.message_bits
            and src_consistent
        )
        if not clean:
            # Malformed input or a send/bits anomaly: replay the canonical
            # ordered walk so errors, ledger order, and DROP sampling match
            # the reference engine exactly.
            accepted, sent_messages, sent_bits = self._send_walk(senders, groups)
            if not accepted:
                return {}, sent_messages, sent_bits
            dst = _np.fromiter([m.dst for m in accepted], _np.int64, len(accepted))
            obj = _np.fromiter(accepted, dtype=object, count=len(accepted))
            per_dst = _np.bincount(dst)
            dsts_present = _np.flatnonzero(per_dst)
            bounds = (dsts_present, per_dst[dsts_present])
        else:
            if max_sent > stats.max_sent_per_round:
                stats.max_sent_per_round = max_sent
            sent_messages = m_count
            sent_bits = int(bits.sum()) if bits is not None else int(bsum.sum())

        return self._deliver(obj, dst, bounds), sent_messages, sent_bits

    def _run_walks(self, senders, groups) -> RoundResult:
        accepted, sent_messages, sent_bits = self._send_walk(senders, groups)
        return self._recv_walk(self._bucket(accepted)), sent_messages, sent_bits

    # ------------------------------------------------------------------
    # Deferred (lazy columnar) rounds
    # ------------------------------------------------------------------
    def _run_deferred(
        self, senders, groups, trusted: bool = False, round_bits=None
    ) -> RoundResult:
        """Execute a round whose groups are all column-backed, uniform-src
        :class:`InboxBatch` es.  All send-side facts come from construction
        metadata; a clean round constructs no ``Message`` anywhere.  Any
        anomaly — bad ids, src mismatch, capacity or bits overruns —
        replays the canonical walks (which materialize the lazy groups
        exactly as the reference engine observes them) before any
        statistic is touched.  ``trusted`` (the frozen ``BuilderBatches``
        form) skips the src-consistency scan the builder already
        guarantees, and ``round_bits`` carries its pre-tracked
        ``(sum, max)`` bit totals."""
        net = self.net
        n = net.n
        counts = []
        m_count = 0
        max_sent = 0
        clean = True
        try:
            if round_bits is not None:
                sent_bits, max_bits = round_bits
                for s, g in zip(senders, groups):
                    c = g._end
                    counts.append(c)
                    m_count += c
                    if not 0 <= s < n:
                        clean = False
                        break
                    if c > max_sent:
                        max_sent = c
            else:
                sent_bits = 0
                max_bits = 0
                for s, g in zip(senders, groups):
                    c = g._end
                    counts.append(c)
                    m_count += c
                    if not 0 <= s < n or (not trusted and g._srcs != s):
                        clean = False
                        break
                    agg = g._bits_agg
                    bsum, bmax = agg if agg is not None else g.bits_agg
                    sent_bits += bsum
                    if bmax > max_bits:
                        max_bits = bmax
                    if c > max_sent:
                        max_sent = c
        except TypeError:
            # A non-numeric sender key: the canonical walk raises the
            # reference engine's error.
            return self._run_walks(senders, groups)
        if not clean or max_sent > net.capacity or max_bits > net.message_bits:
            return self._run_walks(senders, groups)

        delivered = self._deliver_deferred(
            senders,
            counts,
            m_count,
            max_sent,
            [g._dsts for g in groups],
            [g._payloads for g in groups],
            [g._kinds for g in groups],
        )
        if delivered is None:  # bad/over-wide destination ids
            return self._run_walks(senders, groups)
        return delivered, m_count, sent_bits

    def run_builder(self, builder) -> RoundResult:
        """Execute a round straight off a deferred builder's raw columns —
        no per-group batch objects at all on the clean path.  Anomalous,
        eager, or empty rounds finalize normally and replay through
        :meth:`run_round` (identical observables by construction)."""
        if not builder._deferred or not builder._groups:
            return self.run_round(builder.batches())
        if builder._dtype is not None:
            # Typed builder filled by one whole-round add_arrays call: the
            # sorted sender/dst/value columns are already on the builder, so
            # deliver straight off them — no per-sender spans, no structured
            # concatenation (whose fixed per-array cost dwarfs these ~3-long
            # chunks).
            bulk = builder._typed_bulk
            if bulk is not None:
                senders, counts, dst, pay = bulk
                net = self.net
                n = net.n
                max_sent = max(counts)
                if (
                    0 <= senders[0]
                    and senders[-1] < n
                    and max_sent <= net.capacity
                    and builder._bits_max <= net.message_bits
                    and int(dst.min()) >= 0
                    and int(dst.max()) < n
                ):
                    stats = net.stats
                    if max_sent > stats.max_sent_per_round:
                        stats.max_sent_per_round = max_sent
                    delivered = self._deliver_deferred_np(
                        senders, [builder.kind], counts, len(dst), dst, pay
                    )
                    builder._spent = True
                    return delivered, len(dst), builder._bits_sum
            # Otherwise the chunked group layout finalizes into typed
            # whole-span batches, and run_round's trusted BuilderBatches
            # path delivers them without leaving ndarrays.
            return self.run_round(builder.batches())
        net = self.net
        n = net.n
        senders: list[int] = []
        counts: list[int] = []
        dcols: list[list[int]] = []
        pcols: list[list] = []
        kcols: list = []
        m_count = 0
        max_sent = 0
        ok = True
        for s, cols in builder._groups.items():
            if type(s) is not int or not 0 <= s < n:
                ok = False
                break
            dsts = cols[0]
            c = len(dsts)
            senders.append(s)
            counts.append(c)
            dcols.append(dsts)
            pcols.append(cols[1])
            kcols.append(cols[3])
            m_count += c
            if c > max_sent:
                max_sent = c
        if not ok or max_sent > net.capacity or builder._bits_max > net.message_bits:
            return self.run_round(builder.batches())
        delivered = self._deliver_deferred(
            senders, counts, m_count, max_sent, dcols, pcols, kcols
        )
        if delivered is None:  # bad/over-wide destination ids
            return self.run_round(builder.batches())
        builder._spent = True
        return delivered, m_count, builder._bits_sum

    def _deliver_deferred(self, senders, counts, m_count, max_sent, dcols, pcols, kcols):
        """Shared clean-path tail of the deferred forms: bounds-check the
        destination columns, commit the send watermark, and deliver.
        Returns ``None`` — with no statistic touched — when a destination
        id is out of range or too wide for an int64 column, so the caller
        replays the canonical walks and raises the reference errors."""
        net = self.net
        stats = net.stats
        n = net.n
        typed = False
        for p in pcols:
            if type(p) is not list:
                typed = True
                break
        if typed:
            uniform = _np is not None
            dt = None
            if uniform:
                for p in pcols:
                    if type(p) is list:
                        uniform = False
                        break
                    if dt is None:
                        dt = p.dtype
                    elif p.dtype != dt:
                        uniform = False
                        break
            if uniform:
                # Fully typed round: concatenate the raw columns and take
                # the argsort path at any size — the data is already in
                # arrays, so the small-round Python bucketing would only
                # add boxing.
                try:
                    chunks = [
                        d if type(d) is not list else _np.fromiter(d, _np.int64, len(d))
                        for d in dcols
                    ]
                except (OverflowError, TypeError, ValueError):
                    return None
                dst = chunks[0] if len(chunks) == 1 else _np.concatenate(chunks)
                if dst.dtype != _np.int64:
                    dst = dst.astype(_np.int64)
                if int(dst.min()) < 0 or int(dst.max()) >= n:
                    return None
                pay = pcols[0] if len(pcols) == 1 else _np.concatenate(pcols)
                if max_sent > stats.max_sent_per_round:
                    stats.max_sent_per_round = max_sent
                return self._deliver_deferred_np(
                    senders, kcols, counts, m_count, dst, pay
                )
            # Mixed typed/object columns (or a typed round under a
            # numpy-free engine): box the typed sides — the object-fallback
            # contract — and continue on the generic list paths.
            boxed = 0
            for i, p in enumerate(pcols):
                if type(p) is not list:
                    _count_boxes(len(p))
                    boxed += len(p)
                    pcols[i] = p.tolist()
            if boxed:
                _TYPED_FALLBACKS.inc()
                tr = _tracer.CURRENT
                if tr is not None:
                    tr.event(
                        "typed-fallback",
                        boxed=boxed,
                        messages=m_count,
                        round=self.net._round,
                    )
            for i, d in enumerate(dcols):
                if type(d) is not list:
                    dcols[i] = d.tolist()
        if _np is not None and m_count >= SMALL_ROUND_CUTOFF:
            dst_l: list[int] = []
            pay_l: list = []
            for i, dsts in enumerate(dcols):
                dst_l += dsts
                pay_l += pcols[i]
            try:
                dst = _np.fromiter(dst_l, _np.int64, m_count)
            except (OverflowError, TypeError, ValueError):
                # An id beyond int64 cannot be columnar; the walks raise
                # the canonical out-of-range error.
                return None
            if int(dst.min()) < 0 or int(dst.max()) >= n:
                return None
            if max_sent > stats.max_sent_per_round:
                stats.max_sent_per_round = max_sent
            return self._deliver_deferred_np(
                senders, kcols, counts, m_count, dst, pay_l
            )
        for dsts in dcols:
            if min(dsts) < 0 or max(dsts) >= n:
                return None
        if max_sent > stats.max_sent_per_round:
            stats.max_sent_per_round = max_sent
        return self._deliver_deferred_py(senders, dcols, pcols, kcols)

    @staticmethod
    def _round_kind_scalar(kcols):
        """The single kind tag shared by every message of the round, or
        ``None`` when tags are mixed (token traffic etc.).  ``kcols`` holds
        one kind column (scalar str or per-message list) per group."""
        k0 = kcols[0]
        if type(k0) is not str:
            return None
        for k in kcols:
            if k != k0:  # a list column never equals a str
                return None
        return k0

    def _deliver_deferred_np(self, senders, kcols, counts, m_count, dst, pay_l):
        """Argsort-bucketed delivery of the round's columns: each inbox is
        an :class:`InboxBatch` span over the permuted (src, payload, kind)
        columns — no object column, no ``Message``.  The src column stays
        an int64 array (boxed lazily on access) and the bits column is
        dropped entirely — sizes are re-derived on demand, which delivered
        inboxes almost never need."""
        net = self.net
        stats = net.stats
        per_dst = _np.bincount(dst)
        dsts_present = _np.flatnonzero(per_dst)
        group_counts = per_dst[dsts_present]
        order = _np.argsort(dst, kind="stable")
        ends = _np.cumsum(group_counts)
        starts = ends - group_counts
        max_recv = int(group_counts.max())
        arrival = _np.argsort(order[starts], kind="stable")

        if type(pay_l) is list:
            pay_perm = (
                _np.fromiter(pay_l, dtype=object, count=m_count).take(order).tolist()
            )
        else:
            # Typed round: the permuted payload column stays an ndarray and
            # the delivered spans are typed — nothing is boxed here.
            pay_perm = pay_l.take(order)
        snd = _np.fromiter(senders, _np.int64, len(senders))
        cnt = _np.fromiter(counts, _np.int64, len(counts))
        src_perm = _np.repeat(snd, cnt).take(order)
        kind_perm = self._round_kind_scalar(kcols)
        if kind_perm is None:
            kinds_l: list[str] = []
            for i, k in enumerate(kcols):
                kinds_l += k if type(k) is list else [k] * counts[i]
            kind_perm = (
                _np.fromiter(kinds_l, dtype=object, count=m_count).take(order).tolist()
            )

        delivered = InboxBatch._over_spans(
            src_perm, pay_perm, kind_perm,
            dsts_present.tolist(), starts.tolist(), ends.tolist(),
            arrival.tolist(),
        )
        if max_recv <= net.capacity:
            if max_recv > stats.max_received_per_round:
                stats.max_received_per_round = max_recv
            return delivered
        # Overloaded receivers: the canonical receive walk keeps ledger
        # order and DROP rng draws identical (sampling an InboxBatch draws
        # the same indices a list would; only then are messages built).
        return self._recv_walk(delivered)

    def _deliver_deferred_py(self, senders, dcols, pcols, kcols):
        """Plain-Python columnar bucketing for small or numpy-free deferred
        rounds: one pass over the columns into per-destination column
        lists — still zero ``Message`` construction.  (Like the numpy
        path, the bits column is dropped; sizes re-derive on demand.)"""
        net = self.net
        stats = net.stats
        kind_scalar = self._round_kind_scalar(kcols)
        boxes: dict[int, tuple[list[int], list, list[str]]] = {}
        for j, s in enumerate(senders):
            pays = pcols[j]
            kinds = kcols[j]
            klist = kinds if type(kinds) is list else None
            for i, d in enumerate(dcols[j]):
                b = boxes.get(d)
                if b is None:
                    boxes[d] = b = ([], [], [])
                b[0].append(s)
                b[1].append(pays[i])
                if kind_scalar is None:
                    b[2].append(kinds if klist is None else klist[i])
        over = InboxBatch._over
        delivered: dict[int, InboxBatch] = {}
        max_recv = 0
        for d, (srcs, pays, kinds) in boxes.items():
            c = len(pays)
            if c > max_recv:
                max_recv = c
            delivered[d] = over(
                srcs, d, pays, None,
                kind_scalar if kind_scalar is not None else kinds,
                0, c,
            )
        if max_recv <= net.capacity:
            if max_recv > stats.max_received_per_round:
                stats.max_received_per_round = max_recv
            return delivered
        return self._recv_walk(delivered)

    # ------------------------------------------------------------------
    def _deliver(self, obj, dst, bounds) -> dict[int, list[Message]]:
        """Bucket the object column into inboxes via one stable argsort and
        enforce receive capacity.  Inboxes are emitted in first-arrival
        order and each keeps the flat (send-order) message order, matching
        the reference engine's incremental dict bucketing.  Clean rounds
        return message-backed :class:`InboxBatch` spans over the permuted
        object column — no ``.tolist()``, no per-inbox list slicing."""
        net = self.net
        stats = net.stats
        dsts_present, group_counts = bounds

        order = _np.argsort(dst, kind="stable")
        # Bucket boundaries without re-gathering dst: per-destination counts
        # prefix-sum to the group extents in ascending-dst order, matching
        # the argsort's group layout.
        ends = _np.cumsum(group_counts)
        starts = ends - group_counts
        max_recv = int(group_counts.max())
        # order[starts[j]] is the flat index of group j's first message, so
        # sorting groups by it recovers first-arrival order.
        arrival = _np.argsort(order[starts], kind="stable")

        permuted = obj.take(order)
        starts_l = starts.tolist()
        ends_l = ends.tolist()
        dsts_l = dsts_present.tolist()

        of_messages = InboxBatch._of_messages
        inboxes: dict[int, InboxBatch] = {}
        for j in arrival.tolist():
            inboxes[dsts_l[j]] = of_messages(
                permuted, dsts_l[j], starts_l[j], ends_l[j]
            )
        if max_recv <= net.capacity:
            if max_recv > stats.max_received_per_round:
                stats.max_received_per_round = max_recv
            return inboxes

        # Overloaded receivers: run the canonical receive walk over the
        # (still bucketed) spans for ledger/rng parity.
        return self._recv_walk(inboxes)


register_engine(BatchedEngine.name, BatchedEngine)
