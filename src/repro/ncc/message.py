"""Messages and payload bit accounting.

The model allows ``O(log n)`` bits per message.  To keep that budget honest,
every payload is assigned a bit size via :func:`payload_bits`.  The estimate
is intentionally simple and conservative-ish: identifiers and weights count
their binary length, containers add their parts, and objects can opt in by
providing a ``size_bits()`` method (e.g. parity sketches).

:class:`MessageBatch` is the columnar companion of :class:`Message`: one
sender's messages together with parallel ``(src, dst, bits)`` arrays so the
batched round engine can account a whole group without touching per-message
attributes.  It behaves exactly like the plain list the reference engine
expects.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

try:  # pragma: no cover - exercised only on numpy-free installs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def payload_bits(payload: Any) -> int:
    """Estimate the wire size of a payload in bits.

    Rules:

    * ``None`` and ``bool`` — 1 bit;
    * ``int`` — its binary length (≥ 1), plus a sign bit if negative;
    * ``float`` — 32 bits (only used for annotation randomness);
    * ``str`` — 4 bits for short strings (≤ 8 chars).  Strings are used
      exclusively as protocol tags / namespaces drawn from a constant-size
      alphabet per protocol step, so they are O(1) bits on the wire; longer
      strings cost 8 bits per character to keep data out of this loophole;
    * ``tuple`` / ``list`` — sum of parts (structure is part of the protocol,
      not the wire format, mirroring how the paper counts only the content);
    * any object with a ``size_bits()`` method — whatever it reports.
    """
    # type() checks (not isinstance) keep this hot path cheap; bool must be
    # tested before int since bool subclasses int.
    t = type(payload)
    if t is int:
        return (payload.bit_length() or 1) + (1 if payload < 0 else 0)
    if t is tuple or t is list:
        total = 0
        for p in payload:
            total += payload_bits(p)
        return total
    if t is str:
        return 4 if len(payload) <= 8 else 8 * len(payload)
    if payload is None or t is bool:
        return 1
    if t is float:
        return 32
    if t is frozenset:
        total = 0
        for p in payload:
            total += payload_bits(p)
        return total
    if isinstance(payload, int):  # IntEnum and friends
        return (payload.bit_length() or 1) + (1 if payload < 0 else 0)
    size = getattr(payload, "size_bits", None)
    if callable(size):
        return int(size())
    raise TypeError(f"cannot size payload of type {type(payload).__name__}")


# ----------------------------------------------------------------------
# Memoized sizing for common payload shapes
# ----------------------------------------------------------------------
# Recursive container walks dominate payload sizing cost; protocols send the
# same few tuple shapes millions of times, so a value-keyed cache pays off.
# The cache relies on "equal payloads have equal sizes", so only payloads
# built from int/bool/str/None (and tuples thereof) may *look up or store*
# entries: floats break the invariant (1 == 1.0 == True, but an int 1 is
# 1 bit and a float is 32), as do objects with a custom ``size_bits()``,
# and int subclasses like IntEnum equal plain ints.  Both the store AND the
# lookup are gated on the predicate — a cached ``(1,)`` must not be served
# for ``(1.0,)``, which hashes and compares equal.  int/bool may share keys
# safely: only True == 1 and False == 0 collide, and both size to 1 bit.
_MEMO_SCALARS = frozenset((int, bool, str, type(None)))

_BITS_MEMO: dict[tuple, int] = {}
_BITS_MEMO_LIMIT = 1 << 16


def _memo_safe(payload: Any) -> bool:
    t = type(payload)
    if t in _MEMO_SCALARS:
        return True
    if t is tuple:
        # Plain loop, not all(genexpr): this runs once per cache probe on
        # the hottest path in the simulator.
        for p in payload:
            if not _memo_safe(p):
                return False
        return True
    return False


def clear_payload_bits_memo() -> None:
    """Drop all cached payload sizes (test isolation hook)."""
    _BITS_MEMO.clear()


def payload_bits_memoized(payload: Any) -> int:
    """:func:`payload_bits` with a value-keyed cache for tuple payloads.

    Agrees with :func:`payload_bits` on every input (asserted by
    ``tests/test_payload_bits_properties.py``); payloads outside the safe
    cacheable subset fall through to the plain recursive walk.
    """
    if type(payload) is not tuple or not _memo_safe(payload):
        return payload_bits(payload)
    hit = _BITS_MEMO.get(payload)
    if hit is not None:
        return hit
    bits = payload_bits(payload)
    if len(_BITS_MEMO) >= _BITS_MEMO_LIMIT:
        _BITS_MEMO.clear()
    _BITS_MEMO[payload] = bits
    return bits


class Message:
    """One message in flight: ``src -> dst`` carrying ``payload``.

    ``kind`` tags the protocol step that produced the message (for statistics
    and debugging); it is metadata, not wire content.  A plain __slots__
    class instead of a dataclass: the routers create millions of these.
    """

    __slots__ = ("src", "dst", "payload", "kind", "bits")

    def __init__(self, src: int, dst: int, payload: Any, kind: str = "", bits: int = -1):
        # Node identifiers are ints by model contract (0..n-1); rejecting
        # other numeric types here keeps every engine's id handling
        # identical (a float id would be a distinct inbox key to a
        # per-message walk but truncate in an int64 column).
        if not isinstance(src, int) or not isinstance(dst, int):
            raise TypeError(
                f"node ids must be ints, got "
                f"{type(src).__name__} -> {type(dst).__name__}"
            )
        self.src = src
        self.dst = dst
        self.payload = payload
        self.kind = kind
        self.bits = bits if bits >= 0 else payload_bits_memoized(payload)

    def sized(self) -> int:
        return self.bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Message({self.src}->{self.dst}, {self.payload!r}, kind={self.kind!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Message)
            and self.src == other.src
            and self.dst == other.dst
            and self.payload == other.payload
            and self.kind == other.kind
        )

    def __hash__(self) -> int:
        return hash((self.src, self.dst, repr(self.payload), self.kind))


class MessageBatch(list):
    """One sender's messages plus parallel ``(src, dst, bits)`` columns.

    A ``MessageBatch`` *is* a ``list[Message]`` — it flows through
    normalization, the reference engine, DROP sampling, and equality checks
    exactly like a plain list.  The batched engine additionally trusts the
    cached columns instead of re-reading per-message attributes, so the
    batch is frozen: every list mutator raises :class:`TypeError` (a stale
    column would silently corrupt the capacity accounting).

    With numpy available the integer columns are stacked into one
    ``(3, len)`` int64 array (rows: src, dst, bits) so a round's groups
    concatenate with a single call, plus an object array of the message
    references for fancy-indexed delivery.  Columns are built lazily on
    first access: a round served by the reference engine (or a batched
    slow path) never pays for them.  Without numpy — or when a value does
    not fit int64 — the columns degrade to plain lists and engines fall
    back to their per-message paths.
    """

    __slots__ = ("_int_cols", "_obj_col", "_list_cols", "_uniform_src", "_bits_agg")

    def __init__(self, messages: Iterable[Message]):
        super().__init__(messages)
        self._int_cols = None
        self._obj_col = None
        self._list_cols = None
        #: The single sender id shared by every message, when the
        #: constructor can prove it (BatchBuilder groups by sender;
        #: from_columns with a scalar src).  ``None`` = unknown/mixed.
        self._uniform_src = None
        #: ``(sum, max)`` of the bits column, captured at finalize so a
        #: clean round needs no per-message bits array at all.
        self._bits_agg = None

    @property
    def int_cols(self):
        cols = self._int_cols
        if cols is None:
            cols = self._int_cols = self._build_int_cols()
        return cols

    @property
    def list_cols(self) -> tuple[list[int], list[int], list[int]]:
        """``(src, dst, bits)`` as plain Python lists.

        :meth:`from_columns` captures these for free while constructing the
        messages; a batch built straight from ``Message`` objects derives
        them on first access.  The batched engine flat-extends these lists
        across a round's groups — one C-level ``memcpy`` per group instead
        of a per-message attribute walk or per-group numpy allocations
        (fresh small batches dominate primitive rounds, so per-batch array
        construction would cost more than it saves).
        """
        cols = self._list_cols
        if cols is None:
            cols = self._list_cols = (
                [m.src for m in self],
                [m.dst for m in self],
                [m.bits for m in self],
            )
        return cols

    @property
    def obj_col(self):
        col = self._obj_col
        if col is None:
            if _np is not None:
                col = _np.fromiter(self, dtype=object, count=len(self))
            else:
                col = list(self)
            self._obj_col = col
        return col

    def _build_int_cols(self):
        k = len(self)
        srcs, dsts, bits = self.list_cols
        if _np is not None:
            try:
                cols = _np.empty((3, k), dtype=_np.int64)
                cols[0] = _np.fromiter(srcs, _np.int64, k)
                cols[1] = _np.fromiter(dsts, _np.int64, k)
                cols[2] = _np.fromiter(bits, _np.int64, k)
                return cols
            except OverflowError:
                # An id/bits value beyond int64 cannot be columnar; the
                # list form routes engines onto their per-message walks,
                # which raise the canonical out-of-range errors.
                pass
        return [srcs, dsts, bits]

    @classmethod
    def from_columns(
        cls,
        src: int | Sequence[int],
        dsts: Sequence[int],
        payloads: Sequence[Any],
        *,
        kind: str | Sequence[str] = "",
    ) -> "MessageBatch":
        """Build a batch from parallel columns (the cheap constructor).

        ``kind`` may be a single tag for the whole batch or a parallel
        column of per-message tags (a round may mix e.g. data and token
        messages from one sender).
        """
        if isinstance(src, int):
            srcs: Sequence[int] = (src,) * len(dsts)
        else:
            srcs = src
        if isinstance(kind, str):
            kinds: Sequence[str] = (kind,) * len(dsts)
        else:
            kinds = kind
        msgs: list[Message] = []
        src_l: list[int] = []
        dst_l: list[int] = []
        bits_l: list[int] = []
        for s, d, p, k in zip(srcs, dsts, payloads, kinds, strict=True):
            m = Message(s, d, p, k)
            msgs.append(m)
            src_l.append(s)
            dst_l.append(d)
            bits_l.append(m.bits)
        batch = cls(msgs)
        # The columns are known as a by-product of construction; cache them
        # so the engine never re-reads per-message attributes.
        batch._list_cols = (src_l, dst_l, bits_l)
        if isinstance(src, int):
            batch._uniform_src = src
        batch._bits_agg = (sum(bits_l), max(bits_l, default=0))
        return batch

    # -- frozen: all mutators raise ------------------------------------
    def _frozen(self, *_args: Any, **_kwargs: Any):
        raise TypeError("MessageBatch is immutable (columns would go stale)")

    append = extend = insert = remove = pop = clear = _frozen
    sort = reverse = __setitem__ = __delitem__ = _frozen
    __iadd__ = __imul__ = _frozen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MessageBatch({list.__repr__(self)})"


class BatchBuilder:
    """Accumulates one round's ``(dst, payload)`` pairs per sender and
    finalizes them into per-sender :class:`MessageBatch` groups.

    This is the columnar submission helper every primitive uses: instead of
    materializing a flat ``list[Message]`` and letting
    :meth:`~repro.ncc.network.NCCNetwork.exchange` bucket it per sender, the
    primitive appends ``(src, dst, payload)`` triples here and submits the
    builder itself.  :meth:`batches` groups by sender in first-occurrence
    order with per-sender append order preserved — exactly the normalization
    ``exchange`` applies to a flat iterable — so the submission form is
    observably identical under every engine, while the batched engine gets
    cached columns to concatenate instead of per-message attribute walks.

    A builder is single-shot: it belongs to one round.  ``kind`` set at
    construction tags every message; :meth:`add` may override it per message
    (e.g. routers mixing data and token traffic from one sender).
    """

    __slots__ = ("kind", "_groups", "_spent")

    def __init__(self, kind: str = ""):
        self.kind = kind
        # src -> (messages, dsts, bits): the Message is built once, here,
        # and its columns are captured as a by-product — finalization never
        # re-walks the messages.
        self._groups: dict[int, tuple[list[Message], list[int], list[int]]] = {}
        self._spent = False

    def add(self, src: int, dst: int, payload: Any, kind: str | None = None) -> None:
        """Queue one ``src -> dst`` message carrying ``payload``."""
        if self._spent:
            raise TypeError(
                "BatchBuilder already finalized (its batches share the "
                "builder's columns; adding would corrupt them)"
            )
        m = Message(src, dst, payload, self.kind if kind is None else kind)
        g = self._groups.get(src)
        if g is None:
            self._groups[src] = g = ([], [], [])
        g[0].append(m)
        g[1].append(dst)
        g[2].append(m.bits)

    def add_many(
        self, src: int, dsts: Iterable[int], payloads: Iterable[Any]
    ) -> None:
        """Queue a run of messages from one sender (parallel columns).

        Atomic: a length mismatch queues nothing, and an empty run does not
        register the sender (``bool(builder)`` stays faithful to "has any
        message", which round loops use as their stop condition).
        """
        if self._spent:
            raise TypeError(
                "BatchBuilder already finalized (its batches share the "
                "builder's columns; adding would corrupt them)"
            )
        kind = self.kind
        msgs: list[Message] = []
        dst_l: list[int] = []
        bits_l: list[int] = []
        for d, p in zip(dsts, payloads, strict=True):
            m = Message(src, d, p, kind)
            msgs.append(m)
            dst_l.append(d)
            bits_l.append(m.bits)
        if not msgs:
            return
        g = self._groups.get(src)
        if g is None:
            self._groups[src] = g = ([], [], [])
        g[0].extend(msgs)
        g[1].extend(dst_l)
        g[2].extend(bits_l)

    def __len__(self) -> int:
        return sum(len(g[0]) for g in self._groups.values())

    def __bool__(self) -> bool:
        return bool(self._groups)

    def senders(self) -> list[int]:
        return list(self._groups)

    def batches(self) -> dict[int, MessageBatch]:
        """Finalize into per-sender batches with pre-captured columns.

        Finalization is zero-copy: the batches take ownership of the
        builder's lists, so the builder is spent afterwards — further
        ``add`` calls raise (a stale alias would silently corrupt the
        frozen batches' cached columns).
        """
        self._spent = True
        out: dict[int, MessageBatch] = {}
        for src, (msgs, dsts, bits) in self._groups.items():
            batch = MessageBatch(msgs)
            batch._list_cols = ([src] * len(msgs), dsts, bits)
            batch._uniform_src = src
            batch._bits_agg = (sum(bits), max(bits, default=0))
            out[src] = batch
        return out
