"""Messages and payload bit accounting.

The model allows ``O(log n)`` bits per message.  To keep that budget honest,
every payload is assigned a bit size via :func:`payload_bits`.  The estimate
is intentionally simple and conservative-ish: identifiers and weights count
their binary length, containers add their parts, and objects can opt in by
providing a ``size_bits()`` method (e.g. parity sketches).

:class:`MessageBatch` is the columnar companion of :class:`Message`: one
sender's messages together with parallel ``(src, dst, bits)`` arrays so the
batched round engine can account a whole group without touching per-message
attributes.  It behaves exactly like the plain list the reference engine
expects.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

try:  # pragma: no cover - exercised only on numpy-free installs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def payload_bits(payload: Any) -> int:
    """Estimate the wire size of a payload in bits.

    Rules:

    * ``None`` and ``bool`` — 1 bit;
    * ``int`` — its binary length (≥ 1), plus a sign bit if negative;
    * ``float`` — 32 bits (only used for annotation randomness);
    * ``str`` — 4 bits for short strings (≤ 8 chars).  Strings are used
      exclusively as protocol tags / namespaces drawn from a constant-size
      alphabet per protocol step, so they are O(1) bits on the wire; longer
      strings cost 8 bits per character to keep data out of this loophole;
    * ``tuple`` / ``list`` — sum of parts (structure is part of the protocol,
      not the wire format, mirroring how the paper counts only the content);
    * any object with a ``size_bits()`` method — whatever it reports.
    """
    # type() checks (not isinstance) keep this hot path cheap; bool must be
    # tested before int since bool subclasses int.
    t = type(payload)
    if t is int:
        return (payload.bit_length() or 1) + (1 if payload < 0 else 0)
    if t is tuple or t is list:
        total = 0
        for p in payload:
            total += payload_bits(p)
        return total
    if t is str:
        return 4 if len(payload) <= 8 else 8 * len(payload)
    if payload is None or t is bool:
        return 1
    if t is float:
        return 32
    if t is frozenset:
        total = 0
        for p in payload:
            total += payload_bits(p)
        return total
    if isinstance(payload, int):  # IntEnum and friends
        return (payload.bit_length() or 1) + (1 if payload < 0 else 0)
    size = getattr(payload, "size_bits", None)
    if callable(size):
        return int(size())
    raise TypeError(f"cannot size payload of type {type(payload).__name__}")


# ----------------------------------------------------------------------
# Memoized sizing for common payload shapes
# ----------------------------------------------------------------------
# Recursive container walks dominate payload sizing cost; protocols send the
# same few tuple shapes millions of times, so a value-keyed cache pays off.
# The cache relies on "equal payloads have equal sizes", so only payloads
# built from int/bool/str/None (and tuples thereof) may *look up or store*
# entries: floats break the invariant (1 == 1.0 == True, but an int 1 is
# 1 bit and a float is 32), as do objects with a custom ``size_bits()``,
# and int subclasses like IntEnum equal plain ints.  Both the store AND the
# lookup are gated on the predicate — a cached ``(1,)`` must not be served
# for ``(1.0,)``, which hashes and compares equal.  int/bool may share keys
# safely: only True == 1 and False == 0 collide, and both size to 1 bit.
_MEMO_SCALARS = frozenset((int, bool, str, type(None)))

_BITS_MEMO: dict[tuple, int] = {}
_BITS_MEMO_LIMIT = 1 << 16


def _memo_safe(payload: Any) -> bool:
    t = type(payload)
    if t in _MEMO_SCALARS:
        return True
    if t is tuple:
        return all(_memo_safe(p) for p in payload)
    return False


def clear_payload_bits_memo() -> None:
    """Drop all cached payload sizes (test isolation hook)."""
    _BITS_MEMO.clear()


def payload_bits_memoized(payload: Any) -> int:
    """:func:`payload_bits` with a value-keyed cache for tuple payloads.

    Agrees with :func:`payload_bits` on every input (asserted by
    ``tests/test_payload_bits_properties.py``); payloads outside the safe
    cacheable subset fall through to the plain recursive walk.
    """
    if type(payload) is not tuple or not _memo_safe(payload):
        return payload_bits(payload)
    hit = _BITS_MEMO.get(payload)
    if hit is not None:
        return hit
    bits = payload_bits(payload)
    if len(_BITS_MEMO) >= _BITS_MEMO_LIMIT:
        _BITS_MEMO.clear()
    _BITS_MEMO[payload] = bits
    return bits


class Message:
    """One message in flight: ``src -> dst`` carrying ``payload``.

    ``kind`` tags the protocol step that produced the message (for statistics
    and debugging); it is metadata, not wire content.  A plain __slots__
    class instead of a dataclass: the routers create millions of these.
    """

    __slots__ = ("src", "dst", "payload", "kind", "bits")

    def __init__(self, src: int, dst: int, payload: Any, kind: str = "", bits: int = -1):
        # Node identifiers are ints by model contract (0..n-1); rejecting
        # other numeric types here keeps every engine's id handling
        # identical (a float id would be a distinct inbox key to a
        # per-message walk but truncate in an int64 column).
        if not isinstance(src, int) or not isinstance(dst, int):
            raise TypeError(
                f"node ids must be ints, got "
                f"{type(src).__name__} -> {type(dst).__name__}"
            )
        self.src = src
        self.dst = dst
        self.payload = payload
        self.kind = kind
        self.bits = bits if bits >= 0 else payload_bits_memoized(payload)

    def sized(self) -> int:
        return self.bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Message({self.src}->{self.dst}, {self.payload!r}, kind={self.kind!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Message)
            and self.src == other.src
            and self.dst == other.dst
            and self.payload == other.payload
            and self.kind == other.kind
        )

    def __hash__(self) -> int:
        return hash((self.src, self.dst, repr(self.payload), self.kind))


class MessageBatch(list):
    """One sender's messages plus parallel ``(src, dst, bits)`` columns.

    A ``MessageBatch`` *is* a ``list[Message]`` — it flows through
    normalization, the reference engine, DROP sampling, and equality checks
    exactly like a plain list.  The batched engine additionally trusts the
    cached columns instead of re-reading per-message attributes, so the
    batch is frozen: every list mutator raises :class:`TypeError` (a stale
    column would silently corrupt the capacity accounting).

    With numpy available the integer columns are stacked into one
    ``(3, len)`` int64 array (rows: src, dst, bits) so a round's groups
    concatenate with a single call, plus an object array of the message
    references for fancy-indexed delivery.  Columns are built lazily on
    first access: a round served by the reference engine (or a batched
    slow path) never pays for them.  Without numpy — or when a value does
    not fit int64 — the columns degrade to plain lists and engines fall
    back to their per-message paths.
    """

    __slots__ = ("_int_cols", "_obj_col")

    def __init__(self, messages: Iterable[Message]):
        super().__init__(messages)
        self._int_cols = None
        self._obj_col = None

    @property
    def int_cols(self):
        cols = self._int_cols
        if cols is None:
            cols = self._int_cols = self._build_int_cols()
        return cols

    @property
    def obj_col(self):
        col = self._obj_col
        if col is None:
            if _np is not None:
                col = _np.fromiter(self, dtype=object, count=len(self))
            else:
                col = list(self)
            self._obj_col = col
        return col

    def _build_int_cols(self):
        k = len(self)
        if _np is not None:
            try:
                cols = _np.empty((3, k), dtype=_np.int64)
                cols[0] = _np.fromiter((m.src for m in self), _np.int64, k)
                cols[1] = _np.fromiter((m.dst for m in self), _np.int64, k)
                cols[2] = _np.fromiter((m.bits for m in self), _np.int64, k)
                return cols
            except OverflowError:
                # An id/bits value beyond int64 cannot be columnar; the
                # list form routes engines onto their per-message walks,
                # which raise the canonical out-of-range errors.
                pass
        return [
            [m.src for m in self],
            [m.dst for m in self],
            [m.bits for m in self],
        ]

    @classmethod
    def from_columns(
        cls,
        src: int | Sequence[int],
        dsts: Sequence[int],
        payloads: Sequence[Any],
        *,
        kind: str = "",
    ) -> "MessageBatch":
        """Build a batch from parallel columns (the cheap constructor)."""
        if isinstance(src, int):
            srcs: Sequence[int] = (src,) * len(dsts)
        else:
            srcs = src
        return cls(
            Message(s, d, p, kind)
            for s, d, p in zip(srcs, dsts, payloads, strict=True)
        )

    # -- frozen: all mutators raise ------------------------------------
    def _frozen(self, *_args: Any, **_kwargs: Any):
        raise TypeError("MessageBatch is immutable (columns would go stale)")

    append = extend = insert = remove = pop = clear = _frozen
    sort = reverse = __setitem__ = __delitem__ = _frozen
    __iadd__ = __imul__ = _frozen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MessageBatch({list.__repr__(self)})"
