"""Messages and payload bit accounting.

The model allows ``O(log n)`` bits per message.  To keep that budget honest,
every payload is assigned a bit size via :func:`payload_bits`.  The estimate
is intentionally simple and conservative-ish: identifiers and weights count
their binary length, containers add their parts, and objects can opt in by
providing a ``size_bits()`` method (e.g. parity sketches).

:class:`MessageBatch` is the columnar companion of :class:`Message`: one
sender's messages together with parallel ``(src, dst, bits)`` arrays so the
batched round engine can account a whole group without touching per-message
attributes.  It behaves exactly like the plain list the reference engine
expects.

:class:`InboxBatch` goes one step further: a lazy, frozen,
``list[Message]``-compatible *view* over parallel ``(src, dst, payload,
bits, kind)`` columns that materializes a :class:`Message` only when an
element is actually accessed.  It serves both directions of a round: the
(default) deferred mode of :class:`BatchBuilder` finalizes each sender's
traffic into one, and the batched engine delivers each destination's slice
of the round's permuted columns as one — so a clean batched-engine round
never constructs a single ``Message`` end-to-end.  Consumers that only need
the payload column read it via :meth:`InboxBatch.payloads` (or the
engine-agnostic :func:`payloads_of`) without triggering materialization.
"""

from __future__ import annotations

from collections.abc import Sequence as _SequenceABC
from typing import Any, Iterable, Sequence

try:  # pragma: no cover - exercised only on numpy-free installs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def payload_bits(payload: Any) -> int:
    """Estimate the wire size of a payload in bits.

    Rules:

    * ``None`` and ``bool`` — 1 bit;
    * ``int`` — its binary length (≥ 1), plus a sign bit if negative;
    * ``float`` — 32 bits (only used for annotation randomness);
    * ``str`` — 4 bits for short strings (≤ 8 chars).  Strings are used
      exclusively as protocol tags / namespaces drawn from a constant-size
      alphabet per protocol step, so they are O(1) bits on the wire; longer
      strings cost 8 bits per character to keep data out of this loophole;
    * ``tuple`` / ``list`` — sum of parts (structure is part of the protocol,
      not the wire format, mirroring how the paper counts only the content);
    * any object with a ``size_bits()`` method — whatever it reports.
    """
    # type() checks (not isinstance) keep this hot path cheap; bool must be
    # tested before int since bool subclasses int.
    t = type(payload)
    if t is int:
        return (payload.bit_length() or 1) + (1 if payload < 0 else 0)
    if t is tuple or t is list:
        total = 0
        for p in payload:
            total += payload_bits(p)
        return total
    if t is str:
        return 4 if len(payload) <= 8 else 8 * len(payload)
    if payload is None or t is bool:
        return 1
    if t is float:
        return 32
    if t is frozenset:
        total = 0
        for p in payload:
            total += payload_bits(p)
        return total
    if isinstance(payload, int):  # IntEnum and friends
        return (payload.bit_length() or 1) + (1 if payload < 0 else 0)
    if _np is not None and isinstance(payload, _np.generic):
        return _np_scalar_bits(payload)
    size = getattr(payload, "size_bits", None)
    if callable(size):
        return int(size())
    raise TypeError(f"cannot size payload of type {type(payload).__name__}")


def _np_scalar_bits(payload: Any) -> int:
    """Size a numpy scalar exactly like its Python counterpart.

    numpy scalars are not ``int``/``bool`` subclasses and have no
    ``size_bits()``, so without this branch a payload read back off a typed
    column and re-submitted would raise ``TypeError``.  They are *not*
    memo-safe (``np.int64(1) == 1 == 1.0``) and stay out of the value-keyed
    cache — :func:`payload_bits_memoized` excludes them structurally
    (``type() not in _MEMO_SCALARS``).
    """
    if isinstance(payload, _np.bool_):
        return 1
    if isinstance(payload, _np.integer):
        v = int(payload)
        return (v.bit_length() or 1) + (1 if v < 0 else 0)
    if isinstance(payload, _np.floating):
        return 32
    if isinstance(payload, _np.str_):
        return 4 if len(payload) <= 8 else 8 * len(payload)
    if isinstance(payload, _np.void) and payload.dtype.names is not None:
        total = 0
        for p in payload.item():  # structured scalar -> Python tuple
            total += payload_bits(p)
        return total
    raise TypeError(f"cannot size payload of type {type(payload).__name__}")


# ----------------------------------------------------------------------
# Memoized sizing for common payload shapes
# ----------------------------------------------------------------------
# Recursive container walks dominate payload sizing cost; protocols send the
# same few tuple shapes millions of times, so a value-keyed cache pays off.
# The cache relies on "equal payloads have equal sizes", so only payloads
# built from int/bool/str/None (and tuples thereof) may *look up or store*
# entries: floats break the invariant (1 == 1.0 == True, but an int 1 is
# 1 bit and a float is 32), as do objects with a custom ``size_bits()``,
# and int subclasses like IntEnum equal plain ints.  Both the store AND the
# lookup are gated on the predicate — a cached ``(1,)`` must not be served
# for ``(1.0,)``, which hashes and compares equal.  int/bool may share keys
# safely: only True == 1 and False == 0 collide, and both size to 1 bit.
_MEMO_SCALARS = frozenset((int, bool, str, type(None)))

_BITS_MEMO: dict[tuple, int] = {}
_BITS_MEMO_LIMIT = 1 << 16


def _memo_safe(payload: Any) -> bool:
    t = type(payload)
    if t in _MEMO_SCALARS:
        return True
    if t is tuple:
        # Plain loop, not all(genexpr): this runs once per cache probe on
        # the hottest path in the simulator.
        for p in payload:
            if not _memo_safe(p):
                return False
        return True
    return False


def clear_payload_bits_memo() -> None:
    """Drop all cached payload sizes (test isolation hook)."""
    _BITS_MEMO.clear()


def payload_bits_memoized(payload: Any) -> int:
    """:func:`payload_bits` with a value-keyed cache for tuple payloads.

    Agrees with :func:`payload_bits` on every input (asserted by
    ``tests/test_payload_bits_properties.py``); payloads outside the safe
    cacheable subset fall through to the plain recursive walk.
    """
    if type(payload) is not tuple:
        return payload_bits(payload)
    # Flat safety scan inlined (this is the hottest call in the simulator):
    # scalars are checked in place, only nested tuples recurse.
    scalars = _MEMO_SCALARS
    for p in payload:
        t = type(p)
        if t not in scalars and (t is not tuple or not _memo_safe(p)):
            return payload_bits(payload)
    hit = _BITS_MEMO.get(payload)
    if hit is not None:
        return hit
    # Memo miss on a safe tuple: size it in place (same rules as
    # :func:`payload_bits`, one frame instead of one per element).
    bits = 0
    for p in payload:
        t = p.__class__
        if t is int:
            bits += (p.bit_length() or 1) + (1 if p < 0 else 0)
        elif t is str:
            bits += 4 if len(p) <= 8 else 8 * len(p)
        elif t is tuple:
            bits += payload_bits_memoized(p)
        else:  # bool / None (the only remaining memo-safe scalars)
            bits += 1
    if len(_BITS_MEMO) >= _BITS_MEMO_LIMIT:
        _BITS_MEMO.clear()
    _BITS_MEMO[payload] = bits
    return bits


#: Process-wide count of ``Message.__init__`` calls — the construction
#: accounting the lazy-inbox tests assert on ("a clean batched round builds
#: zero Message objects").  A monotone counter, never reset: tests snapshot
#: it around the region under scrutiny.
_construction_count = 0


def message_construction_count() -> int:
    """Total :class:`Message` objects constructed so far (test hook)."""
    return _construction_count


#: Process-wide count of Python payload objects boxed out of typed columns
#: (``.item()`` / ``.tolist()`` reads, typed-builder degradation).  The
#: typed-column invariant — a clean typed round constructs zero Python
#: payload objects — is gated on this staying flat across a run.  Field
#: reads via :meth:`InboxBatch.payload_array` are *not* boxes.  Monotone,
#: never reset: tests snapshot it around the region under scrutiny.
_box_count = 0


def payload_box_count() -> int:
    """Total payload elements boxed out of typed columns so far (test hook)."""
    return _box_count


def _count_boxes(k: int) -> None:
    """Charge ``k`` typed-column boxes (internal: engine fallback paths)."""
    global _box_count
    _box_count += k


#: Process-wide default for typed payload submission: when True (shipped
#: default) primitives that can prove their traffic fits a declared dtype
#: (int groups/values, lightweight sync, a ufunc-backed aggregate) submit
#: typed columns; when False they keep the PR 3 object-column pipeline.
#: The benchmark gates flip this to measure typed against object on the
#: same workload.
_TYPED_DEFAULT = True


def set_typed_payloads(flag: bool) -> bool:
    """Set the process-wide typed-payload default; returns the previous
    value (benchmark/test hook — always restore)."""
    global _TYPED_DEFAULT
    previous = _TYPED_DEFAULT
    _TYPED_DEFAULT = bool(flag)
    return previous


def typed_payloads_enabled() -> bool:
    """Whether primitives should prefer typed payload columns."""
    return _TYPED_DEFAULT


# ----------------------------------------------------------------------
# Vectorized payload sizing for typed columns
# ----------------------------------------------------------------------

def _int_col_bits(v):
    """Exact :func:`payload_bits` of an int column, vectorized.

    ``(bit_length or 1) + sign`` per element, computed with shift/compare
    arithmetic only (no per-element Python).  The two's-complement negate
    through uint64 handles ``-2**63`` exactly, where ``abs`` would wrap.
    """
    neg = v < 0
    mag = v.astype(_np.uint64)
    mag = _np.where(neg, ~mag + _np.uint64(1), mag)
    bl = _np.zeros(v.shape, dtype=_np.int64)
    # Binary-search the bit length: after the loop ``mag`` is 0 or 1 and
    # ``bl`` holds bit_length - (mag != 0).
    for shift in (32, 16, 8, 4, 2, 1):
        t = mag >> _np.uint64(shift)
        big = t != 0
        bl += _np.where(big, shift, 0)
        mag = _np.where(big, t, mag)
    bl += mag != 0
    return _np.maximum(bl, 1) + neg


def typed_payload_bits(values):
    """Per-element :func:`payload_bits` of a typed payload column.

    Matches the scalar rules field-for-field: int fields size by binary
    length (+ sign), unicode fields by the short-string tag rule, bool
    fields at 1 bit, float fields at 32 — so a typed column and its boxed
    ``.tolist()`` form always account identical wire bits.
    """
    dt = values.dtype
    if dt.names is None:
        return _int_col_bits(values)
    total = _np.zeros(values.shape, dtype=_np.int64)
    for name in dt.names:
        col = values[name]
        k = col.dtype.kind
        if k == "i":
            total += _int_col_bits(col)
        elif k == "U":
            ln = _np.char.str_len(col)
            total += _np.where(ln <= 8, 4, 8 * ln)
        elif k == "b":
            total += 1
        elif k == "f":
            total += 32
        else:  # pragma: no cover - excluded by _typed_dtype_ok
            raise TypeError(f"cannot size typed field of kind {k!r}")
    return total


def _typed_dtype_ok(dt) -> bool:
    """Whether ``dt`` is a supported declared payload dtype: a signed-int
    scalar, or a flat structured dtype of int/str/bool/float fields (the
    shapes :func:`typed_payload_bits` can size and ``.item()`` boxes to the
    exact Python payloads the object path would carry)."""
    if dt.names is None:
        return dt.kind == "i"
    for name in dt.names:
        sub = dt.fields[name][0]
        if sub.names is not None or sub.shape != ():
            return False
        if sub.kind not in ("i", "U", "b", "f"):
            return False
    return True


class Message:
    """One message in flight: ``src -> dst`` carrying ``payload``.

    ``kind`` tags the protocol step that produced the message (for statistics
    and debugging); it is metadata, not wire content.  A plain __slots__
    class instead of a dataclass: the routers create millions of these.
    """

    __slots__ = ("src", "dst", "payload", "kind", "bits")

    def __init__(self, src: int, dst: int, payload: Any, kind: str = "", bits: int = -1):
        global _construction_count
        _construction_count += 1
        # Node identifiers are ints by model contract (0..n-1); rejecting
        # other numeric types here keeps every engine's id handling
        # identical (a float id would be a distinct inbox key to a
        # per-message walk but truncate in an int64 column).
        if not isinstance(src, int) or not isinstance(dst, int):
            raise TypeError(
                f"node ids must be ints, got "
                f"{type(src).__name__} -> {type(dst).__name__}"
            )
        self.src = src
        self.dst = dst
        self.payload = payload
        self.kind = kind
        self.bits = bits if bits >= 0 else payload_bits_memoized(payload)

    def sized(self) -> int:
        return self.bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Message({self.src}->{self.dst}, {self.payload!r}, kind={self.kind!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Message)
            and self.src == other.src
            and self.dst == other.dst
            and self.payload == other.payload
            and self.kind == other.kind
        )

    def __hash__(self) -> int:
        # Must agree with __eq__, which compares payloads with ``==``:
        # hashing the payload itself keeps equal-but-distinct values (1,
        # True, 1.0) on one hash, where the old ``repr(payload)`` key split
        # them and broke set/dict dedup.  Unhashable payloads contribute
        # nothing to the hash — any derived key (repr included) would
        # split equal values again ([1] == [1.0], different reprs), so
        # those messages simply collide on (src, dst, kind) and equality
        # disambiguates.
        try:
            payload_key = hash(self.payload)
        except TypeError:
            payload_key = 0
        return hash((self.src, self.dst, self.kind, payload_key))


class MessageBatch(list):
    """One sender's messages plus parallel ``(src, dst, bits)`` columns.

    A ``MessageBatch`` *is* a ``list[Message]`` — it flows through
    normalization, the reference engine, DROP sampling, and equality checks
    exactly like a plain list.  The batched engine additionally trusts the
    cached columns instead of re-reading per-message attributes, so the
    batch is frozen: every list mutator raises :class:`TypeError` (a stale
    column would silently corrupt the capacity accounting).

    With numpy available the integer columns are stacked into one
    ``(3, len)`` int64 array (rows: src, dst, bits) so a round's groups
    concatenate with a single call, plus an object array of the message
    references for fancy-indexed delivery.  Columns are built lazily on
    first access: a round served by the reference engine (or a batched
    slow path) never pays for them.  Without numpy — or when a value does
    not fit int64 — the columns degrade to plain lists and engines fall
    back to their per-message paths.
    """

    __slots__ = ("_int_cols", "_obj_col", "_list_cols", "_uniform_src", "_bits_agg")

    def __init__(self, messages: Iterable[Message]):
        super().__init__(messages)
        self._int_cols = None
        self._obj_col = None
        self._list_cols = None
        #: The single sender id shared by every message, when the
        #: constructor can prove it (BatchBuilder groups by sender;
        #: from_columns with a scalar src).  ``None`` = unknown/mixed.
        self._uniform_src = None
        #: ``(sum, max)`` of the bits column, captured at finalize so a
        #: clean round needs no per-message bits array at all.
        self._bits_agg = None

    @property
    def int_cols(self):
        cols = self._int_cols
        if cols is None:
            cols = self._int_cols = self._build_int_cols()
        return cols

    @property
    def list_cols(self) -> tuple[list[int], list[int], list[int]]:
        """``(src, dst, bits)`` as plain Python lists.

        :meth:`from_columns` captures these for free while constructing the
        messages; a batch built straight from ``Message`` objects derives
        them on first access.  The batched engine flat-extends these lists
        across a round's groups — one C-level ``memcpy`` per group instead
        of a per-message attribute walk or per-group numpy allocations
        (fresh small batches dominate primitive rounds, so per-batch array
        construction would cost more than it saves).
        """
        cols = self._list_cols
        if cols is None:
            cols = self._list_cols = (
                [m.src for m in self],
                [m.dst for m in self],
                [m.bits for m in self],
            )
        return cols

    @property
    def obj_col(self):
        col = self._obj_col
        if col is None:
            if _np is not None:
                col = _np.fromiter(self, dtype=object, count=len(self))
            else:
                col = list(self)
            self._obj_col = col
        return col

    def _build_int_cols(self):
        k = len(self)
        srcs, dsts, bits = self.list_cols
        if _np is not None:
            try:
                cols = _np.empty((3, k), dtype=_np.int64)
                cols[0] = _np.fromiter(srcs, _np.int64, k)
                cols[1] = _np.fromiter(dsts, _np.int64, k)
                cols[2] = _np.fromiter(bits, _np.int64, k)
                return cols
            except OverflowError:
                # An id/bits value beyond int64 cannot be columnar; the
                # list form routes engines onto their per-message walks,
                # which raise the canonical out-of-range errors.
                pass
        return [srcs, dsts, bits]

    @classmethod
    def from_columns(
        cls,
        src: int | Sequence[int],
        dsts: Sequence[int],
        payloads: Sequence[Any],
        *,
        kind: str | Sequence[str] = "",
    ) -> "MessageBatch":
        """Build a batch from parallel columns (the cheap constructor).

        ``kind`` may be a single tag for the whole batch or a parallel
        column of per-message tags (a round may mix e.g. data and token
        messages from one sender).
        """
        if isinstance(src, int):
            # bool passes the int check (it subclasses int); normalize it so
            # a ``True`` sender does not leak into the ``_uniform_src``
            # metadata and the int64 engine columns as a non-int.
            src = int(src)
            srcs: Sequence[int] = (src,) * len(dsts)
        else:
            srcs = src
        if isinstance(kind, str):
            kinds: Sequence[str] = (kind,) * len(dsts)
        else:
            kinds = kind
        msgs: list[Message] = []
        src_l: list[int] = []
        dst_l: list[int] = []
        bits_l: list[int] = []
        for s, d, p, k in zip(srcs, dsts, payloads, kinds, strict=True):
            m = Message(s, d, p, k)
            msgs.append(m)
            src_l.append(s)
            dst_l.append(d)
            bits_l.append(m.bits)
        batch = cls(msgs)
        # The columns are known as a by-product of construction; cache them
        # so the engine never re-reads per-message attributes.
        batch._list_cols = (src_l, dst_l, bits_l)
        if isinstance(src, int):
            batch._uniform_src = src
        batch._bits_agg = (sum(bits_l), max(bits_l, default=0))
        return batch

    # -- frozen: all mutators raise ------------------------------------
    def _frozen(self, *_args: Any, **_kwargs: Any):
        raise TypeError("MessageBatch is immutable (columns would go stale)")

    append = extend = insert = remove = pop = clear = _frozen
    sort = reverse = __setitem__ = __delitem__ = _frozen
    __iadd__ = __imul__ = _frozen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MessageBatch({list.__repr__(self)})"


class BuilderBatches(dict):
    """The finalize product of :class:`BatchBuilder`'s deferred mode: a
    frozen ``sender -> InboxBatch`` mapping.

    The type itself is the engine's provenance proof: every value is a
    column-backed, uniform-sender, whole-span :class:`InboxBatch` with int
    keys and no empty groups, so the batched engine may take its lazy
    columnar path without a per-group classification pass.  That proof
    only holds if the mapping cannot be edited afterwards — hence frozen.

    ``bits_sum`` / ``bits_max`` carry the round-level bit aggregates the
    builder tracked while accumulating, so the engine's send-side
    accounting is O(1) instead of O(senders) dict walks.

    ``dtype`` records the declared payload dtype when every group is a
    typed column (``None`` for the object layout): the engine's cue that
    delivery can stay in ndarrays end-to-end.
    """

    __slots__ = ("bits_sum", "bits_max", "dtype")

    def __init__(self, bits_sum: int = 0, bits_max: int = 0, dtype: Any = None):
        super().__init__()
        self.bits_sum = bits_sum
        self.bits_max = bits_max
        self.dtype = dtype

    def _frozen(self, *_args: Any, **_kwargs: Any):
        raise TypeError("BuilderBatches is immutable (engine provenance proof)")

    __setitem__ = __delitem__ = _frozen
    update = pop = popitem = clear = setdefault = _frozen


class InboxBatch(_SequenceABC):
    """A lazy, frozen ``list[Message]``-compatible view over parallel
    ``(src, dst, payload, bits, kind)`` columns.

    Two backings exist:

    * *column-backed* — the deferred :class:`BatchBuilder` output (uniform
      ``src``, per-message ``dst``) and the batched engine's clean-round
      delivery (shared permuted round columns, a ``[start, end)`` span per
      destination, uniform ``dst``).  A :class:`Message` is constructed
      only when an element is accessed, and cached per index;
      :meth:`payloads` / :meth:`srcs` / :meth:`items` read the columns
      without constructing anything.
    * *message-backed* — a span over an already-materialized message
      column (the batched engine's eager ``MessageBatch`` delivery);
      element access just indexes, nothing is re-built.

    The view is frozen: it has no mutators, and the scalar/list columns it
    wraps are owned by the batch (accessors return copies).  Equality is
    element-wise against any ``list[Message]`` or other ``InboxBatch`` —
    including order — without materializing; lists compare equal to it via
    the reflected operator.  Like a list it is unhashable.
    """

    __slots__ = (
        "_srcs", "_dsts", "_payloads", "_bits", "_kinds",
        "_start", "_end", "_msgs", "_mat", "_bits_agg",
    )

    def __init__(
        self,
        srcs: int | Sequence[int],
        dsts: int | Sequence[int],
        payloads: Sequence[Any],
        *,
        bits: Sequence[int] | None = None,
        kinds: str | Sequence[str] = "",
    ):
        k = len(payloads)
        self._srcs = _norm_id_column(srcs, k)
        self._dsts = _norm_id_column(dsts, k)
        self._payloads = list(payloads)
        if bits is None:
            self._bits = [payload_bits_memoized(p) for p in self._payloads]
        else:
            self._bits = list(bits)
            if len(self._bits) != k:
                raise ValueError("bits column length mismatch")
        if isinstance(kinds, str):
            self._kinds: str | list[str] = kinds
        else:
            self._kinds = list(kinds)
            if len(self._kinds) != k:
                raise ValueError("kind column length mismatch")
        self._start = 0
        self._end = k
        self._msgs = None
        self._mat = None
        self._bits_agg = None

    # -- trusted constructors (columns already validated) ----------------
    @classmethod
    def _over(cls, srcs, dsts, payloads, bits, kinds, start, end, bits_agg=None):
        """Span ``[start, end)`` over shared, pre-validated columns."""
        self = object.__new__(cls)
        self._srcs = srcs
        self._dsts = dsts
        self._payloads = payloads
        self._bits = bits
        self._kinds = kinds
        self._start = start
        self._end = end
        self._msgs = None
        self._mat = None
        self._bits_agg = bits_agg
        return self

    @classmethod
    def _over_spans(cls, srcs, payloads, kinds, dsts, starts, ends, arrival,
                    cols=None):
        """One round's delivered ``{dst: span}`` dict, built in bulk.

        The engines' clean-round delivery builds one span per receiving
        node; at n ≥ 10^5 the per-span :meth:`_over` call overhead (frame
        + argument packing per inbox) dominates the merge, so this builds
        the whole dict in one tight loop with the allocator bound locally.
        ``dsts``/``starts``/``ends`` are per-group int lists; ``arrival``
        gives the dict insertion order.  With ``cols``, group ``j`` reads
        its ``(srcs, payloads)`` backing columns from ``cols[j]`` (the
        sharded engine's per-block columns) instead of the shared
        ``srcs``/``payloads``.
        """
        new = object.__new__
        delivered: dict[int, "InboxBatch"] = {}
        for j in arrival:
            self = new(cls)
            if cols is not None:
                srcs, payloads = cols[j]
            d = dsts[j]
            self._srcs = srcs
            self._dsts = d
            self._payloads = payloads
            self._bits = None
            self._kinds = kinds
            self._start = starts[j]
            self._end = ends[j]
            self._msgs = None
            self._mat = None
            self._bits_agg = None
            delivered[d] = self
        return delivered

    @classmethod
    def _of_messages(cls, msgs, dst, start, end):
        """Span over an already-materialized message column."""
        self = object.__new__(cls)
        self._srcs = self._payloads = self._bits = self._kinds = None
        self._dsts = dst
        self._start = start
        self._end = end
        self._msgs = msgs
        self._mat = None
        self._bits_agg = None
        return self

    # -- sequence protocol ----------------------------------------------
    def __len__(self) -> int:
        return self._end - self._start

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self[j] for j in range(*i.indices(len(self)))]
        k = self._end - self._start
        if i < 0:
            i += k
        if not 0 <= i < k:
            raise IndexError("inbox index out of range")
        if self._msgs is not None:
            return self._msgs[self._start + i]
        mat = self._mat
        if mat is None:
            mat = self._mat = [None] * k
        m = mat[i]
        if m is None:
            j = self._start + i
            s = self._srcs
            if type(s) is not int:
                s = s[j]
                if type(s) is not int:
                    s = int(s)  # int64 column (engine delivery)
            d = self._dsts
            if type(d) is not int:
                d = d[j]
                if type(d) is not int:
                    d = int(d)
            kn = self._kinds
            if type(kn) is not str:
                kn = kn[j]
            pays = self._payloads
            if type(pays) is list:
                p = pays[j]
            else:  # typed column: box one element (counted)
                global _box_count
                _box_count += 1
                p = pays.item(j)
            b = self._bits
            if b is None:
                # Deferred bits column: Message re-derives the identical
                # size (payload_bits is deterministic, and the vectorized
                # typed sizing matches it field-for-field).
                m = Message(s, d, p, kn)
            else:
                bv = b[j]
                m = Message(s, d, p, kn, bits=bv if type(bv) is int else int(bv))
            mat[i] = m
        return m

    def __iter__(self):
        if self._msgs is not None:
            msgs = self._msgs
            for j in range(self._start, self._end):
                yield msgs[j]
        else:
            for i in range(self._end - self._start):
                yield self[i]

    # -- per-index column reads (no materialization) ---------------------
    def _src_at(self, i: int) -> int:
        if self._msgs is not None:
            return self._msgs[self._start + i].src
        s = self._srcs
        if type(s) is int:
            return s
        v = s[self._start + i]
        return v if type(v) is int else int(v)

    def _dst_at(self, i: int) -> int:
        if self._msgs is not None:
            return self._msgs[self._start + i].dst
        d = self._dsts
        if type(d) is int:
            return d
        v = d[self._start + i]
        return v if type(v) is int else int(v)

    def _payload_at(self, i: int) -> Any:
        if self._msgs is not None:
            return self._msgs[self._start + i].payload
        pays = self._payloads
        if type(pays) is list:
            return pays[self._start + i]
        # Typed column: box one element (counted).  Boxing before any
        # observable read is mandatory — a structured numpy scalar raises
        # on ``== tuple`` instead of comparing.
        global _box_count
        _box_count += 1
        return pays.item(self._start + i)

    def _kind_at(self, i: int) -> str:
        if self._msgs is not None:
            return self._msgs[self._start + i].kind
        k = self._kinds
        return k if type(k) is not list else k[self._start + i]

    # -- column accessors -------------------------------------------------
    def payloads(self) -> list[Any]:
        """The payload column (fresh list; no ``Message`` is constructed).

        On a typed column this boxes every element to its Python form
        (counted by :func:`payload_box_count`); consumers that can operate
        on the raw column should read :meth:`payload_array` instead.
        """
        if self._msgs is not None:
            return [m.payload for m in self]
        pays = self._payloads
        if type(pays) is list:
            return pays[self._start:self._end]
        global _box_count
        _box_count += self._end - self._start
        return pays[self._start:self._end].tolist()

    def payload_array(self):
        """The typed payload column span as an ndarray (zero-copy view),
        or ``None`` when this inbox is object- or message-backed.  Reading
        fields off the returned array is not a payload box."""
        pays = self._payloads
        if self._msgs is not None or type(pays) is list:
            return None
        return pays[self._start:self._end]

    def srcs(self) -> list[int]:
        """The sender column (fresh list; no ``Message`` is constructed)."""
        if self._msgs is not None:
            return [m.src for m in self]
        s = self._srcs
        if type(s) is int:
            return [s] * (self._end - self._start)
        col = s[self._start:self._end]
        return col if type(col) is list else col.tolist()

    def dsts(self) -> list[int]:
        """The destination column (fresh list)."""
        if self._msgs is not None:
            return [m.dst for m in self]
        d = self._dsts
        if type(d) is int:
            return [d] * (self._end - self._start)
        col = d[self._start:self._end]
        return col if type(col) is list else col.tolist()

    def kinds(self) -> list[str]:
        """The kind-tag column (fresh list)."""
        if self._msgs is not None:
            return [m.kind for m in self]
        k = self._kinds
        if type(k) is not list:
            return [k] * (self._end - self._start)
        return k[self._start:self._end]

    def items(self) -> list[tuple[int, Any]]:
        """``(src, payload)`` pairs, the shape most consumers unpack."""
        return list(zip(self.srcs(), self.payloads()))

    @property
    def bits_agg(self) -> tuple[int, int]:
        """``(sum, max)`` of the bits column (cached)."""
        agg = self._bits_agg
        if agg is None:
            if self._msgs is not None:
                col = [m.bits for m in self]
            elif self._bits is None:
                pays = self._payloads
                if type(pays) is not list:
                    barr = typed_payload_bits(pays[self._start:self._end])
                    agg = self._bits_agg = (
                        int(barr.sum()),
                        int(barr.max()) if len(barr) else 0,
                    )
                    return agg
                col = [
                    payload_bits_memoized(p)
                    for p in pays[self._start:self._end]
                ]
            else:
                b = self._bits
                if type(b) is not list:
                    span = b[self._start:self._end]
                    agg = self._bits_agg = (
                        int(span.sum()),
                        int(span.max()) if len(span) else 0,
                    )
                    return agg
                col = b[self._start:self._end]
            agg = self._bits_agg = (sum(col), max(col, default=0))
        return agg

    # -- equality ---------------------------------------------------------
    __hash__ = None  # like a list

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if isinstance(other, InboxBatch):
            k = len(self)
            if len(other) != k:
                return False
            for i in range(k):
                if (
                    self._src_at(i) != other._src_at(i)
                    or self._dst_at(i) != other._dst_at(i)
                    or self._payload_at(i) != other._payload_at(i)
                    or self._kind_at(i) != other._kind_at(i)
                ):
                    return False
            return True
        if isinstance(other, list):
            k = len(self)
            if len(other) != k:
                return False
            for i, m in enumerate(other):
                if not isinstance(m, Message):
                    return NotImplemented
                if (
                    m.src != self._src_at(i)
                    or m.dst != self._dst_at(i)
                    or m.payload != self._payload_at(i)
                    or m.kind != self._kind_at(i)
                ):
                    return False
            return True
        return NotImplemented

    @classmethod
    def _concat(cls, a: "InboxBatch", b: "InboxBatch"):
        """Concatenate two batches; stays lazy when both are column-backed
        (used by multi-round inbox merges), else returns a plain list."""
        if a._msgs is not None or b._msgs is not None:
            return list(a) + list(b)
        ka, kb = len(a), len(b)
        sa, sb = a._srcs, b._srcs
        srcs = sa if type(sa) is int and type(sb) is int and sa == sb else a.srcs() + b.srcs()
        da, db = a._dsts, b._dsts
        dsts = da if type(da) is int and type(db) is int and da == db else a.dsts() + b.dsts()
        kn_a, kn_b = a._kinds, b._kinds
        if type(kn_a) is str and type(kn_b) is str and kn_a == kn_b:
            kinds: str | list[str] = kn_a
        else:
            kinds = a.kinds() + b.kinds()
        pa, pb = a._payloads, b._payloads
        ba, bb = a._bits, b._bits
        if type(pa) is not list and type(pb) is not list and pa.dtype == pb.dtype:
            # Both typed with one dtype: the merge stays a typed column.
            pays: Any = _np.concatenate(
                [pa[a._start:a._end], pb[b._start:b._end]]
            )
            if ba is None or bb is None or type(ba) is list or type(bb) is list:
                bits = None  # re-derived vectorized on demand
            else:
                bits = _np.concatenate([ba[a._start:a._end], bb[b._start:b._end]])
            return cls._over(srcs, dsts, pays, bits, kinds, 0, ka + kb)
        # Mixed (or plain object) backings: box typed sides via payloads().
        bits = (
            None
            if ba is None or bb is None or type(ba) is not list or type(bb) is not list
            else ba[a._start:a._end] + bb[b._start:b._end]
        )
        return cls._over(
            srcs, dsts, a.payloads() + b.payloads(), bits, kinds, 0, ka + kb
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InboxBatch({list(self)!r})"


def gather_typed_spans(inboxes):
    """One round's typed inboxes as whole columns: ``(dsts, payloads)``.

    When every inbox is a typed-column :class:`InboxBatch` whose spans are
    views of a shared payload column and together tile it exactly — the
    layout the batched engine delivers — this returns the destination
    column (one id per message, int64) and that payload column directly:
    no per-inbox array handling, no copies, no boxes.  The sharded engine
    delivers the same layout in per-shard pieces (one backing column per
    destination-shard block, hosts in disjoint ascending ranges); those
    concatenate — in min-host block order, which is exactly the
    single-process destination-ascending order — into one column pair.
    Returns ``None`` for any other layout (object columns, message-backed
    inboxes, merged rounds, the reference engine); callers keep their
    per-inbox loop as the fallback.
    """
    if _np is None or not inboxes:
        return None
    # Group spans by backing column (identity: spans *share* their base).
    bases: dict[int, list] = {}  # id(base) -> [base, hosts, starts, ends]
    for host, rec in inboxes.items():
        if type(rec) is not InboxBatch or rec._msgs is not None:
            return None
        pays = rec._payloads
        if type(pays) is list:
            return None
        ent = bases.get(id(pays))
        if ent is None:
            bases[id(pays)] = ent = [pays, [], [], []]
        ent[1].append(host)
        ent[2].append(rec._start)
        ent[3].append(rec._end)
    # Deterministic base order: ascending smallest host.  Bases must cover
    # disjoint host ranges for that to be a meaningful total order (true
    # of shard blocks; anything stranger falls back).
    groups = sorted(bases.values(), key=lambda ent: min(ent[1]))
    prev_hi = -1
    dcols = []
    pcols = []
    for base, hosts, starts, ends in groups:
        if min(hosts) <= prev_hi:
            return None
        prev_hi = max(hosts)
        order = sorted(range(len(hosts)), key=starts.__getitem__)
        pos = 0
        hs: list[int] = []
        sizes: list[int] = []
        for i in order:
            if starts[i] != pos:
                return None
            pos = ends[i]
            hs.append(hosts[i])
            sizes.append(pos - starts[i])
        if pos != len(base):
            return None
        dcols.append(
            _np.repeat(
                _np.fromiter(hs, _np.int64, len(hs)),
                _np.fromiter(sizes, _np.int64, len(sizes)),
            )
        )
        pcols.append(base)
    if len(pcols) == 1:
        return dcols[0], pcols[0]
    if any(p.dtype != pcols[0].dtype for p in pcols):
        return None
    return _np.concatenate(dcols), _np.concatenate(pcols)


def _norm_id_column(ids: int | Sequence[int], k: int) -> int | list[int]:
    """Validate and normalize a node-id column: a scalar stays scalar
    (bool normalized to int), a sequence must be ``k`` ints."""
    if isinstance(ids, int):
        return int(ids)
    col = list(ids)
    if len(col) != k:
        raise ValueError("id column length mismatch")
    for x in col:
        if not isinstance(x, int):
            raise TypeError(f"node ids must be ints, got {type(x).__name__}")
    return col


def payloads_of(inbox: Sequence[Message] | InboxBatch) -> list[Any]:
    """Payload column of one inbox, engine-agnostic.

    For an :class:`InboxBatch` this reads the column without constructing
    ``Message`` objects; for a plain list it walks the attributes.  The hot
    consumers (routers, primitives) read inboxes through this so clean
    batched-engine rounds stay object-free end-to-end.
    """
    if isinstance(inbox, InboxBatch):
        return inbox.payloads()
    return [m.payload for m in inbox]


def srcs_of(inbox: Sequence[Message] | InboxBatch) -> list[int]:
    """Sender column of one inbox, engine-agnostic (see :func:`payloads_of`)."""
    if isinstance(inbox, InboxBatch):
        return inbox.srcs()
    return [m.src for m in inbox]


def items_of(inbox: Sequence[Message] | InboxBatch) -> list[tuple[int, Any]]:
    """``(src, payload)`` pairs of one inbox, engine-agnostic."""
    if isinstance(inbox, InboxBatch):
        return inbox.items()
    return [(m.src, m.payload) for m in inbox]


def merge_round_inboxes(
    merged: dict[int, list[Message] | InboxBatch],
    inbox: dict[int, list[Message] | InboxBatch],
) -> None:
    """Fold one round's inboxes into an accumulating per-receiver dict.

    Preserves arrival order and keeps column-backed batches lazy: merging
    two ``InboxBatch``es concatenates their columns instead of
    materializing messages.  Plain lists are copied (never aliased) so the
    accumulator owns everything it holds.
    """
    for dst, msgs in inbox.items():
        cur = merged.get(dst)
        if cur is None:
            merged[dst] = msgs if isinstance(msgs, InboxBatch) else list(msgs)
        elif isinstance(cur, InboxBatch) and isinstance(msgs, InboxBatch):
            merged[dst] = InboxBatch._concat(cur, msgs)
        else:
            lst = cur if type(cur) is list else list(cur)
            lst.extend(msgs)
            merged[dst] = lst


#: Process-wide default for :class:`BatchBuilder`'s deferred mode.  True
#: (the shipped default) means builders record columns and finalize into
#: lazy :class:`InboxBatch` groups — no ``Message`` is constructed unless
#: an engine or consumer actually touches one.  The eager mode (False)
#: reproduces the pre-lazy pipeline (``Message`` built in :meth:`add`,
#: :class:`MessageBatch` groups) and is kept as the measured baseline of
#: ``benchmarks/bench_primitives.py``'s whole-run gate.
_DEFERRED_DEFAULT = True


def set_deferred_submission(flag: bool) -> bool:
    """Set the process-wide deferred-submission default; returns the
    previous value (benchmark/test hook — always restore)."""
    global _DEFERRED_DEFAULT
    previous = _DEFERRED_DEFAULT
    _DEFERRED_DEFAULT = bool(flag)
    return previous


class BatchBuilder:
    """Accumulates one round's ``(dst, payload)`` pairs per sender and
    finalizes them into per-sender columnar groups.

    This is the columnar submission helper every primitive uses: instead of
    materializing a flat ``list[Message]`` and letting
    :meth:`~repro.ncc.network.NCCNetwork.exchange` bucket it per sender, the
    primitive appends ``(src, dst, payload)`` triples here and submits the
    builder itself.  :meth:`batches` groups by sender in first-occurrence
    order with per-sender append order preserved — exactly the normalization
    ``exchange`` applies to a flat iterable — so the submission form is
    observably identical under every engine.

    In the default *deferred* mode only the ``(dst, payload, bits, kind)``
    columns are recorded and finalization produces lazy
    :class:`InboxBatch` groups: no ``Message`` object exists unless the
    reference walk (or a consumer) materializes one.  Eager mode
    (``deferred=False`` or :func:`set_deferred_submission`) builds the
    ``Message`` in :meth:`add` and finalizes into :class:`MessageBatch`
    groups, reproducing the previous pipeline.

    A builder is single-shot: it belongs to one round.  ``kind`` set at
    construction tags every message; :meth:`add` may override it per message
    (e.g. routers mixing data and token traffic from one sender).
    """

    __slots__ = (
        "kind", "_groups", "_spent", "_deferred", "_bits_sum", "_bits_max",
        "_dtype", "_typed_bulk",
    )

    def __init__(
        self,
        kind: str = "",
        *,
        deferred: bool | None = None,
        dtype: Any = None,
    ):
        self.kind = kind
        # Deferred: src -> [dsts, payloads, bits, kinds] where ``kinds`` is
        # the scalar tag until a per-message override forces a column.
        # Eager: src -> (messages, dsts, bits) — the Message is built once,
        # in add(), and its columns captured as a by-product.
        # Typed (``dtype`` declared): src -> [dst_chunks, value_chunks,
        # bits_chunks], each a list of parallel ndarrays concatenated at
        # finalize.
        self._groups: dict[int, Any] = {}
        self._spent = False
        self._deferred = _DEFERRED_DEFAULT if deferred is None else bool(deferred)
        # Round-level bit aggregates, tracked as messages are queued so the
        # engine's send-side accounting needs no per-group reduction.
        self._bits_sum = 0
        self._bits_max = 0
        # Declared payload dtype.  The object fallback is part of the
        # contract: without numpy, in eager mode (whose product is Message
        # objects by definition), or with typed payloads globally disabled
        # (the benchmark kill-switch), the declaration degrades to the
        # object layout and every submission is boxed on entry.
        if dtype is not None and _np is not None and self._deferred and _TYPED_DEFAULT:
            dtype = _np.dtype(dtype)
            if not _typed_dtype_ok(dtype):
                raise TypeError(
                    f"unsupported payload dtype {dtype!r}: declare a signed "
                    "int scalar or a flat struct of int/str/bool/float fields"
                )
            self._dtype = dtype
        else:
            self._dtype = None
        # Whole-round sorted columns kept by a single add_arrays call —
        # (senders, counts, dsts, values) — letting the batched engine
        # deliver straight off them with zero per-sender array handling.
        # Any other submission into the builder invalidates it.
        self._typed_bulk = None

    def add(self, src: int, dst: int, payload: Any, kind: str | None = None) -> None:
        """Queue one ``src -> dst`` message carrying ``payload``."""
        if self._spent:
            raise TypeError(
                "BatchBuilder already finalized (its batches share the "
                "builder's columns; adding would corrupt them)"
            )
        if self._dtype is not None:
            self._box_typed_groups()
        if not self._deferred:
            m = Message(src, dst, payload, self.kind if kind is None else kind)
            g = self._groups.get(src)
            if g is None:
                self._groups[src] = g = ([], [], [])
            g[0].append(m)
            g[1].append(dst)
            g[2].append(m.bits)
            return
        # Deferred: same validation and sizing the Message constructor
        # would perform, minus the object.  (type() fast path; the
        # isinstance retry accepts bool/IntEnum ids like the Message
        # constructor does, but normalizes them to plain ints — a bool in
        # a column would corrupt the delivered inbox keys/scalars.)
        if type(src) is not int or type(dst) is not int:
            if not isinstance(src, int) or not isinstance(dst, int):
                raise TypeError(
                    f"node ids must be ints, got "
                    f"{type(src).__name__} -> {type(dst).__name__}"
                )
            src = int(src)
            dst = int(dst)
        bits = payload_bits_memoized(payload)
        self._bits_sum += bits
        if bits > self._bits_max:
            self._bits_max = bits
        k = self.kind if kind is None else kind
        g = self._groups.get(src)
        if g is None:
            self._groups[src] = [[dst], [payload], [bits], k]
            return
        g[0].append(dst)
        g[1].append(payload)
        g[2].append(bits)
        kinds = g[3]
        if type(kinds) is list:
            kinds.append(k)
        elif k != kinds:
            # First override in this group: expand the scalar to a column.
            g[3] = [kinds] * (len(g[0]) - 1) + [k]

    def add_many(
        self, src: int, dsts: Iterable[int], payloads: Iterable[Any]
    ) -> None:
        """Queue a run of messages from one sender (parallel columns).

        Atomic: a length mismatch queues nothing, and an empty run does not
        register the sender (``bool(builder)`` stays faithful to "has any
        message", which round loops use as their stop condition).
        """
        if self._spent:
            raise TypeError(
                "BatchBuilder already finalized (its batches share the "
                "builder's columns; adding would corrupt them)"
            )
        if self._dtype is not None:
            self._box_typed_groups()
        if not self._deferred:
            kind = self.kind
            msgs: list[Message] = []
            dst_l: list[int] = []
            bits_l: list[int] = []
            for d, p in zip(dsts, payloads, strict=True):
                m = Message(src, d, p, kind)
                msgs.append(m)
                dst_l.append(d)
                bits_l.append(m.bits)
            if not msgs:
                return
            g = self._groups.get(src)
            if g is None:
                self._groups[src] = g = ([], [], [])
            g[0].extend(msgs)
            g[1].extend(dst_l)
            g[2].extend(bits_l)
            return
        if type(src) is not int:
            if not isinstance(src, int):
                raise TypeError(f"node ids must be ints, got {type(src).__name__}")
            src = int(src)
        dst_l = list(dsts)
        pay_l = list(payloads)
        if len(dst_l) != len(pay_l):
            raise ValueError("add_many requires parallel columns of equal length")
        for i, d in enumerate(dst_l):
            if type(d) is not int:
                if not isinstance(d, int):
                    raise TypeError(
                        f"node ids must be ints, got "
                        f"{type(src).__name__} -> {type(d).__name__}"
                    )
                dst_l[i] = int(d)
        bits_l = [payload_bits_memoized(p) for p in pay_l]
        if not dst_l:
            return
        self._bits_sum += sum(bits_l)
        mx = max(bits_l)
        if mx > self._bits_max:
            self._bits_max = mx
        g = self._groups.get(src)
        if g is None:
            self._groups[src] = [dst_l, pay_l, bits_l, self.kind]
            return
        g[0].extend(dst_l)
        g[1].extend(pay_l)
        g[2].extend(bits_l)
        kinds = g[3]
        if type(kinds) is list:
            kinds.extend([self.kind] * len(dst_l))
        elif self.kind != kinds:
            g[3] = [kinds] * (len(g[0]) - len(dst_l)) + [self.kind] * len(dst_l)

    def add_array(self, src: int, dsts: Any, values: Any) -> None:
        """Queue a run of typed messages from one sender (parallel arrays).

        ``values`` must match the builder's declared dtype; bit sizes are
        derived per-column by :func:`typed_payload_bits` with no Python
        per element.  On a builder without an active dtype (undeclared,
        numpy-free, eager mode, or degraded by a mixed submission) the
        columns are boxed on entry and routed through :meth:`add_many` —
        the object-fallback contract.
        """
        if self._spent:
            raise TypeError(
                "BatchBuilder already finalized (its batches share the "
                "builder's columns; adding would corrupt them)"
            )
        dt = self._dtype
        if dt is None:
            global _box_count
            if _np is not None and isinstance(values, _np.ndarray):
                _box_count += len(values)
                values = values.tolist()
            if _np is not None and isinstance(dsts, _np.ndarray):
                dsts = dsts.tolist()
            self.add_many(src, dsts, values)
            return
        if type(src) is not int:
            if not isinstance(src, int):
                raise TypeError(f"node ids must be ints, got {type(src).__name__}")
            src = int(src)
        darr = _np.asarray(dsts)
        if darr.dtype.kind not in "iub":
            raise TypeError(f"node ids must be ints, got dtype {darr.dtype}")
        if darr.dtype != _np.int64:
            darr = darr.astype(_np.int64)
        if isinstance(values, _np.ndarray) and values.dtype != dt:
            # asarray would cast silently (float -> int truncates); a
            # mismatched pre-built column is a caller bug, not data.
            raise TypeError(
                f"value column dtype {values.dtype} does not match the "
                f"declared payload dtype {dt}"
            )
        varr = _np.asarray(values, dtype=dt)
        if len(darr) != len(varr):
            raise ValueError("add_array requires parallel columns of equal length")
        if len(darr) == 0:
            return
        barr = typed_payload_bits(varr)
        self._bits_sum += int(barr.sum())
        mx = int(barr.max())
        if mx > self._bits_max:
            self._bits_max = mx
        self._typed_bulk = None
        self._push_typed(src, darr, varr, barr)

    def _push_typed(self, src: int, darr, varr, barr) -> None:
        """Append one sender's typed column spans (bits already accounted)."""
        g = self._groups.get(src)
        if g is None:
            self._groups[src] = [[darr], [varr], [barr]]
        else:
            g[0].append(darr)
            g[1].append(varr)
            g[2].append(barr)

    def add_arrays(self, srcs: Any, dsts: Any, values: Any) -> None:
        """Queue typed messages from many senders at once (parallel arrays).

        Senders are grouped in ascending-id order (a stable sort over the
        sender column), each keeping its submissions in input order.
        """
        if self._spent:
            raise TypeError(
                "BatchBuilder already finalized (its batches share the "
                "builder's columns; adding would corrupt them)"
            )
        if self._dtype is None:
            global _box_count
            if _np is not None and isinstance(values, _np.ndarray):
                _box_count += len(values)
                values = values.tolist()
            if _np is not None and isinstance(dsts, _np.ndarray):
                dsts = dsts.tolist()
            if _np is not None and isinstance(srcs, _np.ndarray):
                srcs = srcs.tolist()
            for s, d, v in zip(list(srcs), list(dsts), list(values), strict=True):
                self.add(int(s), int(d), v)
            return
        sarr = _np.asarray(srcs)
        if sarr.dtype.kind not in "iub":
            raise TypeError(f"node ids must be ints, got dtype {sarr.dtype}")
        if sarr.dtype != _np.int64:
            sarr = sarr.astype(_np.int64)
        darr = _np.asarray(dsts)
        if isinstance(values, _np.ndarray) and values.dtype != self._dtype:
            raise TypeError(
                f"value column dtype {values.dtype} does not match the "
                f"declared payload dtype {self._dtype}"
            )
        varr = _np.asarray(values, dtype=self._dtype)
        if not (len(sarr) == len(darr) == len(varr)):
            raise ValueError("add_arrays requires parallel columns of equal length")
        if len(sarr) == 0:
            return
        if darr.dtype.kind not in "iub":
            raise TypeError(f"node ids must be ints, got dtype {darr.dtype}")
        if darr.dtype != _np.int64:
            darr = darr.astype(_np.int64)
        order = _np.argsort(sarr, kind="stable")
        ssort = sarr.take(order)
        dsort = darr.take(order)
        vsort = varr.take(order)
        # Size the whole round's payload column in one vectorized pass —
        # per-group sizing would pay numpy's fixed per-call cost thousands
        # of times on tiny spans (the n=4096 router emits ~2.8k senders of
        # ~3 messages per round) and dominate the run.
        barr = typed_payload_bits(vsort)
        self._bits_sum += int(barr.sum())
        mx = int(barr.max())
        if mx > self._bits_max:
            self._bits_max = mx
        uniq, starts = _np.unique(ssort, return_index=True)
        ends = _np.append(starts[1:], len(ssort))
        bulk_ok = not self._groups
        push = self._push_typed
        for s, lo, hi in zip(uniq.tolist(), starts.tolist(), ends.tolist()):
            push(s, dsort[lo:hi], vsort[lo:hi], barr[lo:hi])
        # A single whole-round submission: keep the sorted columns so the
        # batched engine can deliver without re-assembling per-sender spans.
        self._typed_bulk = (
            (uniq.tolist(), (ends - starts).tolist(), dsort, vsort)
            if bulk_ok
            else None
        )

    def _box_typed_groups(self) -> None:
        """Degrade every typed group to the object layout (counted boxes).

        Mixing per-message submissions into a typed builder is legal —
        the whole builder just falls back to object columns, preserving
        group order and per-group message order.
        """
        global _box_count
        kind = self.kind
        for src, g in self._groups.items():
            dsts: list[int] = []
            pays: list[Any] = []
            bits: list[int] = []
            for darr, varr, barr in zip(g[0], g[1], g[2]):
                dsts += darr.tolist()
                pays += varr.tolist()
                bits += barr.tolist()
                _box_count += len(varr)
            self._groups[src] = [dsts, pays, bits, kind]
        self._dtype = None
        self._typed_bulk = None

    def __len__(self) -> int:
        if self._dtype is not None:
            return sum(len(c) for g in self._groups.values() for c in g[0])
        return sum(len(g[0]) for g in self._groups.values())

    def __bool__(self) -> bool:
        return bool(self._groups)

    def senders(self) -> list[int]:
        return list(self._groups)

    def batches(self) -> "dict[int, MessageBatch] | BuilderBatches":
        """Finalize into per-sender batches with pre-captured columns.

        Deferred mode yields lazy :class:`InboxBatch` groups inside a
        frozen :class:`BuilderBatches` mapping (the engine's proof that the
        lazy columnar path applies); eager mode yields plain
        :class:`MessageBatch` groups.  Finalization is zero-copy either
        way: the batches take ownership of the builder's lists, so the
        builder is spent afterwards — further ``add`` calls raise (a stale
        alias would silently corrupt the frozen batches' cached columns).
        """
        self._spent = True
        # ``int(src)`` normalizes a (pathological) bool sender key so the
        # finalize product can be fed to an engine as-is — the same
        # coercion ``exchange`` applies to Mapping submissions.
        if self._dtype is not None:
            lazy = BuilderBatches(self._bits_sum, self._bits_max, self._dtype)
            lazy_set = dict.__setitem__  # lazy itself is frozen
            over = InboxBatch._over
            kind = self.kind
            for src, (dchunks, vchunks, bchunks) in self._groups.items():
                if len(dchunks) == 1:
                    darr, varr, barr = dchunks[0], vchunks[0], bchunks[0]
                else:
                    darr = _np.concatenate(dchunks)
                    varr = _np.concatenate(vchunks)
                    barr = _np.concatenate(bchunks)
                lazy_set(
                    lazy, src, over(src, darr, varr, barr, kind, 0, len(darr))
                )
            return lazy
        if self._deferred:
            lazy = BuilderBatches(self._bits_sum, self._bits_max)
            lazy_set = dict.__setitem__  # lazy itself is frozen
            over = InboxBatch._over
            for src, (dsts, pays, bits, kinds) in self._groups.items():
                if type(src) is not int:
                    src = int(src)
                # Per-group bit aggregates stay lazy (InboxBatch derives
                # and caches them if the batch is ever resubmitted solo);
                # the round-level aggregates ride on the mapping itself.
                lazy_set(
                    lazy, src, over(src, dsts, pays, bits, kinds, 0, len(dsts))
                )
            return lazy
        out: dict[int, MessageBatch] = {}
        for src, (msgs, dsts, bits) in self._groups.items():
            if type(src) is not int:
                src = int(src)
            batch = MessageBatch(msgs)
            batch._list_cols = ([src] * len(msgs), dsts, bits)
            batch._uniform_src = src
            batch._bits_agg = (sum(bits), max(bits, default=0))
            out[src] = batch
        return out
