"""Messages and payload bit accounting.

The model allows ``O(log n)`` bits per message.  To keep that budget honest,
every payload is assigned a bit size via :func:`payload_bits`.  The estimate
is intentionally simple and conservative-ish: identifiers and weights count
their binary length, containers add their parts, and objects can opt in by
providing a ``size_bits()`` method (e.g. parity sketches).
"""

from __future__ import annotations

from typing import Any


def payload_bits(payload: Any) -> int:
    """Estimate the wire size of a payload in bits.

    Rules:

    * ``None`` and ``bool`` — 1 bit;
    * ``int`` — its binary length (≥ 1), plus a sign bit if negative;
    * ``float`` — 32 bits (only used for annotation randomness);
    * ``str`` — 4 bits for short strings (≤ 8 chars).  Strings are used
      exclusively as protocol tags / namespaces drawn from a constant-size
      alphabet per protocol step, so they are O(1) bits on the wire; longer
      strings cost 8 bits per character to keep data out of this loophole;
    * ``tuple`` / ``list`` — sum of parts (structure is part of the protocol,
      not the wire format, mirroring how the paper counts only the content);
    * any object with a ``size_bits()`` method — whatever it reports.
    """
    # type() checks (not isinstance) keep this hot path cheap; bool must be
    # tested before int since bool subclasses int.
    t = type(payload)
    if t is int:
        return (payload.bit_length() or 1) + (1 if payload < 0 else 0)
    if t is tuple or t is list:
        total = 0
        for p in payload:
            total += payload_bits(p)
        return total
    if t is str:
        return 4 if len(payload) <= 8 else 8 * len(payload)
    if payload is None or t is bool:
        return 1
    if t is float:
        return 32
    if t is frozenset:
        total = 0
        for p in payload:
            total += payload_bits(p)
        return total
    if isinstance(payload, int):  # IntEnum and friends
        return (payload.bit_length() or 1) + (1 if payload < 0 else 0)
    size = getattr(payload, "size_bits", None)
    if callable(size):
        return int(size())
    raise TypeError(f"cannot size payload of type {type(payload).__name__}")


class Message:
    """One message in flight: ``src -> dst`` carrying ``payload``.

    ``kind`` tags the protocol step that produced the message (for statistics
    and debugging); it is metadata, not wire content.  A plain __slots__
    class instead of a dataclass: the routers create millions of these.
    """

    __slots__ = ("src", "dst", "payload", "kind", "bits")

    def __init__(self, src: int, dst: int, payload: Any, kind: str = "", bits: int = -1):
        self.src = src
        self.dst = dst
        self.payload = payload
        self.kind = kind
        self.bits = bits if bits >= 0 else payload_bits(payload)

    def sized(self) -> int:
        return self.bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Message({self.src}->{self.dst}, {self.payload!r}, kind={self.kind!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Message)
            and self.src == other.src
            and self.dst == other.dst
            and self.payload == other.payload
            and self.kind == other.kind
        )

    def __hash__(self) -> int:
        return hash((self.src, self.dst, repr(self.payload), self.kind))
