"""Pluggable round engines: the enforcement/accounting core of one round.

:class:`~repro.ncc.network.NCCNetwork.exchange` normalizes the caller's
outgoing traffic into a ``sender -> [Message]`` mapping and hands it to a
:class:`RoundEngine`, which owns everything the model charges for inside a
round: node-id validation, send/receive capacity enforcement, message-size
budgets, DROP-mode sampling, and the per-message statistics.  Three engines
exist:

* :class:`ReferenceEngine` — the per-message walk this repository started
  with, kept as the executable specification of round semantics;
* :class:`~repro.ncc.batched.BatchedEngine` — a columnar fast path that
  performs the same checks over parallel ``(src, dst, bits)`` arrays;
* :class:`~repro.ncc.sharded.ShardedEngine` — the batched engine with its
  clean-round delivery kernel distributed across worker processes by
  contiguous destination range (one shm block shuffle per round).

The engines are interchangeable by contract: for any input they must
produce identical inboxes (content, list order, and dict insertion order),
identical :class:`~repro.ncc.stats.NetworkStats` mutations including the
exact :class:`~repro.ncc.stats.Violation` ledger order, identical
exceptions, and identical draws from the network's DROP rng stream.
``tests/test_engine_parity.py`` enforces this differentially; any new
engine must be added there.

Canonical round semantics (shared walk order)
---------------------------------------------
1. Per sender, in mapping insertion order: validate the sender id, then
   every message's destination id and ``src`` consistency.  Validation
   happens *before* any DROP-mode trimming so that STRICT and DROP modes
   report the same offending messages (a malformed message must not escape
   detection by being randomly dropped).
2. Per sender: update the max-sent watermark, record a ``"send"`` violation
   if over capacity (raising in STRICT), and in DROP mode trim to a random
   capacity-sized subset drawn from the engine rng.
3. Per surviving message, in order: record a ``"bits"`` violation if the
   payload exceeds the budget (raising in STRICT) and accumulate message
   and bit counts.
4. Per receiver, in first-arrival order: update the max-received watermark,
   record a ``"recv"`` violation if over capacity (raising in STRICT), and
   in DROP mode deliver a random capacity-sized subset.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

from ..config import Enforcement
from ..errors import ConfigurationError
from .message import InboxBatch, Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .network import NCCNetwork

#: One delivered inbox: a plain message list (reference engine, anomalous
#: rounds) or a lazy :class:`~repro.ncc.message.InboxBatch` column view
#: (batched engine, clean rounds).  The two compare equal element-wise and
#: are interchangeable by the engine-indistinguishability contract.
InboxT = list[Message] | InboxBatch

#: ``run_round`` result: (delivered inboxes, sent messages, sent bits).
RoundResult = tuple[dict[int, InboxT], int, int]


class RoundEngine:
    """Strategy object executing one synchronous round for a network.

    Subclasses implement :meth:`run_round`.  The base class provides the
    *canonical walks* — the reference-ordered send and receive passes — so
    that every engine shares one implementation of the rare paths whose
    observable order matters (violation ledger entries, STRICT raise
    points, DROP rng draws).
    """

    #: Registry name; also surfaced by ``NCCNetwork.__repr__``.
    name = "abstract"

    #: Optional fast entry point taking a spent-able
    #: :class:`~repro.ncc.message.BatchBuilder` directly (same contract as
    #: ``run_round`` over the builder's finalize product).  ``None`` means
    #: the network finalizes the builder and calls :meth:`run_round`.
    run_builder = None

    def __init__(self, net: "NCCNetwork"):
        self.net = net

    def run_round(self, per_sender: Mapping[int, list[Message]]) -> RoundResult:
        """Execute one round over normalized per-sender traffic."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Canonical walks (the executable specification of round semantics)
    # ------------------------------------------------------------------
    def _send_walk(
        self, senders: Sequence[int], groups: Sequence[list[Message]]
    ) -> tuple[list[Message], int, int]:
        """Validate and enforce the send side; returns the accepted flat
        message list (inbox insertion order) plus message/bit totals."""
        net = self.net
        stats = net.stats
        cap = net.capacity
        budget = net.message_bits
        drop = net.config.enforcement is Enforcement.DROP
        accepted: list[Message] = []
        sent_messages = 0
        sent_bits = 0
        for src, msgs in zip(senders, groups):
            net._check_node_id(src)
            # Validate before any DROP-mode trimming: a mismatched src or a
            # bad destination must surface identically in every enforcement
            # mode instead of being randomly sampled away.
            for m in msgs:
                net._check_node_id(m.dst)
                if m.src != src:
                    raise ValueError(
                        f"message src {m.src} enqueued under sender {src}"
                    )
            count = len(msgs)
            if count > stats.max_sent_per_round:
                stats.max_sent_per_round = count
            if count > cap:
                net._violate("send", src, count)
                if drop:
                    # The model does not drop on the send side (sending is
                    # under node control), but an over-budget sender in DROP
                    # mode gets trimmed to keep the simulation inside the
                    # model; a random subset is kept to avoid bias.
                    msgs = net._drop_rng.sample(msgs, cap)
                    stats.dropped += count - cap
            for m in msgs:
                bits = m.sized()
                if bits > budget:
                    net._violate_bits(m, bits)
                sent_messages += 1
                sent_bits += bits
                accepted.append(m)
        return accepted, sent_messages, sent_bits

    @staticmethod
    def _bucket(accepted: list[Message]) -> dict[int, list[Message]]:
        """Group accepted messages into inboxes, first-arrival order."""
        inboxes: dict[int, list[Message]] = {}
        for m in accepted:
            box = inboxes.get(m.dst)
            if box is None:
                inboxes[m.dst] = [m]
            else:
                box.append(m)
        return inboxes

    def _recv_walk(
        self, inboxes: dict[int, list[Message]]
    ) -> dict[int, list[Message]]:
        """Enforce receive capacity per inbox, in insertion order."""
        net = self.net
        stats = net.stats
        cap = net.capacity
        drop = net.config.enforcement is Enforcement.DROP
        delivered: dict[int, list[Message]] = {}
        for dst, msgs in inboxes.items():
            count = len(msgs)
            if count > stats.max_received_per_round:
                stats.max_received_per_round = count
            if count > cap:
                net._violate("recv", dst, count)
                if drop:
                    # "it receives an arbitrary subset of O(log n) messages.
                    # Additional messages are simply dropped by the network."
                    msgs = net._drop_rng.sample(msgs, cap)
                    stats.dropped += count - cap
            delivered[dst] = msgs
        return delivered


class ReferenceEngine(RoundEngine):
    """The per-message round engine: the canonical walks, verbatim."""

    name = "reference"

    def run_round(self, per_sender: Mapping[int, list[Message]]) -> RoundResult:
        senders = list(per_sender.keys())
        groups = [per_sender[s] for s in senders]
        accepted, sent_messages, sent_bits = self._send_walk(senders, groups)
        delivered = self._recv_walk(self._bucket(accepted))
        return delivered, sent_messages, sent_bits


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, type[RoundEngine]] = {ReferenceEngine.name: ReferenceEngine}


def register_engine(name: str, cls: type[RoundEngine]) -> None:
    """Register a round-engine implementation under ``name``."""
    _REGISTRY[name] = cls


def engine_names() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def build_engine(name: str, net: "NCCNetwork") -> RoundEngine:
    """Instantiate the engine registered under ``name`` for ``net``."""
    if name not in _REGISTRY and name == "batched":
        # Imported lazily so the numpy-free reference path never pays for it.
        from . import batched  # noqa: F401  (registers itself on import)
    elif name not in _REGISTRY and name == "sharded":
        from . import sharded  # noqa: F401  (registers itself on import)
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ConfigurationError(
            f"unknown round engine {name!r}; known engines: {engine_names()}"
        )
    return cls(net)
