"""Graph properties used by the experiment harness.

Pure (non-distributed) computations on :class:`InputGraph` — diameter,
connectivity structure, degree statistics — used to label benchmark rows
(e.g. Table 1's ``D`` for BFS) and to validate generator invariants.
"""

from __future__ import annotations

from collections import deque

from ..ncc.graph_input import InputGraph


def connected_components(g: InputGraph) -> list[list[int]]:
    """Connected components as sorted node lists."""
    seen = [False] * g.n
    comps: list[list[int]] = []
    for s in range(g.n):
        if seen[s]:
            continue
        comp = [s]
        seen[s] = True
        dq = deque([s])
        while dq:
            u = dq.popleft()
            for v in g.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    comp.append(v)
                    dq.append(v)
        comps.append(sorted(comp))
    return comps


def is_connected(g: InputGraph) -> bool:
    return g.n <= 1 or len(connected_components(g)) == 1


def bfs_distances(g: InputGraph, source: int) -> list[int | None]:
    """Unweighted distances from ``source`` (None = unreachable)."""
    dist: list[int | None] = [None] * g.n
    dist[source] = 0
    dq = deque([source])
    while dq:
        u = dq.popleft()
        for v in g.neighbors(u):
            if dist[v] is None:
                dist[v] = dist[u] + 1
                dq.append(v)
    return dist


def eccentricity(g: InputGraph, source: int) -> int:
    """Max finite distance from ``source``."""
    return max((d for d in bfs_distances(g, source) if d is not None), default=0)


def diameter(g: InputGraph) -> int:
    """Exact diameter of the largest component (all-pairs via n BFS runs;
    the experiment graphs are small enough)."""
    comps = connected_components(g)
    if not comps:
        return 0
    largest = max(comps, key=len)
    return max(eccentricity(g, u) for u in largest)


def degree_stats(g: InputGraph) -> dict[str, float]:
    degs = [g.degree(u) for u in range(g.n)]
    return {
        "max": max(degs, default=0),
        "min": min(degs, default=0),
        "avg": sum(degs) / g.n if g.n else 0.0,
    }
