"""Weight assignments for MST workloads (Section 3).

The paper assumes integral weights in {1..W}, W = poly(n).  Three regimes
matter for experiments:

* ``with_random_weights`` — uniform in {1..W}; ties possible, exercising
  the identifier tie-breaking;
* ``with_unique_weights`` — a random permutation of {1..m}: the classical
  distinct-weight setting with a unique MST;
* ``with_constant_weights`` — all ties: MST degenerates to any spanning
  forest of minimum edge count; the sketch search runs entirely on
  identifiers.
"""

from __future__ import annotations

from ..ncc.graph_input import InputGraph
from .generators import _rng


def with_random_weights(
    g: InputGraph, *, max_weight: int | None = None, seed: int = 0
) -> InputGraph:
    """Uniform random integer weights in {1..max_weight} (default n²).

    Like the generators, the seed is an explicit int (default 0);
    ``seed=None`` is a :class:`TypeError`, not an alias of 0.
    """
    rng = _rng(seed)
    w_max = max_weight if max_weight is not None else max(2, g.n * g.n)
    weights = {e: rng.randint(1, w_max) for e in g.edges()}
    return InputGraph(g.n, g.edges(), weights)


def with_unique_weights(g: InputGraph, *, seed: int = 0) -> InputGraph:
    """A random permutation of {1..m}: all weights distinct."""
    rng = _rng(seed)
    perm = list(range(1, g.m + 1))
    rng.shuffle(perm)
    weights = {e: w for e, w in zip(g.edges(), perm)}
    return InputGraph(g.n, g.edges(), weights)


def with_constant_weights(g: InputGraph, weight: int = 1) -> InputGraph:
    """Every edge the same weight (the all-ties stress case)."""
    weights = {e: weight for e in g.edges()}
    return InputGraph(g.n, g.edges(), weights)
