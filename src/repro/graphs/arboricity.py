"""Arboricity estimation and forest decompositions.

Nash-Williams [50]: ``a(G) = max_{H ⊆ G, n_H ≥ 2} ⌈m_H / (n_H − 1)⌉``.
Computing it exactly is a matroid-union problem; for experiment bookkeeping
we use the standard sandwich

    density lower bound ≤ a(G) ≤ greedy forest-partition upper bound,

plus the degeneracy (``a ≤ degeneracy ≤ 2a − 1``), which the orientation
algorithm's output quality is measured against.
"""

from __future__ import annotations

import heapq
import math
from typing import Sequence

from ..ncc.graph_input import InputGraph


def density_lower_bound(g: InputGraph) -> int:
    """⌈m / (n − 1)⌉ — Nash-Williams with H = G (plus the densest-core
    refinement via the degeneracy peeling order)."""
    if g.n < 2 or g.m == 0:
        return 0 if g.m == 0 else 1
    best = math.ceil(g.m / (g.n - 1))
    # Refinement: peel minimum-degree vertices; every suffix of the peeling
    # order is a subgraph candidate H.
    order, _ = degeneracy_order(g)
    removed = [False] * g.n
    m_left = g.m
    n_left = g.n
    for u in order:
        removed[u] = True
        m_left -= sum(1 for v in g.neighbors(u) if not removed[v])
        n_left -= 1
        if n_left >= 2:
            best = max(best, math.ceil(m_left / (n_left - 1)))
    return best


def degeneracy_order(g: InputGraph) -> tuple[list[int], int]:
    """(elimination order, degeneracy) via repeated min-degree removal."""
    degree = [g.degree(u) for u in range(g.n)]
    removed = [False] * g.n
    heap = [(degree[u], u) for u in range(g.n)]
    heapq.heapify(heap)
    order: list[int] = []
    degeneracy = 0
    while heap:
        dcur, u = heapq.heappop(heap)
        if removed[u] or dcur != degree[u]:
            continue
        removed[u] = True
        order.append(u)
        degeneracy = max(degeneracy, dcur)
        for v in g.neighbors(u):
            if not removed[v]:
                degree[v] -= 1
                heapq.heappush(heap, (degree[v], v))
    return order, degeneracy


def greedy_forest_partition(g: InputGraph) -> list[list[tuple[int, int]]]:
    """Partition E into forests greedily (upper-bounds the arboricity).

    Processes edges in a degeneracy-friendly order, assigning each edge to
    the first forest where it closes no cycle (union-find per forest).
    """
    forests: list[list[tuple[int, int]]] = []
    parents: list[list[int]] = []

    def find(p: list[int], x: int) -> int:
        while p[x] != x:
            p[x] = p[p[x]]
            x = p[x]
        return x

    for u, v in g.edges():
        placed = False
        for forest, p in zip(forests, parents):
            ru, rv = find(p, u), find(p, v)
            if ru != rv:
                p[ru] = rv
                forest.append((u, v))
                placed = True
                break
        if not placed:
            p = list(range(g.n))
            p[find(p, u)] = v
            forests.append([(u, v)])
            parents.append(p)
    return forests


def arboricity_upper_bound(g: InputGraph) -> int:
    """Number of forests the greedy partition uses (≥ a, ≤ 2a in theory
    for the greedy; tight on the generator families used here)."""
    return len(greedy_forest_partition(g))


def arboricity_bounds(g: InputGraph) -> tuple[int, int]:
    """(lower, upper) sandwich for a(G)."""
    return density_lower_bound(g), arboricity_upper_bound(g)


def verify_orientation_bound(
    g: InputGraph, out_neighbors: Sequence[Sequence[int]], bound: int
) -> bool:
    """Check an orientation covers every edge once with outdegree ≤ bound."""
    seen = set()
    for u in range(g.n):
        if len(out_neighbors[u]) > bound:
            return False
        for v in out_neighbors[u]:
            e = (u, v) if u < v else (v, u)
            if e in seen:
                return False
            seen.add(e)
    return seen == set(g.edges())
