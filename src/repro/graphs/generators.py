"""Input-graph generators with controlled arboricity / diameter / degree.

All generators return :class:`~repro.ncc.graph_input.InputGraph` and are
deterministic in their seed.  Seeds are plain ints with an explicit
default of 0 — passing ``seed=None`` is a :class:`TypeError` (it used to
silently alias to seed 0, so "unseeded" callers got identical graphs
while looking random).  Families used by the experiments:

* ``forest_union`` — union of ``k`` random spanning forests: arboricity ≤ k
  (the Nash-Williams witness is the construction itself), the workhorse for
  sweeping ``a``;
* ``grid`` — planar, a ≤ 3, diameter Θ(√n) (BFS's D-dependence);
* ``random_tree`` / ``path`` / ``cycle`` / ``star`` — a = 1 extremes;
  the star maximizes ∆ at minimum arboricity (the broadcast-tree ablation);
* ``gnp`` / ``random_connected`` — Erdős–Rényi with optional connectivity
  repair;
* ``preferential_attachment`` — heavy-tailed degrees at arboricity ≤ m0;
* ``hypercube`` — log-degree, log-diameter reference topology;
* ``complete`` — the a = Θ(n) stress case.
"""

from __future__ import annotations

import random
from typing import Iterable

from ..ncc.graph_input import EdgeT, InputGraph
from ..rng import seeded_rng


def _rng(seed: int) -> random.Random:
    """A seeded RNG from an *explicit* int seed.

    ``None`` is rejected rather than aliased: every generator is meant to
    be reproducible from its arguments, and a silent ``None -> 0`` made
    unseeded call sites look random while always producing the same graph.
    """
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise TypeError(
            f"generator seed must be an explicit int (default 0), got {seed!r}"
        )
    return seeded_rng(seed)


def path(n: int) -> InputGraph:
    """The path 0-1-…-(n−1): a tree with diameter n−1."""
    return InputGraph(n, [(i, i + 1) for i in range(n - 1)])


def cycle(n: int) -> InputGraph:
    """The n-cycle: arboricity 2 (for n ≥ 3), diameter ⌊n/2⌋."""
    if n < 3:
        raise ValueError("cycle needs n >= 3")
    return InputGraph(n, [(i, (i + 1) % n) for i in range(n)])


def star(n: int) -> InputGraph:
    """Star with center 0: arboricity 1, maximum degree n−1.

    The canonical separator of ``a`` from ``∆`` (Section 5's motivating
    example for orientation-based broadcast trees).
    """
    return InputGraph(n, [(0, i) for i in range(1, n)])


def complete(n: int) -> InputGraph:
    """K_n: arboricity ⌈n/2⌉ — the high-arboricity stress case."""
    return InputGraph(n, [(i, j) for i in range(n) for j in range(i + 1, n)])


def random_tree(n: int, seed: int = 0) -> InputGraph:
    """Uniform random recursive tree (each node attaches to a random
    predecessor): arboricity 1."""
    rng = _rng(seed)
    edges = [(i, rng.randrange(i)) for i in range(1, n)]
    return InputGraph(n, edges)


def grid(rows: int, cols: int) -> InputGraph:
    """rows × cols grid: planar (a ≤ 3), diameter rows + cols − 2."""
    if rows < 1 or cols < 1:
        raise ValueError("grid needs positive dimensions")
    n = rows * cols
    edges: list[EdgeT] = []
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                edges.append((u, u + 1))
            if r + 1 < rows:
                edges.append((u, u + cols))
    return InputGraph(n, edges)


def hypercube(dim: int) -> InputGraph:
    """The dim-dimensional hypercube on 2^dim nodes."""
    n = 1 << dim
    edges = [(u, u ^ (1 << b)) for u in range(n) for b in range(dim) if u < u ^ (1 << b)]
    return InputGraph(n, edges)


def gnp(n: int, p: float, seed: int = 0) -> InputGraph:
    """Erdős–Rényi G(n, p)."""
    rng = _rng(seed)
    edges = [
        (i, j) for i in range(n) for j in range(i + 1, n) if rng.random() < p
    ]
    return InputGraph(n, edges)


def random_connected(
    n: int, extra_edge_prob: float = 0.02, seed: int = 0
) -> InputGraph:
    """A random spanning tree plus G(n, p) extras: always connected."""
    rng = _rng(seed)
    edges: set[EdgeT] = set()
    for i in range(1, n):
        j = rng.randrange(i)
        edges.add((j, i))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < extra_edge_prob:
                edges.add((i, j))
    return InputGraph(n, sorted(edges))


def forest_union(n: int, k: int, seed: int = 0) -> InputGraph:
    """Union of ``k`` independent random spanning forests: arboricity ≤ k.

    Each forest is a uniform random recursive tree over a random node
    permutation, so the union is connected (every forest alone spans) and
    dense enough that the greedy arboricity estimate is usually exactly k.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    rng = _rng(seed)
    edges: set[EdgeT] = set()
    for _ in range(k):
        perm = list(range(n))
        rng.shuffle(perm)
        for i in range(1, n):
            a, b = perm[i], perm[rng.randrange(i)]
            edges.add((a, b) if a < b else (b, a))
    return InputGraph(n, sorted(edges))


def caterpillar(spine: int, legs_per_node: int) -> InputGraph:
    """A spine path with ``legs_per_node`` pendant leaves per spine node:
    a tree mixing path diameter with star-like degrees."""
    n = spine * (1 + legs_per_node)
    edges: list[EdgeT] = [(i, i + 1) for i in range(spine - 1)]
    nxt = spine
    for s in range(spine):
        for _ in range(legs_per_node):
            edges.append((s, nxt))
            nxt += 1
    return InputGraph(n, edges)


def preferential_attachment(n: int, m0: int, seed: int = 0) -> InputGraph:
    """Barabási–Albert-style: each new node attaches to ``m0`` existing
    nodes sampled proportionally to degree.  Arboricity ≤ m0 + 1 (each node
    contributes m0 edges to later orientation)."""
    if m0 < 1:
        raise ValueError("m0 must be >= 1")
    if n <= m0:
        return complete(max(1, n))
    rng = _rng(seed)
    edges: set[EdgeT] = set()
    targets_pool: list[int] = list(range(m0))
    for i in range(m0, n):
        chosen: set[int] = set()
        while len(chosen) < min(m0, i):
            chosen.add(targets_pool[rng.randrange(len(targets_pool))] if targets_pool else rng.randrange(i))
        for j in chosen:
            edges.add((j, i))
            targets_pool.append(j)
            targets_pool.append(i)
    return InputGraph(n, sorted(edges))


def random_bipartite(
    left: int, right: int, p: float, seed: int = 0
) -> InputGraph:
    """Random bipartite graph: left nodes 0..left−1, right nodes
    left..left+right−1.  Bipartite graphs are 2-colorable but can have any
    arboricity — a useful contrast to the a-controlled families."""
    rng = _rng(seed)
    edges = [
        (i, left + j)
        for i in range(left)
        for j in range(right)
        if rng.random() < p
    ]
    return InputGraph(left + right, edges)


def ring_of_chords(n: int, chords_per_node: int, seed: int = 0) -> InputGraph:
    """A cycle plus random chords: an expander-like family with diameter
    O(log n) w.h.p. and arboricity ≤ chords_per_node + 2."""
    if n < 3:
        raise ValueError("ring_of_chords needs n >= 3")
    rng = _rng(seed)
    edges: set[EdgeT] = set()
    for i in range(n):
        a, b = i, (i + 1) % n
        edges.add((a, b) if a < b else (b, a))
    for i in range(n):
        for _ in range(chords_per_node):
            j = rng.randrange(n)
            if j != i:
                edges.add((i, j) if i < j else (j, i))
    return InputGraph(n, sorted(edges))


def series_parallel(n: int, seed: int = 0) -> InputGraph:
    """A random series-parallel graph (treewidth ≤ 2, arboricity ≤ 2):
    grown by repeatedly subdividing or duplicating a random existing edge.

    Series-parallel graphs are one of the bounded-treewidth families the
    paper cites as having bounded arboricity [16]."""
    if n < 2:
        raise ValueError("series_parallel needs n >= 2")
    rng = _rng(seed)
    edges: list[EdgeT] = [(0, 1)]
    multi: list[tuple[int, int]] = [(0, 1)]  # parallel copies allowed here
    nxt = 2
    while nxt < n:
        u, v = multi[rng.randrange(len(multi))]
        if rng.random() < 0.5:
            # series: subdivide (u,v) with the new node
            multi.append((u, nxt))
            multi.append((nxt, v))
        else:
            # parallel-ish: attach the new node across the edge
            multi.append((u, nxt))
            multi.append((v, nxt))
        nxt += 1
    simple = {(min(a, b), max(a, b)) for a, b in multi}
    return InputGraph(n, sorted(simple))


def disjoint_cliques(n: int, clique_size: int) -> InputGraph:
    """⌈n/clique_size⌉ disjoint cliques: a disconnected input exercising
    minimum spanning *forest* behaviour."""
    edges: list[EdgeT] = []
    for base in range(0, n, clique_size):
        members = range(base, min(base + clique_size, n))
        edges.extend(
            (i, j) for i in members for j in members if i < j
        )
    return InputGraph(n, edges)


def from_edges(n: int, edges: Iterable[EdgeT]) -> InputGraph:
    """Thin wrapper for explicit edge lists (tests, examples)."""
    return InputGraph(n, edges)
