"""Workload graphs: generators, arboricity tooling, weights, properties.

The paper's algorithms are parametrized by the arboricity ``a`` of the
input graph, so the generators here put ``a`` under experimental control
(unions of random forests have arboricity ≤ k and usually exactly k; grids
and trees pin small constants; stars separate ``a`` from ``∆``).
"""

from . import arboricity, generators, properties, weights

__all__ = ["generators", "arboricity", "properties", "weights"]
