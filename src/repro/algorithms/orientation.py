"""Computing an O(a)-orientation (Section 4, Theorem 4.12).

Nash-Williams-style peeling: in each phase, nodes whose *remaining* degree
``dᵢ(u)`` is at most twice the remaining average degree ``d̄ᵢ`` become
*active*, learn the direction of every incident edge, and leave the graph
(all their remaining edges point away from them).  Since ``d̄ᵢ ≤ 2a``, each
active node gets outdegree ≤ ``2 d̄ᵢ ≤ 4a``, and at least half the
remaining nodes leave per phase, giving O(log n) phases (Lemma 4.1).

Each phase has three stages (Section 4.2):

* **Stage 1** — every non-inactive node computes ``dᵢ(u)`` (an Aggregation
  where each inactive node adds 1 toward each of its out-neighbours) and the
  nodes compute ``d̄ᵢ`` with an Aggregate-and-Broadcast.
* **Stage 2** — active nodes identify their inactive neighbours via the
  Identification Algorithm (s = c hash functions, q = 4ecd*log n trials);
  the ≤ log n unrecovered red edges per node (Lemma 4.4) are fixed in a
  second step: high-degree unsuccessful nodes (U_high) broadcast their ids
  (gather to node 0 + pipelined broadcast) and get pinged directly by all
  active/waiting neighbours; low-degree ones (U_low) announce themselves to
  their inactive neighbours over multicast trees and run a finer
  identification (s = c log n, q = 4ec log² n).
* **Stage 3** — active nodes discover which red-edge endpoints are active:
  both endpoints of an edge hash it to a rendezvous node ``h(id(e))`` and a
  round ``r(id(e))``; the rendezvous answers when it sees the edge twice.
  Directions follow: inactive→active edges are inbound, active–active by
  identifier, active→waiting outbound.

The level structure (``level[u]`` = phase in which u left) is exactly what
the O(a)-coloring consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ProtocolError
from ..ncc.graph_input import InputGraph
from ..ncc.message import BatchBuilder
from ..primitives.aggregation import AggregationProblem
from ..primitives.direct import spread_exchange
from ..primitives.functions import MAX, SUM, tuple_of
from ..registry import register_algorithm
from ..runtime import NCCRuntime
from .identification import identification_family, run_identification

_SUM2 = tuple_of(SUM, SUM)


@dataclass
class Orientation:
    """The computed orientation plus the peeling level structure."""

    out_neighbors: list[tuple[int, ...]]
    in_neighbors: list[tuple[int, ...]]
    #: phase index (1-based) in which each node became inactive.
    level: list[int]
    phases: int
    rounds: int

    @property
    def max_outdegree(self) -> int:
        return max((len(o) for o in self.out_neighbors), default=0)

    def outdegree(self, u: int) -> int:
        return len(self.out_neighbors[u])

    def same_level_neighbors(self, u: int) -> list[int]:
        lu = self.level[u]
        return [v for v in self.out_neighbors[u] + self.in_neighbors[u] if self.level[v] == lu]

    def arcs(self) -> list[tuple[int, int]]:
        """All directed edges u -> v."""
        return [(u, v) for u in range(len(self.out_neighbors)) for v in self.out_neighbors[u]]


class OrientationAlgorithm:
    """Distributed O(a)-orientation of the input graph."""

    def __init__(self, rt: NCCRuntime, graph: InputGraph):
        if graph.n != rt.n:
            raise ValueError("graph and runtime disagree on n")
        self.rt = rt
        self.graph = graph

    # ------------------------------------------------------------------
    def run(self, max_phases: int | None = None) -> Orientation:
        rt, g = self.rt, self.graph
        n = g.n
        start_round = rt.net.round_index
        tag = rt.shared.fresh_tag("orientation")
        log2n = rt.log2n
        c = rt.config.identification_s_constant
        qc = rt.config.identification_q_constant

        inactive = [False] * n
        level = [0] * n
        out_nb: list[list[int]] = [[] for _ in range(n)]
        in_nb: list[list[int]] = [[] for _ in range(n)]
        d_star = 0  # max over phases of max active remaining degree
        phases = 0
        limit = max_phases if max_phases is not None else 4 * max(1, log2n) + 16

        with rt.net.phase("orientation"):
            while not all(inactive):
                if phases >= limit:
                    raise ProtocolError(
                        f"orientation did not converge within {limit} phases"
                    )
                phases += 1

                # ===== Stage 1: remaining degrees and the average ========
                di = self._stage1_degrees(inactive, out_nb, tag, phases)
                live = [u for u in range(n) if not inactive[u]]
                positive = [u for u in live if di[u] > 0]
                pair = rt.aggregate_and_broadcast(
                    {u: (di[u], 1) for u in positive}, _SUM2, kind="orientation:avg"
                )
                if pair is None:
                    # Every remaining node has remaining degree 0: they all
                    # leave with inbound-only edges.
                    for u in live:
                        inactive[u] = True
                        level[u] = phases
                    break
                avg = pair[0] / pair[1]
                active = [u for u in positive if di[u] <= 2 * avg]
                zero_degree = [u for u in live if di[u] == 0]
                for u in zero_degree:
                    # All incident edges were already directed toward u.
                    inactive[u] = True
                    level[u] = phases
                if not active:
                    raise ProtocolError("no node became active; d̄ᵢ inconsistent")

                # d*_i — known to all via Aggregate-and-Broadcast.
                d_star_i = rt.aggregate_and_broadcast(
                    {u: di[u] for u in active}, MAX, kind="orientation:dstar"
                )
                d_star = max(d_star, int(d_star_i))

                # ===== Stage 2: identify inactive neighbours =============
                inactive_nb = self._stage2_identify(
                    active, inactive, out_nb, di, d_star, c, qc, tag, phases
                )

                # ===== Stage 3: split red endpoints into active/waiting ==
                active_set = set(active)
                red_of = {
                    u: [v for v in g.neighbors(u) if v not in inactive_nb[u]]
                    for u in active
                }
                active_red = self._stage3_active_probe(
                    active, red_of, max(1, int(d_star_i)), tag, phases
                )

                # ===== Orient and retire this phase's active nodes =======
                for u in active:
                    for v in g.neighbors(u):
                        if v in inactive_nb[u]:
                            # v left earlier: edge was directed v -> u.
                            in_nb[u].append(v)
                        elif v in active_red[u]:
                            # both active: direct by identifier.
                            if u < v:
                                out_nb[u].append(v)
                            else:
                                in_nb[u].append(v)
                        else:
                            # v waiting: active -> waiting.
                            out_nb[u].append(v)
                    inactive[u] = True
                    level[u] = phases

        # Nodes that left with remaining degree 0 have inbound-only edges
        # whose inactive endpoints never told them explicitly — they conclude
        # it locally (every edge must have been directed away from a node
        # that left strictly earlier).
        for u in range(n):
            known = set(out_nb[u]) | set(in_nb[u])
            for v in g.neighbors(u):
                if v not in known:
                    in_nb[u].append(v)

        return Orientation(
            out_neighbors=[tuple(sorted(o)) for o in out_nb],
            in_neighbors=[tuple(sorted(i)) for i in in_nb],
            level=level,
            phases=phases,
            rounds=rt.net.round_index - start_round,
        )

    # ------------------------------------------------------------------
    def _stage1_degrees(
        self,
        inactive: list[bool],
        out_nb: list[list[int]],
        tag: object,
        phase: int,
    ) -> list[int]:
        """dᵢ(u) = d(u) − (#inactive neighbours), via one Aggregation."""
        rt, g = self.rt, self.graph
        memberships: dict[int, dict[int, int]] = {}
        targets: dict[int, int] = {}
        for v in range(g.n):
            if inactive[v] and out_nb[v]:
                memberships[v] = {w: 1 for w in out_nb[v]}
                for w in out_nb[v]:
                    targets[w] = w
        outcome = rt.aggregation(
            AggregationProblem(
                memberships=memberships,
                targets=targets,
                fn=SUM,
                ell2_bound=1,
            ),
            tag=(tag, "deg", phase),
            kind="orientation:degrees",
        )
        di = [0] * g.n
        for u in range(g.n):
            if not inactive[u]:
                di[u] = g.degree(u) - outcome.values.get(u, 0)
        return di

    # ------------------------------------------------------------------
    def _stage2_identify(
        self,
        active: list[int],
        inactive: list[bool],
        out_nb: list[list[int]],
        di: list[int],
        d_star: int,
        c: int,
        qc: int,
        tag: object,
        phase: int,
    ) -> dict[int, set[int]]:
        """Every active node learns its set of inactive neighbours."""
        rt, g = self.rt, self.graph
        n = g.n
        log2n = rt.log2n

        # ---- Step 1: coarse identification (s = c, q = 4ecd*log n).
        q1 = max(4 * c, math.ceil(4 * math.e * qc * max(1, d_star) * log2n))
        fam1 = identification_family(rt, c, q1, tag=(tag, "fam1", phase))
        potential = {
            v: [w for w in out_nb[v]] for v in range(n) if inactive[v] and out_nb[v]
        }
        candidates = {u: list(g.neighbors(u)) for u in active}
        step1 = run_identification(
            rt, g, active, candidates, potential, fam1, kind="orientation:ident1"
        )

        inactive_nb: dict[int, set[int]] = {}
        for u in active:
            reds = set(step1.red_neighbors.get(u, ()))
            if u not in step1.unsuccessful:
                inactive_nb[u] = set(g.neighbors(u)) - reds

        unsuccessful = sorted(step1.unsuccessful)
        # Split by removed degree (Section 4.2): high if d(u) - dᵢ(u) >
        # n / log n.
        threshold = n / max(1, log2n)
        u_high = [u for u in unsuccessful if (g.degree(u) - di[u]) > threshold]
        u_low = [u for u in unsuccessful if (g.degree(u) - di[u]) <= threshold]

        # ---- Step 2a: U_high — gather ids at node 0, broadcast, then every
        # active-or-waiting node pings its U_high neighbours directly in a
        # random round of a max(d*, |U_high|) window.
        gathered = rt.gather_to_root({u: u for u in u_high}, kind="orientation:uhigh-gather")
        rt.pipelined_broadcast(gathered, kind="orientation:uhigh-bcast")
        if u_high:
            uhigh_set = set(u_high)
            window = max(1, d_star, len(u_high))
            sends = []
            for w in range(n):
                if inactive[w]:
                    continue
                for v in g.neighbors(w):
                    if v in uhigh_set and v != w:
                        sends.append((w, v, ("ping", w)))
            rng = rt.shared.node_rng(0, (tag, "uhigh-window", phase))
            inbox = spread_exchange(
                rt.net, sends, window, rng=rng, kind="orientation:uhigh-ping"
            )
            for v in u_high:
                pings = {m.payload[1] for m in inbox.get(v, [])}
                # Active/waiting neighbours pinged; the rest are inactive.
                inactive_nb[v] = {
                    w for w in g.neighbors(v) if w not in pings
                }

        # ---- Step 2b: U_low — announce over multicast trees, then a finer
        # identification (s = c log n, q = 4ec log² n) against the narrowed
        # potential sets.
        # Every inactive node joins the group of each of its out-neighbours.
        injections = {
            v: [(("ul", w), v) for w in out_nb[v]]
            for v in range(n)
            if inactive[v] and out_nb[v]
        }
        ul_trees = rt.multicast_setup_delegated(
            injections, tag=(tag, "ul-trees", phase), kind="orientation:ulow-setup"
        )
        packets = {("ul", v): 1 for v in u_low if ("ul", v) in ul_trees.root}
        announced: dict[int, list[int]] = {}
        if packets:
            out = rt.multicast(
                ul_trees,
                packets,
                {grp: grp[1] for grp in packets},
                ell_bound=max(1, d_star),
                tag=(tag, "ul-mc", phase),
                kind="orientation:ulow-announce",
            )
            for w, got in out.received.items():
                announced[w] = [grp[1] for grp in got]
        if u_low:
            s2 = max(4, c * log2n)
            q2 = max(4 * s2, math.ceil(4 * math.e * qc * log2n * log2n))
            fam2 = identification_family(rt, s2, q2, tag=(tag, "fam2", phase))
            # Playing node w narrowed its potential set to the U_low
            # out-neighbours it heard from.
            potential2 = dict(announced)
            candidates2 = {
                u: [
                    v
                    for v in g.neighbors(u)
                    if v not in set(step1.red_neighbors.get(u, ()))
                ]
                for u in u_low
            }
            step2 = run_identification(
                rt, g, u_low, candidates2, potential2, fam2, kind="orientation:ident2"
            )
            for u in u_low:
                if u in step2.unsuccessful:
                    raise ProtocolError(
                        f"node {u} failed both identification steps (phase {phase})"
                    )
                reds = set(step1.red_neighbors.get(u, ())) | set(
                    step2.red_neighbors.get(u, ())
                )
                inactive_nb[u] = set(g.neighbors(u)) - reds
        return inactive_nb

    # ------------------------------------------------------------------
    def _stage3_active_probe(
        self,
        active: list[int],
        red_of: dict[int, list[int]],
        d_star_i: int,
        tag: object,
        phase: int,
    ) -> dict[int, set[int]]:
        """Rendezvous hashing: both endpoints of an active-active edge send
        its identifier to h(id(e)) in round r(id(e)); a rendezvous node that
        sees an edge twice in one round responds to both endpoints *in the
        next round* (so responses stay spread out exactly like the paper's
        "immediately responds").  Returns per active node the red endpoints
        that are active."""
        rt, g = self.rt, self.graph
        net = rt.net
        nonce = rt.shared.next_nonce()
        h_node = rt.shared.hash_function(("stage3-node",), rt.n)
        h_round = rt.shared.hash_function(("stage3-round", d_star_i), max(1, d_star_i))
        salt = rt.shared.salted_key

        window = max(1, d_star_i)
        schedule: list[list[tuple[int, int, int]]] = [[] for _ in range(window)]
        for u in active:
            for v in red_of.get(u, ()):
                eid = g.edge_id(u, v)
                key = salt(nonce, eid)
                schedule[h_round(key)].append((u, h_node(key), eid))

        active_red: dict[int, set[int]] = {u: set() for u in active}
        pending_responses: list[tuple[int, int, int]] = []
        for r in range(window + 1):
            out = BatchBuilder(kind="orientation:rendezvous")
            for src, dst, eid in pending_responses:
                out.add(src, dst, ("act", eid), kind="orientation:rendezvous-ack")
            pending_responses = []
            if r < window:
                for src, dst, eid in schedule[r]:
                    out.add(src, dst, ("e", eid, src))
            inbox = net.exchange(out)
            for node, received in inbox.items():
                matches: dict[int, int] = {}
                for m in received:
                    if m.payload[0] != "e":
                        # A response: node is an endpoint learning that the
                        # edge's other endpoint is active too.
                        eid = m.payload[1]
                        a, b = g.arc_of_id(eid)
                        other = b if a == node else a
                        if node in active_red:
                            active_red[node].add(other)
                        continue
                    _, eid, _sender = m.payload
                    matches[eid] = matches.get(eid, 0) + 1
                for eid, count in matches.items():
                    if count >= 2:
                        a, b = g.arc_of_id(eid)
                        pending_responses.append((node, a, eid))
                        pending_responses.append((node, b, eid))
        if pending_responses:
            out = BatchBuilder(kind="orientation:rendezvous-ack")
            for src, dst, eid in pending_responses:
                out.add(src, dst, ("act", eid))
            inbox = net.exchange(out)
            for node, received in inbox.items():
                for m in received:
                    eid = m.payload[1]
                    a, b = g.arc_of_id(eid)
                    other = b if a == node else a
                    if node in active_red:
                        active_red[node].add(other)
        return active_red


# ----------------------------------------------------------------------
# Registry entry
# ----------------------------------------------------------------------
def _check(g: InputGraph, result: Orientation, params: dict) -> bool:
    # Structural validity: every input edge is directed exactly once and the
    # in/out adjacency views agree.
    arcs = result.arcs()
    if len(arcs) != g.m or len(set(arcs)) != g.m:
        return False
    from ..ncc.graph_input import canonical_edge

    if {canonical_edge(u, v) for u, v in arcs} != set(g.edges()):
        return False
    return all(u in result.in_neighbors[v] for u, v in arcs)


def _describe(g: InputGraph, result: Orientation, rt: NCCRuntime, params: dict) -> dict:
    from ..registry import describe_workload

    row = describe_workload(g, a_known=params["a"])
    row.update(
        rounds=result.rounds,
        phases=result.phases,
        max_outdegree=result.max_outdegree,
    )
    return row


@register_algorithm(
    "orientation",
    aliases=("orient", "o(a)-orientation"),
    summary="O(a)-orientation via Nash-Williams peeling",
    bound="O((a + log n) log n)",
    default_scenario="forest-union",
    check=_check,
    describe=_describe,
)
def _run(rt: NCCRuntime, g: InputGraph) -> Orientation:
    return OrientationAlgorithm(rt, g).run()
