"""BFS trees in O((a + D + log n) log n) rounds (Section 5.1, Theorem 5.2).

Frontier expansion over the precomputed broadcast trees: in each phase,
every node reached in the previous phase multicasts its identifier to its
neighbourhood with MIN-aggregation (Corollary 1), so every node with an
active neighbour learns the *smallest* active neighbour id — its BFS parent
``π(u)`` — and its distance ``δ(u)``.  After at most D+1 phases every
reachable node is labelled; a per-phase Aggregate-and-Broadcast detects
global termination (and keeps phases synchronized, which is where the
log n factor comes from).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ncc.graph_input import InputGraph
from ..primitives.functions import MAX, MIN
from ..registry import register_algorithm
from ..runtime import NCCRuntime
from .broadcast_trees import BroadcastTrees, build_broadcast_trees, neighborhood_multi_aggregate


@dataclass
class BFSResult:
    """Distances and predecessors of the BFS tree rooted at ``source``."""

    source: int
    #: δ(u): hop distance from the source; None = unreachable.
    dist: list[int | None]
    #: π(u): the smallest-id predecessor on a shortest path; None for the
    #: source and unreachable nodes.
    parent: list[int | None]
    phases: int
    rounds: int


class BFSAlgorithm:
    """Distributed BFS tree construction."""

    def __init__(
        self,
        rt: NCCRuntime,
        graph: InputGraph,
        *,
        broadcast_trees: BroadcastTrees | None = None,
    ):
        if graph.n != rt.n:
            raise ValueError("graph and runtime disagree on n")
        self.rt = rt
        self.graph = graph
        self._bt = broadcast_trees

    def run(self, source: int) -> BFSResult:
        rt, g = self.rt, self.graph
        if not 0 <= source < g.n:
            raise ValueError(f"source {source} outside [0, {g.n})")
        start_round = rt.net.round_index
        with rt.net.phase("bfs"):
            bt = self._bt if self._bt is not None else build_broadcast_trees(rt, g)
            self._bt = bt

            dist: list[int | None] = [None] * g.n
            parent: list[int | None] = [None] * g.n
            dist[source] = 0
            frontier = [source]
            phases = 0
            while frontier:
                phases += 1
                received = neighborhood_multi_aggregate(
                    rt,
                    bt,
                    {u: u for u in frontier},
                    MIN,
                    kind="bfs:frontier",
                )
                new_frontier = []
                for v, smallest in received.items():
                    if dist[v] is None:
                        dist[v] = phases
                        parent[v] = smallest
                        new_frontier.append(v)
                # Termination / synchronization: did anyone get reached?
                reached_any = rt.aggregate_and_broadcast(
                    {v: 1 for v in new_frontier}, MAX, kind="bfs:sync"
                )
                frontier = new_frontier
                if not reached_any:
                    break
        return BFSResult(
            source=source,
            dist=dist,
            parent=parent,
            phases=phases,
            rounds=rt.net.round_index - start_round,
        )


# ----------------------------------------------------------------------
# Registry entry (Table 1 row T1-BFS)
# ----------------------------------------------------------------------
def _workload(n: int, a: int, seed: int, family: str = "forest") -> InputGraph:
    # The legacy ``family`` option is a thin alias over the scenario
    # registry: "forest" -> `forest-union`, "grid" -> `grid`
    # (`python -m repro run --scenario` is the first-class spelling).
    from ..errors import ConfigurationError
    from ..scenarios import get_scenario

    if family not in ("forest", "grid"):
        raise ConfigurationError(
            f"unknown BFS family {family!r} (forest | grid); the option is "
            "deprecated — pick a workload with scenario instead"
        )
    return get_scenario("grid" if family == "grid" else "forest-union").build(
        n, a, seed
    )


def _check(g: InputGraph, result: BFSResult, params: dict) -> bool:
    from ..baselines.sequential import bfs_tree

    expected, _ = bfs_tree(g, result.source)
    return result.dist == expected


def _describe(g: InputGraph, result: BFSResult, rt: NCCRuntime, params: dict) -> dict:
    from ..registry import describe_workload

    family = params.get("family", "forest")
    row = describe_workload(
        g, with_diameter=True, a_known=(3 if family == "grid" else params["a"])
    )
    row.update(rounds=result.rounds, phases=result.phases)
    return row


@register_algorithm(
    "bfs",
    aliases=("BFS", "bfs-tree"),
    summary="BFS tree over broadcast trees (frontier multicasts)",
    bound="O((a + D + log n) log n)",
    table1_key="BFS",
    build_workload=_workload,
    default_scenario="forest-union",
    requires=("connected",),
    check=_check,
    describe=_describe,
    workload_options=("family",),
)
def _run(rt: NCCRuntime, g: InputGraph, *, source: int = 0) -> BFSResult:
    return BFSAlgorithm(rt, g).run(source)
