"""FindMin: each component leader learns its lightest outgoing edge.

Section 3, following King–Kutten–Thorup [35] with the broadcast-and-echo
replaced by multicasts (leader → component) and aggregations
(component → leader) over the component multicast trees.

The search key of an edge ``e = {a, b}`` combines weight and identifier,

    κ(e) = (w(e) << arcbits) | id(a, b),        a < b,

so binary search over κ finds the minimum-weight outgoing edge with
deterministic tie-breaking (the paper's FindMin searches weights; folding
the identifier into the key also recovers *which* edge attains the minimum,
which Section 3 needs before it can join multicast group ``A_{id(v)}``).

Each binary-search step asks every component "do you have an outgoing edge
with κ in [lo, mid)?" and answers it with the parity sketches of Section 3:
node ``u`` XOR-accumulates, per trial ``t``, the bit ``h_t(id(u, v))`` into
an *up* vector and ``h_t(id(v, u))`` into a *down* vector over its
qualifying incident edges; the component XOR (computed by one Aggregation
run for all components simultaneously) makes internal edges cancel, so the
vectors differ only if an outgoing edge qualifies — each trial detects a
difference with probability ≥ 1/2.

Lemma 3.1: O(log W log n) multicast/aggregation iterations per invocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..hashing.kwise import KWiseHash
from ..ncc.graph_input import InputGraph
from ..primitives.aggregation import AggregationProblem
from ..primitives.functions import XOR
from ..registry import register_algorithm
from ..runtime import NCCRuntime

#: Direction markers: the up- and down-sketches travel in *separate*
#: aggregation groups so that each message stays within the O(log n)-bit
#: budget (one packed T-bit vector per packet instead of two).
_UP, _DOWN = 0, 1


@dataclass
class FindMinOutcome:
    """Lightest outgoing edges per component leader."""

    #: leader -> (weight, a, b) with a < b; exactly one of a, b lies in the
    #: component (the caller resolves which via the leader it knows).
    lightest: dict[int, tuple[int, int, int]]
    #: number of binary-search iterations executed (all components lockstep)
    iterations: int


class EdgeSketcher:
    """Precomputed per-arc trial parities, shared by one MST run.

    The paper agrees on Θ(log n) hash functions once (Section 3: the
    necessary O(log³ n) bits are retrieved beforehand); this object holds
    them and caches, for every directed arc, the packed T-bit parity vector
    ``bits(arc) = Σ_t h_t(id(arc)) << t`` so that each search step costs one
    XOR per qualifying incident edge.
    """

    def __init__(self, graph: InputGraph, hashes: Sequence[KWiseHash]):
        self.graph = graph
        self.hashes = tuple(hashes)
        self.trials = len(self.hashes)
        self._cache: dict[int, int] = {}
        # κ layout: weight in the high bits, undirected edge id below.
        self.arcbits = 2 * graph.idbits + 1

    def kappa(self, u: int, v: int) -> int:
        """Search key of the undirected edge {u, v}."""
        return (self.graph.weight(u, v) << self.arcbits) | self.graph.edge_id(u, v)

    def kappa_max(self) -> int:
        wbits = max(1, self.graph.max_weight().bit_length())
        return 1 << (wbits + self.arcbits)

    def decode(self, kappa: int) -> tuple[int, int, int]:
        """κ → (weight, a, b) with a < b."""
        weight = kappa >> self.arcbits
        a, b = self.graph.arc_of_id(kappa & ((1 << self.arcbits) - 1))
        return weight, a, b

    def arc_bits(self, u: int, v: int) -> int:
        """Packed parity vector of the directed arc (u, v)."""
        arc = self.graph.arc_id(u, v)
        cached = self._cache.get(arc)
        if cached is None:
            bits = 0
            for t, h in enumerate(self.hashes):
                bits |= h.bit(arc) << t
            cached = self._cache[arc] = bits
        return cached

    def local_parities(self, u: int, lo: int, hi: int) -> tuple[int, int]:
        """(h↑(u), h↓(u)) packed vectors over incident edges with κ∈[lo,hi)."""
        up = down = 0
        g = self.graph
        for v in g.neighbors(u):
            if lo <= self.kappa(u, v) < hi:
                up ^= self.arc_bits(u, v)
                down ^= self.arc_bits(v, u)
        return up, down


def make_sketcher(rt: NCCRuntime, graph: InputGraph, *, tag: object) -> EdgeSketcher:
    """Agree on the run's sketch hash family (one charged agreement).

    T = 4·⌈log₂ n⌉ trials: each range test misses an existing outgoing edge
    with probability 2^-T, and one MST run performs
    O(phases · components · log(W n²)) ≈ polylog(n)·n tests, so the union
    bound stays ≪ 1 (a miss sends the binary search into the wrong half and
    yields a suboptimal—though still outgoing—edge).  The T parity bits plus
    the routing envelope fit the 8·log n message budget.
    """
    trials = 4 * rt.log2n
    hashes = rt.shared.hash_family((tag, "findmin-sketch"), trials, 2)
    return EdgeSketcher(graph, hashes)


@register_algorithm(
    "findmin",
    aliases=("find-min",),
    summary="FindMin subroutine: lightest outgoing edge per component "
    "(sketch binary search, Lemma 3.1) — not independently runnable",
    bound="O(log W log n) per invocation",
    kind="subroutine",
)
def find_lightest_edges(
    rt: NCCRuntime,
    graph: InputGraph,
    leader_of: Sequence[int],
    comp_trees,
    sketcher: EdgeSketcher,
    active_leaders: set[int],
    *,
    kind: str = "findmin",
) -> FindMinOutcome:
    """One FindMin invocation for every active component in lockstep.

    ``leader_of[u]`` is the component leader known to node ``u``;
    ``comp_trees`` are the current component multicast trees (group key =
    leader id, members = component minus leader).  Components not in
    ``active_leaders`` are skipped entirely.

    Returns the lightest outgoing edge per component; components with no
    outgoing edge (= finished connected components) are absent.
    """
    net, bf = rt.net, rt.bf
    kmax = sketcher.kappa_max()

    # Per-component binary-search state [lo, hi).  Members *mirror* this
    # state: every component member knows kmax, so the leader only needs to
    # multicast one bit per iteration — the outcome of the previous test —
    # and each member reproduces [lo, hi) locally.  This keeps the query
    # multicast within the O(log n)-bit message budget (a (lo, mid) pair of
    # κ values would need ~2(log W + 2 log n) bits).
    state: dict[int, tuple[int, int]] = {c: (0, kmax) for c in active_leaders}
    alive: dict[int, bool] = {c: True for c in active_leaders}
    prev_outcome: dict[int, int] = {}
    prev_testers: set[int] = set()
    iterations = 0

    with net.phase(kind):
        # Existence test + binary search share the same iteration shape:
        # the first iteration tests [0, kmax) (mid = hi), later ones test
        # the lower half [lo, mid).
        first = True
        while True:
            tests: dict[int, tuple[int, int]] = {}
            for c, (lo, hi) in state.items():
                if not alive[c]:
                    continue
                if first:
                    tests[c] = (lo, hi)
                elif hi - lo > 1:
                    tests[c] = (lo, (lo + hi) // 2)
            if not tests and not prev_testers:
                break
            if tests:
                iterations += 1

            # Leader -> component: 1-bit multicast ("activate" on the first
            # iteration, previous-test outcome afterwards).  Members update
            # their mirrored range from it.  Singleton components have no
            # tree and nothing to multicast.
            packets: dict[int, int] = {}
            for c in (tests if first else prev_testers):
                if c in comp_trees.root:
                    packets[c] = 1 if first else prev_outcome[c]
            if packets:
                rt.multicast(
                    comp_trees,
                    packets,
                    {c: c for c in packets},
                    ell_bound=1,
                    tag=rt.shared.fresh_tag("findmin-mc"),
                    kind=kind + ":query",
                )
            if not tests:
                break  # final outcome delivered; search is over

            # Component -> leader: XOR-aggregate the parity vectors.  Up and
            # down sketches ride in separate groups (message-size budget).
            memberships: dict[int, dict[tuple[int, int], int]] = {}
            for u in range(graph.n):
                c = leader_of[u]
                if c in tests:
                    lo, hi = tests[c]
                    up, down = sketcher.local_parities(u, lo, hi)
                    memberships[u] = {(c, _UP): up, (c, _DOWN): down}
            targets: dict[tuple[int, int], int] = {}
            for c in tests:
                targets[(c, _UP)] = c
                targets[(c, _DOWN)] = c
            problem = AggregationProblem(
                memberships=memberships,
                targets=targets,
                fn=XOR,
                ell2_bound=2,
            )
            outcome = rt.aggregation(
                problem, tag=rt.shared.fresh_tag("findmin-agg"), kind=kind + ":echo"
            )

            # Leaders evaluate their test.
            for c, (lo, mid) in tests.items():
                up = outcome.values.get((c, _UP), 0)
                down = outcome.values.get((c, _DOWN), 0)
                has_outgoing = up != down
                prev_outcome[c] = 1 if has_outgoing else 0
                if first:
                    if not has_outgoing:
                        alive[c] = False  # no outgoing edge at all
                else:
                    full_lo, full_hi = state[c]
                    state[c] = (lo, mid) if has_outgoing else (mid, full_hi)
            prev_testers = set(tests)
            first = False

    lightest: dict[int, tuple[int, int, int]] = {}
    for c, ok in alive.items():
        if not ok:
            continue
        lo, hi = state[c]
        assert hi - lo == 1, "binary search must isolate a single key"
        weight, a, b = sketcher.decode(lo)
        lightest[c] = (weight, a, b)
    return FindMinOutcome(lightest=lightest, iterations=iterations)
