"""Broadcast trees: multicast trees for A_{id(u)} = N(u) (Section 5, Lemma 5.1).

The naive setup — every node joins the group of every neighbour — costs
O(d̄ + ∆/log n + log n), which is Θ(n/log n) on a star.  Lemma 5.1's trick:
first compute an O(a)-orientation; then for every directed edge ``u → v``
the *tail* ``u`` injects both join-packets (u into A_{id(v)} and v into
A_{id(u)}), so every node injects at most 2·outdeg = O(a) packets and the
setup takes O(a + log n) rounds with tree congestion O(a + log n), w.h.p.

These trees let any subset S of nodes talk to all their neighbours in
O(Σ_{u∈S} d(u)/n + log n) rounds via Multi-Aggregation (Corollary 1) —
the workhorse of the BFS/MIS/matching algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from ..butterfly.routing import TreeSet
from ..ncc.graph_input import InputGraph
from ..primitives.functions import Aggregate
from ..registry import register_algorithm
from ..runtime import NCCRuntime
from .orientation import Orientation, OrientationAlgorithm


@dataclass
class BroadcastTrees:
    """Per-node broadcast trees over the input graph."""

    trees: TreeSet
    orientation: Orientation
    #: rounds spent building the trees (excluding the orientation).
    setup_rounds: int
    #: rounds spent computing the orientation.
    orientation_rounds: int

    def congestion(self) -> int:
        return self.trees.congestion()


def build_broadcast_trees(
    rt: NCCRuntime,
    graph: InputGraph,
    orientation: Orientation | None = None,
) -> BroadcastTrees:
    """Build broadcast trees for every node's neighbourhood (Lemma 5.1).

    Computes an O(a)-orientation first unless one is supplied.  Group keys
    are plain node identifiers: group ``u`` = ``N(u)`` with source ``u``.
    """
    if orientation is None:
        orientation = OrientationAlgorithm(rt, graph).run()
    orientation_rounds = orientation.rounds

    start = rt.net.round_index
    injections: dict[int, list[tuple[int, int]]] = {}
    for u in range(graph.n):
        pairs: list[tuple[int, int]] = []
        for v in orientation.out_neighbors[u]:
            pairs.append((v, u))  # u joins A_{id(v)}
            pairs.append((u, v))  # u injects v's membership of A_{id(u)}
        if pairs:
            injections[u] = pairs
    trees = rt.multicast_setup_delegated(
        injections,
        tag=rt.shared.fresh_tag("broadcast-trees"),
        kind="broadcast-trees",
    )
    setup_rounds = rt.net.round_index - start
    return BroadcastTrees(
        trees=trees,
        orientation=orientation,
        setup_rounds=setup_rounds,
        orientation_rounds=orientation_rounds,
    )


def neighborhood_multi_aggregate(
    rt: NCCRuntime,
    bt: BroadcastTrees,
    packets: Mapping[int, Any],
    fn: Aggregate,
    *,
    annotate: Callable | None = None,
    kind: str = "corollary1",
) -> dict[int, Any]:
    """Corollary 1: every node in S = packets.keys() multicasts to its
    neighbourhood; every node receives the f-aggregate of the packets of
    its senders.  Runs in O(Σ_{u∈S} d(u)/n + log n) rounds.

    Nodes with empty neighbourhoods have no tree and nothing to send; they
    are silently skipped (their packet reaches nobody, as in the paper).
    """
    live = {u: p for u, p in packets.items() if u in bt.trees.root}
    if not live:
        return {}
    out = rt.multi_aggregation(
        bt.trees,
        live,
        {u: u for u in live},
        fn,
        annotate=annotate,
        tag=rt.shared.fresh_tag("corollary1"),
        kind=kind,
    )
    return out.values


# ----------------------------------------------------------------------
# Registry entry
# ----------------------------------------------------------------------
def _check(g: InputGraph, result: BroadcastTrees, params: dict) -> bool:
    # Group u must be exactly N(u): every neighbour appears as a leaf member
    # of u's tree, and each tree with members has a root.
    for u in range(g.n):
        expected = set(g.neighbors(u))
        members = {
            m for ms in result.trees.leaf_members.get(u, {}).values() for m in ms
        }
        if members != expected:
            return False
        if expected and u not in result.trees.root:
            return False
    return True


def _describe(
    g: InputGraph, result: BroadcastTrees, rt: NCCRuntime, params: dict
) -> dict:
    from ..registry import describe_workload

    row = describe_workload(g, a_known=params["a"])
    row.update(
        rounds=result.setup_rounds + result.orientation_rounds,
        setup_rounds=result.setup_rounds,
        orientation_rounds=result.orientation_rounds,
        congestion=result.congestion(),
        max_outdegree=result.orientation.max_outdegree,
    )
    return row


def _parity(rt: NCCRuntime, g: InputGraph):
    bt = build_broadcast_trees(rt, g)
    return (
        bt.setup_rounds,
        bt.orientation_rounds,
        bt.congestion(),
        bt.orientation.out_neighbors,
        bt.trees.root,
        bt.trees.leaf_members,
    )


@register_algorithm(
    "broadcast_trees",
    aliases=("broadcast-trees", "bt"),
    summary="per-node neighbourhood multicast trees (Lemma 5.1 setup)",
    bound="O(a + log n) setup",
    default_scenario="forest-union",
    check=_check,
    describe=_describe,
    parity=_parity,
)
def _run(rt: NCCRuntime, g: InputGraph) -> BroadcastTrees:
    return build_broadcast_trees(rt, g)
