"""Graph algorithms for the Node-Capacitated Clique (Sections 3–5).

Every algorithm takes an :class:`~repro.runtime.NCCRuntime` and an
:class:`~repro.ncc.graph_input.InputGraph` and moves all information
exclusively through the communication primitives and capacity-respecting
direct exchanges, so the runtime's round counter measures the paper's
quantity of interest.

=====================  =================================  ==============
Algorithm              Paper result                       Module
=====================  =================================  ==============
MST                    O(log⁴ n) (Theorem 3.2)            ``mst``
O(a)-orientation       O((a+log n) log n) (Theorem 4.12)  ``orientation``
Broadcast trees        O(a+log n) setup (Lemma 5.1)       ``broadcast_trees``
BFS tree               O((a+D+log n) log n) (Thm 5.2)     ``bfs``
MIS                    O((a+log n) log n) (Thm 5.3)       ``mis``
Maximal matching       O((a+log n) log n) (Thm 5.4)       ``matching``
O(a)-coloring          O((a+log n) log^{3/2} n) (Thm 5.5) ``coloring``
=====================  =================================  ==============

Symbols are imported lazily so that loading one algorithm does not pull in
the whole package.
"""

from importlib import import_module

_LAZY = {
    "MSTAlgorithm": ".mst",
    "MSTResult": ".mst",
    "ConnectedComponentsAlgorithm": ".components",
    "ComponentsResult": ".components",
    "FindMinOutcome": ".findmin",
    "OrientationAlgorithm": ".orientation",
    "Orientation": ".orientation",
    "run_identification": ".identification",
    "IdentificationResult": ".identification",
    "build_broadcast_trees": ".broadcast_trees",
    "BroadcastTrees": ".broadcast_trees",
    "BFSAlgorithm": ".bfs",
    "BFSResult": ".bfs",
    "MISAlgorithm": ".mis",
    "MISResult": ".mis",
    "MatchingAlgorithm": ".matching",
    "MatchingResult": ".matching",
    "ColoringAlgorithm": ".coloring",
    "ColoringResult": ".coloring",
}

__all__ = sorted(_LAZY)


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module 'repro.algorithms' has no attribute {name!r}")
    return getattr(import_module(module, __name__), name)
