"""Minimum Spanning Tree in O(log⁴ n) rounds (Section 3, Theorem 3.2).

Boruvka with Heads/Tails clustering:

1. every component's leader flips a coin and multicasts it;
2. FindMin (sketch binary search, :mod:`~repro.algorithms.findmin`) gives
   the leader its component's lightest outgoing edge {u, v};
3. the leader multicasts {u, v}; the inside endpoint ``u`` joins multicast
   group ``A_{id(v)}`` and learns, via a fresh tree setup + multicast,
   the coin and leader of ``v``'s component;
4. if C flipped Tails and C' Heads, ``u`` records {u, v} as an MST edge
   and reports C'’s leader to its own leader, which multicasts the new
   leader to the whole component;
5. component multicast trees are rebuilt for the merged components.

Repeats until no component has an outgoing edge (detected by an
Aggregate-and-Broadcast), so disconnected inputs yield the minimum spanning
forest.  Ties are broken by edge identifier — FindMin searches the combined
key (w, id), making all weights effectively distinct (the classical
tie-breaking that guarantees a unique MSF).

Only the inside endpoint of each MST edge knows the edge is in the MST,
exactly as the paper promises.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ProtocolError
from ..ncc.graph_input import InputGraph, canonical_edge
from ..primitives.direct import send_direct
from ..primitives.functions import MAX
from ..registry import register_algorithm
from ..runtime import NCCRuntime
from .findmin import find_lightest_edges, make_sketcher

HEADS, TAILS = 1, 0


@dataclass
class MSTResult:
    """Output of the distributed MST computation."""

    #: The MSF edges, canonical orientation.
    edges: set[tuple[int, int]]
    #: Σ weights of the edges.
    weight: int
    #: Boruvka phases executed.
    phases: int
    #: Total NCC rounds consumed by this run.
    rounds: int
    #: edges known per inside endpoint: u -> list of MST edges u discovered.
    known_by: dict[int, list[tuple[int, int]]] = field(default_factory=dict)


class MSTAlgorithm:
    """Distributed MST/MSF on a weighted input graph."""

    def __init__(self, rt: NCCRuntime, graph: InputGraph):
        if graph.n != rt.n:
            raise ValueError("graph and runtime disagree on n")
        self.rt = rt
        self.graph = graph

    # ------------------------------------------------------------------
    def run(self, max_phases: int | None = None) -> MSTResult:
        rt, g = self.rt, self.graph
        n = g.n
        start_round = rt.net.round_index
        tag = rt.shared.fresh_tag("mst")

        mst_edges: set[tuple[int, int]] = set()
        known_by: dict[int, list[tuple[int, int]]] = {}
        active = set(range(n))  # leaders of components that may still merge
        finished_all: set[int] = set()  # leaders with no outgoing edges
        phases = 0
        limit = max_phases if max_phases is not None else 4 * max(1, rt.log2n) + 16

        with rt.net.phase("mst"):
            sketcher = make_sketcher(rt, g, tag=tag)
            leader_of = list(range(n))  # every node its own component
            comp_trees = self._build_component_trees(leader_of)
            while True:
                # Global termination check: does any component still have an
                # outgoing edge candidate?  (1 = "my component was active and
                # found an edge last phase"; first phase always proceeds.)
                if not active:
                    break
                if phases >= limit:
                    raise ProtocolError(
                        f"MST did not converge within {limit} phases"
                    )
                phases += 1

                # ---- 1. coin flips, multicast to components.
                coins: dict[int, int] = {}
                for c in active:
                    coins[c] = rt.shared.node_rng(c, (tag, "coin", phases)).randrange(2)
                packets = {c: coins[c] for c in active if c in comp_trees.root}
                if packets:
                    rt.multicast(
                        comp_trees,
                        packets,
                        {c: c for c in packets},
                        ell_bound=1,
                        tag=rt.shared.fresh_tag("mst-coin"),
                        kind="mst:coin",
                    )
                # (Every component member now knows its component's coin.)

                # ---- 2. FindMin per component.
                outcome = find_lightest_edges(
                    rt, g, leader_of, comp_trees, sketcher, active, kind="mst:findmin"
                )
                lightest = outcome.lightest

                # Components without outgoing edges are done for good: they
                # have no edges to the outside, so nothing ever merges into
                # them either.
                finished = active - set(lightest)
                finished_all |= finished
                active -= finished

                # Tell everyone whether anything is left to merge.
                any_left = rt.aggregate_and_broadcast(
                    {c: 1 for c in lightest}, MAX, kind="mst:termination"
                )
                if not any_left:
                    break

                # ---- 3. leaders multicast their lightest edge.
                packets = {
                    c: (w, a, b)
                    for c, (w, a, b) in lightest.items()
                    if c in comp_trees.root
                }
                if packets:
                    rt.multicast(
                        comp_trees,
                        packets,
                        {c: c for c in packets},
                        ell_bound=1,
                        tag=rt.shared.fresh_tag("mst-edge"),
                        kind="mst:edge",
                    )

                # Inside endpoint per component (the node that will probe the
                # other side).  Exactly one endpoint lies in the component.
                probe_of: dict[int, tuple[int, int]] = {}  # leader -> (u, v)
                for c, (w, a, b) in lightest.items():
                    if leader_of[a] == c and leader_of[b] == c:
                        raise ProtocolError(
                            f"FindMin returned internal edge ({a},{b}) for {c}"
                        )
                    u, v = (a, b) if leader_of[a] == c else (b, a)
                    probe_of[c] = (u, v)

                # ---- 3b. probes join A_{id(v)}; fresh trees + multicast of
                # (coin, leader) from every probed node v.
                memberships = {u: [("nb", v)] for c, (u, v) in probe_of.items()}
                nb_trees = rt.multicast_setup(
                    memberships,
                    tag=rt.shared.fresh_tag("mst-nb"),
                    kind="mst:neighbor-setup",
                )
                nb_packets = {}
                nb_sources = {}
                for grp in nb_trees.root:
                    _, v = grp
                    # v's component has the outgoing edge {u, v} too, so it
                    # is still active and flipped a coin this phase.
                    nb_packets[grp] = (coins[leader_of[v]], leader_of[v])
                    nb_sources[grp] = v
                nb_out = rt.multicast(
                    nb_trees,
                    nb_packets,
                    nb_sources,
                    ell_bound=1,
                    tag=rt.shared.fresh_tag("mst-nbmc"),
                    kind="mst:neighbor-coin",
                )

                # ---- 4. Tails-meets-Heads: record MST edge, report to leader.
                reports: list[tuple[int, int, int]] = []  # (u -> leader c, new leader)
                for c, (u, v) in probe_of.items():
                    if coins[c] != TAILS:
                        continue
                    got = nb_out.at(u).get(("nb", v))
                    if got is None:
                        raise ProtocolError(f"probe {u} missed neighbour-coin of {v}")
                    v_coin, v_leader = got
                    if v_coin == HEADS:
                        e = canonical_edge(u, v)
                        mst_edges.add(e)
                        known_by.setdefault(u, []).append(e)
                        reports.append((u, c, v_leader))

                new_leader_of_comp: dict[int, int] = {}
                inbox = send_direct(
                    rt.net,
                    [(u, c, ("NL", v_leader)) for u, c, v_leader in reports if u != c],
                    kind="mst:report",
                )
                for c, msgs in inbox.items():
                    for m in msgs:
                        new_leader_of_comp[c] = m.payload[1]
                for u, c, v_leader in reports:
                    if u == c:  # the probe endpoint is its own leader
                        new_leader_of_comp[c] = v_leader

                # ---- 5. leaders multicast the new leader; nodes update.
                packets = {
                    c: nl
                    for c, nl in new_leader_of_comp.items()
                    if c in comp_trees.root
                }
                if packets:
                    rt.multicast(
                        comp_trees,
                        packets,
                        {c: c for c in packets},
                        ell_bound=1,
                        tag=rt.shared.fresh_tag("mst-newleader"),
                        kind="mst:new-leader",
                    )
                # A Tails component re-points at a Heads component whose own
                # leader did not change this phase, so one hop suffices.
                for u in range(n):
                    c = leader_of[u]
                    if c in new_leader_of_comp:
                        leader_of[u] = new_leader_of_comp[c]
                active = {leader_of[u] for u in range(n)} - finished_all

                # ---- 6. rebuild component multicast trees.
                comp_trees = self._build_component_trees(leader_of)

        rounds = rt.net.round_index - start_round
        weight = sum(g.weight(u, v) for u, v in mst_edges)
        return MSTResult(
            edges=mst_edges,
            weight=weight,
            phases=phases,
            rounds=rounds,
            known_by=known_by,
        )

    # ------------------------------------------------------------------
    def _build_component_trees(self, leader_of: list[int]):
        rt = self.rt
        memberships = {
            u: [leader_of[u]] for u in range(rt.n) if leader_of[u] != u
        }
        return rt.multicast_setup(
            memberships,
            tag=rt.shared.fresh_tag("mst-comptrees"),
            kind="mst:tree-rebuild",
        )


# ----------------------------------------------------------------------
# Registry entry (Table 1 row T1-MST)
# ----------------------------------------------------------------------
def _check(g: InputGraph, result: MSTResult, params: dict) -> bool:
    from ..baselines.sequential import kruskal_msf

    return result.edges == kruskal_msf(g)


def _describe(g: InputGraph, result: MSTResult, rt: NCCRuntime, params: dict) -> dict:
    from ..registry import describe_workload

    row = describe_workload(g, a_known=params["a"])
    row.update(rounds=result.rounds, phases=result.phases, W=g.max_weight())
    return row


@register_algorithm(
    "mst",
    aliases=("MST", "minimum-spanning-tree"),
    summary="weighted MST/MSF via Boruvka + FindMin sketches",
    bound="O(log^4 n)",
    table1_key="MST",
    default_scenario="forest-union-random-weights",
    requires=("weights",),
    check=_check,
    describe=_describe,
)
def _run(rt: NCCRuntime, g: InputGraph) -> MSTResult:
    return MSTAlgorithm(rt, g).run()
