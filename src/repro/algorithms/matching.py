"""Maximal Matching in O((a + log n) log n) rounds (Section 5.3).

Israeli–Itai [31] over the broadcast trees, with the paper's annotated
Multi-Aggregation twist: every unmatched node multicasts its identifier;
when a leaf ``l(id(u), v)`` re-keys the packet for member ``v`` it annotates
it with a uniform random value, and MIN-combining keeps the annotation-
minimal packet — so every node with an unmatched neighbour receives one
*uniformly random* unmatched neighbour (its "choice").

One phase then proceeds exactly as in [31]:

1. every unmatched node v learns a uniform random unmatched neighbour
   c(v) (the annotated Multi-Aggregation);
2. nodes chosen by several neighbours accept exactly one (an Aggregation
   with MIN over chooser ids) and notify it directly — the surviving
   (choice, acceptance) pairs form node-disjoint paths and cycles;
3. every path/cycle node picks one of its ≤ 2 incident path edges at
   random and proposes directly; mutual proposals join the matching;
4. an Aggregate-and-Broadcast checks whether any unmatched node still has
   an unmatched neighbour.

O(log n) phases suffice w.h.p. (Corollary 3.5 of [31] + Chernoff).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ProtocolError
from ..ncc.graph_input import InputGraph, canonical_edge
from ..primitives.aggregation import AggregationProblem
from ..primitives.direct import send_direct
from ..primitives.functions import MAX, MIN, min_by_key
from ..registry import register_algorithm
from ..runtime import NCCRuntime
from .broadcast_trees import BroadcastTrees, build_broadcast_trees, neighborhood_multi_aggregate

_MIN_ANNOTATED = min_by_key("MIN_ANNOTATED")


@dataclass
class MatchingResult:
    """The computed maximal matching."""

    edges: set[tuple[int, int]]
    phases: int
    rounds: int


class MatchingAlgorithm:
    """Distributed maximal matching via Israeli–Itai over broadcast trees."""

    def __init__(
        self,
        rt: NCCRuntime,
        graph: InputGraph,
        *,
        broadcast_trees: BroadcastTrees | None = None,
    ):
        if graph.n != rt.n:
            raise ValueError("graph and runtime disagree on n")
        self.rt = rt
        self.graph = graph
        self._bt = broadcast_trees

    def run(self, max_phases: int | None = None) -> MatchingResult:
        rt, g = self.rt, self.graph
        n = g.n
        start_round = rt.net.round_index
        limit = max_phases if max_phases is not None else 8 * max(1, rt.log2n) + 16
        tag = rt.shared.fresh_tag("matching")

        with rt.net.phase("matching"):
            bt = self._bt if self._bt is not None else build_broadcast_trees(rt, g)
            self._bt = bt

            matched: set[int] = set()
            matching: set[tuple[int, int]] = set()
            phases = 0
            while True:
                if phases >= limit:
                    raise ProtocolError(
                        f"matching did not converge within {limit} phases"
                    )
                phases += 1
                unmatched = [u for u in range(n) if u not in matched]

                # ---- 1. uniform random unmatched neighbour via annotated
                # Multi-Aggregation (the leaf draws the annotation).  The
                # paper annotates with a real r ∈ [0,1]; 2·log n random bits
                # give the same uniform choice within the message budget
                # (annotation collisions fall back to smaller payload and
                # are O(d²/n²)-rare).
                def annotate(leaf_rng, group, member, payload):
                    return (leaf_rng.randrange(n * n), payload)

                received = neighborhood_multi_aggregate(
                    rt,
                    bt,
                    {u: u for u in unmatched},
                    _MIN_ANNOTATED,
                    annotate=annotate,
                    kind="matching:choice",
                )
                choice = {
                    v: received[v][1]
                    for v in unmatched
                    if v in received
                }

                # Termination: an unmatched node received a packet iff it
                # has an unmatched neighbour.
                anyone = rt.aggregate_and_broadcast(
                    {v: 1 for v in choice}, MAX, kind="matching:sync"
                )
                if not anyone:
                    break

                # ---- 2. acceptance: chosen nodes accept their smallest
                # chooser (one Aggregation), then notify the chooser.
                memberships = {v: {c: v for c in [choice[v]]} for v in choice}
                targets = {choice[v]: choice[v] for v in choice}
                outcome = rt.aggregation(
                    AggregationProblem(
                        memberships=memberships,
                        targets=targets,
                        fn=MIN,
                        ell2_bound=1,
                    ),
                    tag=(tag, "accept", phases),
                    kind="matching:accept",
                )
                accepted_of = dict(outcome.values)  # w -> accepted chooser

                inbox = send_direct(
                    rt.net,
                    [
                        (w, a, ("acc", w))
                        for w, a in accepted_of.items()
                        if a != w
                    ],
                    kind="matching:accept-notify",
                )
                accepted_by: dict[int, int] = {}  # chooser v -> its choice w
                for v, msgs in inbox.items():
                    for m in msgs:
                        accepted_by[v] = m.payload[1]

                # ---- 3. each path/cycle node picks one incident path edge;
                # mutual picks join the matching.
                partners: dict[int, list[int]] = {}
                for v, w in accepted_by.items():
                    partners.setdefault(v, []).append(w)
                for w, a in accepted_of.items():
                    partners.setdefault(w, []).append(a)
                picks: dict[int, int] = {}
                for v, cands in partners.items():
                    cands = sorted(set(cands))
                    rng = rt.shared.node_rng(v, (tag, "pick", phases))
                    picks[v] = cands[rng.randrange(len(cands))]
                inbox = send_direct(
                    rt.net,
                    [(v, w, ("pick", v)) for v, w in picks.items()],
                    kind="matching:pick",
                )
                for v, msgs in inbox.items():
                    for m in msgs:
                        w = m.payload[1]
                        if picks.get(v) == w and v not in matched and w not in matched:
                            matching.add(canonical_edge(v, w))
                            matched.add(v)
                            matched.add(w)

        return MatchingResult(
            edges=matching,
            phases=phases,
            rounds=rt.net.round_index - start_round,
        )


# ----------------------------------------------------------------------
# Registry entry (Table 1 row T1-MM)
# ----------------------------------------------------------------------
def _check(g: InputGraph, result: MatchingResult, params: dict) -> bool:
    from ..baselines.sequential import is_maximal_matching

    return is_maximal_matching(g, result.edges)


def _describe(
    g: InputGraph, result: MatchingResult, rt: NCCRuntime, params: dict
) -> dict:
    from ..registry import describe_workload

    row = describe_workload(g, a_known=params["a"])
    row.update(
        rounds=result.rounds, phases=result.phases, matching_size=len(result.edges)
    )
    return row


@register_algorithm(
    "matching",
    aliases=("MM", "maximal-matching"),
    summary="maximal matching (MIS reduction over broadcast trees)",
    bound="O((a + log n) log n)",
    table1_key="MM",
    default_scenario="forest-union",
    check=_check,
    describe=_describe,
)
def _run(rt: NCCRuntime, g: InputGraph) -> MatchingResult:
    return MatchingAlgorithm(rt, g).run()
