"""The Identification Algorithm (Section 4.1).

Learning nodes ``L`` and playing nodes ``P``: every playing node knows a
subset of its neighbours that are *potentially learning*; every learning
node must determine which of its neighbours are playing.

Mechanics (all numbers per Section 4.1):

* ``s`` shared hash functions ``h₁..h_s : arcs → [q]`` map every directed
  edge to up to ``s`` trials;
* playing node ``v`` joins, for every potentially-learning neighbour ``w``
  and every trial ``t`` the arc ``(w, v)`` participates in, the aggregation
  group ``(id(w), t)`` with input ``(id(w,v), 1)``; the aggregate XORs the
  identifiers and sums the counts;
* learning node ``u`` is the target of groups ``(id(u), t)`` for all
  ``t ∈ [q]`` and compares the received ``(X'(t), x'(t))`` against its local
  ``(X(t), x(t))`` over its candidate arcs: trials with
  ``x(t) = x'(t) + 1`` expose one *red* arc (a neighbour that is NOT
  playing) whose identifier is ``X(t) ⊕ X'(t)`` — repeated peeling
  (:class:`~repro.hashing.peeling.TrialTable`) recovers red edges until it
  stalls.

Lemma 4.2 bounds the stall probability; callers handle the ``unsuccessful``
remainder (Stage 2 of the orientation algorithm runs a second, finer pass).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..hashing.kwise import KWiseHash
from ..hashing.peeling import TrialTable, trials_of
from ..ncc.graph_input import InputGraph
from ..primitives.aggregation import AggregationProblem
from ..primitives.functions import xor_count
from ..registry import register_algorithm
from ..runtime import NCCRuntime


@dataclass
class IdentificationResult:
    """Per-learner outcome of one identification run."""

    #: learner -> red neighbours recovered (endpoints that are NOT playing)
    red_neighbors: dict[int, list[int]] = field(default_factory=dict)
    #: learners whose peeling stalled before recovering every red edge
    unsuccessful: set[int] = field(default_factory=set)
    rounds: int = 0


def identification_family(
    rt: NCCRuntime, s: int, q: int, *, tag: object
) -> Sequence[KWiseHash]:
    """Agree on the run's ``s`` hash functions of range ``q`` (one charged
    pipelined broadcast, Section 4.2's binary-tree distribution)."""
    return rt.shared.hash_family(tag, s, q)


def run_identification(
    rt: NCCRuntime,
    graph: InputGraph,
    learners: Iterable[int],
    candidates: Mapping[int, Iterable[int]],
    player_potential: Mapping[int, Iterable[int]],
    family: Sequence[KWiseHash],
    *,
    kind: str = "identification",
) -> IdentificationResult:
    """One distributed identification pass.

    Parameters
    ----------
    learners:
        The learning set L.
    candidates:
        ``candidates[u]`` — the neighbours ``u`` considers possibly playing
        (u's local XOR side covers the arcs ``(u, v)`` for these v).
    player_potential:
        ``player_potential[v]`` — playing node v's potentially-learning
        neighbours (v contributes the arc ``(w, v)`` for each such w).
    family:
        The ``s`` shared hash functions with range ``q`` (from
        :func:`identification_family`).
    """
    q = family[0].range_size
    learners = list(learners)
    result = IdentificationResult()

    with rt.net.phase(kind):
        # ---- playing side: build the aggregation memberships.
        memberships: dict[int, dict[tuple[int, int], tuple[int, int]]] = {}
        targets: dict[tuple[int, int], int] = {}
        learner_set = set(learners)
        for v, potentials in player_potential.items():
            entry: dict[tuple[int, int], tuple[int, int]] = {}
            for w in potentials:
                arc = graph.arc_id(w, v)
                for t in trials_of(arc, family):
                    entry[(w, t)] = (arc, 1)
                    # Groups of non-learning "potential" targets still exist
                    # and are delivered (the paper's potential sets may
                    # include nodes that are no longer learning; they simply
                    # discard the aggregate).
                    targets[(w, t)] = w
            if entry:
                memberships[v] = entry
        problem = AggregationProblem(
            memberships=memberships,
            targets=targets,
            fn=xor_count,
            ell2_bound=q,
        )
        outcome = rt.aggregation(
            problem, tag=rt.shared.fresh_tag("ident"), kind=kind + ":agg"
        )

        # ---- learning side: fill trial tables and peel.
        for u in learners:
            table = TrialTable(q, family)
            for v in candidates.get(u, ()):
                table.add_local(graph.arc_id(u, v))
            got = outcome.by_target.get(u, {})
            for (w, t), (x_xor, x_cnt) in got.items():
                if w != u:
                    continue  # group addressed to someone else (impossible)
                table.set_remote(t, x_xor, x_cnt)
            peel = table.peel()
            reds: list[int] = []
            ok = peel.complete
            for arc in peel.identified:
                a, b = graph.arc_of_id(arc)
                if a != u or b not in set(graph.neighbors(u)):
                    # A mis-decoded arc: the trial table produced garbage,
                    # which Lemma 4.2 makes vanishingly unlikely; treat the
                    # learner as unsuccessful rather than propagate a wrong
                    # identification.
                    ok = False
                    continue
                reds.append(b)
            result.red_neighbors[u] = reds
            if not ok:
                result.unsuccessful.add(u)

    return result


# ----------------------------------------------------------------------
# Registry entry
# ----------------------------------------------------------------------
def _demo_playing(g: InputGraph) -> set[int]:
    """The canonical demo cast: every third node plays."""
    return {u for u in range(g.n) if u % 3 == 0}


def _demo_run(rt: NCCRuntime, g: InputGraph) -> IdentificationResult:
    """One identification pass on the canonical demo instance: learners are
    the non-playing nodes, candidates are all their neighbours."""
    playing = _demo_playing(g)
    fam = identification_family(rt, 7, 256, tag="parity-fam")
    learners = [u for u in range(g.n) if u not in playing]
    candidates = {u: list(g.neighbors(u)) for u in learners}
    potential = {v: [w for w in g.neighbors(v) if w not in playing] for v in playing}
    return run_identification(rt, g, learners, candidates, potential, fam)


def _check(g: InputGraph, result: IdentificationResult, params: dict) -> bool:
    playing = _demo_playing(g)
    for u in range(g.n):
        if u in playing:
            continue
        true_red = {v for v in g.neighbors(u) if v not in playing}
        recovered = set(result.red_neighbors.get(u, ()))
        if not recovered <= true_red:
            return False  # soundness: recovered arcs must be genuinely red
        if u not in result.unsuccessful and recovered != true_red:
            return False  # completeness for successful learners
    return True


def _describe(
    g: InputGraph, result: IdentificationResult, rt: NCCRuntime, params: dict
) -> dict:
    from ..registry import describe_workload

    row = describe_workload(g, a_known=params["a"])
    row.update(
        rounds=result.rounds,
        learners=g.n - len(_demo_playing(g)),
        unsuccessful=len(result.unsuccessful),
        recovered=sum(len(v) for v in result.red_neighbors.values()),
    )
    return row


def _parity(rt: NCCRuntime, g: InputGraph):
    res = _demo_run(rt, g)
    return (sorted(res.red_neighbors.items()), sorted(res.unsuccessful), res.rounds)


@register_algorithm(
    "identification",
    aliases=("ident",),
    summary="the Identification Algorithm on its demo cast (Section 4.1)",
    bound="O(1) aggregations per pass",
    default_scenario="forest-union",
    check=_check,
    describe=_describe,
    parity=_parity,
)
def _run(rt: NCCRuntime, g: InputGraph) -> IdentificationResult:
    return _demo_run(rt, g)
