"""O(a)-coloring in O((a + log n) log^{3/2} n) rounds (Section 5.4).

Barenboim–Elkin level processing + the Color-Random algorithm of Kothapalli
et al. [42]:

* the O(a)-orientation partitions nodes into levels L₁..L_T (the phase in
  which each node left); levels are colored highest-first, so when level ℓ
  is processed all its higher-level neighbours (a subset of each node's ≤ â
  out-neighbours) hold permanent colors;
* palettes start as [2(1+ε)â] and shrink as neighbours finalize, so at
  least (1+ε)â candidates always remain;
* in each repetition every uncolored node of the level picks a random
  palette color and multicasts it to its in-neighbours over trees for
  A_{id(u)} = N_in(u) (each node joined the groups of its ≤ â
  out-neighbours, Theorem 2.4); a node keeps its pick iff no out-neighbour
  of the same level picked the same color (the tail of every oriented
  same-level edge defers — one endpoint always detects a conflict);
* finalized nodes announce the color to their in-neighbours (Multicast)
  and out-neighbours (an Aggregation into groups (id(v), color)); everyone
  prunes their palettes;
* an Aggregate-and-Broadcast loops the level until it is fully colored —
  O(√log n) repetitions w.h.p. [42].
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ProtocolError
from ..ncc.graph_input import InputGraph
from ..primitives.aggregation import AggregationProblem
from ..primitives.functions import MAX, SUM
from ..registry import register_algorithm
from ..runtime import NCCRuntime
from .orientation import Orientation, OrientationAlgorithm


@dataclass
class ColoringResult:
    """The computed coloring."""

    colors: dict[int, int]
    palette_size: int
    a_hat: int
    phases: int
    repetitions: int
    rounds: int

    def colors_used(self) -> int:
        return len(set(self.colors.values()))


class ColoringAlgorithm:
    """Distributed O(a)-coloring over the orientation's level structure."""

    def __init__(
        self,
        rt: NCCRuntime,
        graph: InputGraph,
        *,
        orientation: Orientation | None = None,
    ):
        if graph.n != rt.n:
            raise ValueError("graph and runtime disagree on n")
        self.rt = rt
        self.graph = graph
        self._orientation = orientation

    def run(self, max_repetitions_per_level: int | None = None) -> ColoringResult:
        rt, g = self.rt, self.graph
        n = g.n
        start_round = rt.net.round_index
        tag = rt.shared.fresh_tag("coloring")
        eps = rt.config.coloring_epsilon

        with rt.net.phase("coloring"):
            ori = (
                self._orientation
                if self._orientation is not None
                else OrientationAlgorithm(rt, g).run()
            )
            self._orientation = ori

            # â = max over u of max(d_L(u), d_out(u)), via A&B.
            local_max = {
                u: max(len(ori.same_level_neighbors(u)), ori.outdegree(u))
                for u in range(n)
            }
            a_hat = rt.aggregate_and_broadcast(local_max, MAX, kind="coloring:ahat")
            a_hat = int(a_hat or 0)
            palette_size = max(1, math.ceil(2 * (1 + eps) * max(1, a_hat)))

            # Multicast trees for A_{id(u)} = N_in(u), source u: every node
            # joins the group of each of its out-neighbours.
            memberships = {
                v: list(ori.out_neighbors[v])
                for v in range(n)
                if ori.out_neighbors[v]
            }
            trees = rt.multicast_setup(
                memberships, tag=(tag, "trees"), kind="coloring:tree-setup"
            )

            palettes: dict[int, set[int]] = {
                u: set(range(palette_size)) for u in range(n)
            }
            colors: dict[int, int] = {}
            levels = sorted(set(ori.level), reverse=True)
            limit = (
                max_repetitions_per_level
                if max_repetitions_per_level is not None
                else 8 * max(1, math.isqrt(rt.log2n)) + 24
            )
            repetitions = 0
            for lvl in levels:
                uncolored = [u for u in range(n) if ori.level[u] == lvl]
                reps_here = 0
                while uncolored:
                    if reps_here >= limit:
                        raise ProtocolError(
                            f"level {lvl} not colored within {limit} repetitions"
                        )
                    reps_here += 1
                    repetitions += 1

                    # ---- tentative picks, multicast to in-neighbours.
                    pick: dict[int, int] = {}
                    for u in uncolored:
                        pal = sorted(palettes[u])
                        if not pal:
                            raise ProtocolError(f"palette of {u} ran dry")
                        rng = rt.shared.node_rng(u, (tag, lvl, reps_here))
                        pick[u] = pal[rng.randrange(len(pal))]
                    packets = {u: pick[u] for u in uncolored if u in trees.root}
                    heard: dict[int, dict] = {}
                    if packets:
                        out = rt.multicast(
                            trees,
                            packets,
                            {u: u for u in packets},
                            ell_bound=max(1, ori.max_outdegree),
                            tag=(tag, "tentative", lvl, reps_here),
                            kind="coloring:tentative",
                        )
                        heard = out.received

                    # u keeps its pick iff it did not hear its own color
                    # from a same-level out-neighbour.
                    uncolored_set = set(uncolored)
                    finalized: list[int] = []
                    for u in uncolored:
                        conflict = False
                        for v, cv in heard.get(u, {}).items():
                            if (
                                v in uncolored_set
                                and v in set(ori.out_neighbors[u])
                                and cv == pick[u]
                            ):
                                conflict = True
                                break
                        if not conflict:
                            finalized.append(u)

                    # ---- announce permanents: multicast to in-neighbours …
                    final_packets = {
                        u: ("F", pick[u]) for u in finalized if u in trees.root
                    }
                    final_heard: dict[int, dict] = {}
                    if final_packets:
                        out = rt.multicast(
                            trees,
                            final_packets,
                            {u: u for u in final_packets},
                            ell_bound=max(1, ori.max_outdegree),
                            tag=(tag, "final", lvl, reps_here),
                            kind="coloring:final",
                        )
                        final_heard = out.received

                    # … and aggregate to out-neighbours: u joins groups
                    # (id(v), c_u) for v ∈ N_out(u).
                    memberships2: dict[int, dict[tuple[int, int], int]] = {}
                    targets2: dict[tuple[int, int], int] = {}
                    for u in finalized:
                        entry = {}
                        for v in ori.out_neighbors[u]:
                            entry[(v, pick[u])] = 1
                            targets2[(v, pick[u])] = v
                        if entry:
                            memberships2[u] = entry
                    taken_at: dict[int, set[int]] = {}
                    if memberships2:
                        outcome = rt.aggregation(
                            AggregationProblem(
                                memberships=memberships2,
                                targets=targets2,
                                fn=SUM,
                                ell2_bound=palette_size,
                            ),
                            tag=(tag, "announce", lvl, reps_here),
                            kind="coloring:announce",
                        )
                        for (v, c), _cnt in outcome.values.items():
                            taken_at.setdefault(v, set()).add(c)

                    # ---- palette pruning from both announcement channels.
                    for u in finalized:
                        colors[u] = pick[u]
                    for w, got in final_heard.items():
                        for v, payload in got.items():
                            if payload and payload[0] == "F":
                                palettes[w].discard(payload[1])
                    for v, taken in taken_at.items():
                        palettes[v] -= taken

                    uncolored = [u for u in uncolored if u not in colors]

                    # ---- synchronize: is this level done?
                    rt.aggregate_and_broadcast(
                        {u: 1 for u in uncolored}, MAX, kind="coloring:sync"
                    )

        return ColoringResult(
            colors=colors,
            palette_size=palette_size,
            a_hat=a_hat,
            phases=len(levels),
            repetitions=repetitions,
            rounds=rt.net.round_index - start_round,
        )


# ----------------------------------------------------------------------
# Registry entry (Table 1 row T1-COL)
# ----------------------------------------------------------------------
def _check(g: InputGraph, result: ColoringResult, params: dict) -> bool:
    from ..baselines.sequential import is_proper_coloring

    return (
        is_proper_coloring(g, result.colors)
        and result.colors_used() <= result.palette_size
    )


def _describe(
    g: InputGraph, result: ColoringResult, rt: NCCRuntime, params: dict
) -> dict:
    from ..registry import describe_workload

    row = describe_workload(g, a_known=params["a"])
    row.update(
        rounds=result.rounds,
        repetitions=result.repetitions,
        colors_used=result.colors_used(),
        palette=result.palette_size,
    )
    return row


@register_algorithm(
    "coloring",
    aliases=("COL", "col", "o(a)-coloring"),
    summary="O(a)-coloring over the orientation's level structure",
    bound="O((a + log n) log^{3/2} n)",
    table1_key="COL",
    default_scenario="forest-union",
    check=_check,
    describe=_describe,
)
def _run(rt: NCCRuntime, g: InputGraph) -> ColoringResult:
    return ColoringAlgorithm(rt, g).run()
