"""Maximal Independent Set in O((a + log n) log n) rounds (Section 5.2).

The algorithm of Métivier, Robson, Saheb-Djahromi and Zemmari [48] on top
of Corollary 1: every active node draws a random value and multicasts it to
its neighbourhood with MIN-aggregation; a node whose own value undercuts
everything it received joins the MIS; a second Multi-Aggregation lets MIS
entrants knock out their neighbours; an Aggregate-and-Broadcast decides
whether anyone is still active.  O(log n) phases w.h.p. [48].

Random values are integers in [0, n³) with the node id as tie-breaker —
equivalent to the paper's reals r(u) ∈ [0,1] but exactly representable in
O(log n) bits.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ProtocolError
from ..ncc.graph_input import InputGraph
from ..primitives.functions import MAX, min_by_key
from ..registry import register_algorithm
from ..runtime import NCCRuntime
from .broadcast_trees import BroadcastTrees, build_broadcast_trees, neighborhood_multi_aggregate

_MIN_PAIR = min_by_key("MIN_RANK")


@dataclass
class MISResult:
    """The computed maximal independent set."""

    members: set[int]
    phases: int
    rounds: int


class MISAlgorithm:
    """Distributed MIS via Métivier et al. over broadcast trees."""

    def __init__(
        self,
        rt: NCCRuntime,
        graph: InputGraph,
        *,
        broadcast_trees: BroadcastTrees | None = None,
    ):
        if graph.n != rt.n:
            raise ValueError("graph and runtime disagree on n")
        self.rt = rt
        self.graph = graph
        self._bt = broadcast_trees

    def run(self, max_phases: int | None = None) -> MISResult:
        rt, g = self.rt, self.graph
        n = g.n
        start_round = rt.net.round_index
        limit = max_phases if max_phases is not None else 8 * max(1, rt.log2n) + 16
        tag = rt.shared.fresh_tag("mis")

        with rt.net.phase("mis"):
            bt = self._bt if self._bt is not None else build_broadcast_trees(rt, g)
            self._bt = bt

            in_mis: set[int] = set()
            active = set(range(n))
            phases = 0
            while active:
                if phases >= limit:
                    raise ProtocolError(f"MIS did not converge within {limit} phases")
                phases += 1

                # 1. draw + multicast random ranks; MIN over active senders.
                ranks = {
                    u: (rt.shared.node_rng(u, (tag, phases)).randrange(n**3), u)
                    for u in active
                }
                received = neighborhood_multi_aggregate(
                    rt, bt, ranks, _MIN_PAIR, kind="mis:ranks"
                )
                joined = set()
                for u in active:
                    best_nb = received.get(u)
                    if best_nb is None or ranks[u] < best_nb:
                        joined.add(u)
                in_mis |= joined

                # 2. MIS entrants knock out their neighbourhoods.
                knocked = neighborhood_multi_aggregate(
                    rt, bt, {u: 1 for u in joined}, MAX, kind="mis:knockout"
                )
                active -= joined
                active -= {v for v in knocked if v in active}

                # 3. global termination check.
                anyone = rt.aggregate_and_broadcast(
                    {u: 1 for u in active}, MAX, kind="mis:sync"
                )
                if not anyone:
                    break

        return MISResult(
            members=in_mis,
            phases=phases,
            rounds=rt.net.round_index - start_round,
        )


# ----------------------------------------------------------------------
# Registry entry (Table 1 row T1-MIS)
# ----------------------------------------------------------------------
def _check(g: InputGraph, result: MISResult, params: dict) -> bool:
    from ..baselines.sequential import is_maximal_independent_set

    return is_maximal_independent_set(g, result.members)


def _describe(g: InputGraph, result: MISResult, rt: NCCRuntime, params: dict) -> dict:
    from ..registry import describe_workload

    row = describe_workload(g, a_known=params["a"])
    row.update(rounds=result.rounds, phases=result.phases, mis_size=len(result.members))
    return row


@register_algorithm(
    "mis",
    aliases=("MIS", "maximal-independent-set"),
    summary="maximal independent set (Luby over broadcast trees)",
    bound="O((a + log n) log n)",
    table1_key="MIS",
    default_scenario="forest-union",
    check=_check,
    describe=_describe,
)
def _run(rt: NCCRuntime, g: InputGraph) -> MISResult:
    return MISAlgorithm(rt, g).run()
