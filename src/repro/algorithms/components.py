"""Connected components / spanning forest in the NCC.

Not a separate result in the paper, but the natural first consequence of
the Section 3 machinery (the paper's MST "can be obtained simply by
converting" to connectivity, cf. the k-machine discussion of [51]): run
Boruvka with Heads/Tails clustering where FindMin searches the *unweighted*
key space — any outgoing edge works, so the weight field of the search key
collapses and each phase costs O(log n) fewer sketch iterations than MST.

Outputs a component label per node (the minimum identifier in its
component, established with one extra Aggregate-and-Broadcast per
component tree at the end) and a spanning forest known edge-wise to inside
endpoints, exactly like the MST.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ProtocolError
from ..ncc.graph_input import InputGraph, canonical_edge
from ..primitives.direct import send_direct
from ..primitives.functions import MAX, MIN
from ..registry import register_algorithm
from ..runtime import NCCRuntime
from .findmin import EdgeSketcher, find_lightest_edges
from .mst import HEADS, TAILS


@dataclass
class ComponentsResult:
    """Connected components and a spanning forest."""

    #: label[u] — the smallest node id in u's component.
    labels: list[int]
    #: spanning forest edges (canonical orientation).
    forest: set[tuple[int, int]]
    phases: int
    rounds: int
    component_count: int = field(init=False)

    def __post_init__(self) -> None:
        self.component_count = len(set(self.labels))

    def members(self, label: int) -> list[int]:
        return [u for u, l in enumerate(self.labels) if l == label]


class ConnectedComponentsAlgorithm:
    """Boruvka-style component labeling over the FindMin machinery."""

    def __init__(self, rt: NCCRuntime, graph: InputGraph):
        if graph.n != rt.n:
            raise ValueError("graph and runtime disagree on n")
        self.rt = rt
        self.graph = graph

    def run(self, max_phases: int | None = None) -> ComponentsResult:
        rt, g = self.rt, self.graph
        n = g.n
        start_round = rt.net.round_index
        tag = rt.shared.fresh_tag("components")
        forest: set[tuple[int, int]] = set()
        phases = 0
        limit = max_phases if max_phases is not None else 4 * max(1, rt.log2n) + 16

        with rt.net.phase("components"):
            # Unweighted search keys: identical machinery, the weight field
            # degenerates to the constant 1.
            trials = 4 * rt.log2n
            hashes = rt.shared.hash_family((tag, "sketch"), trials, 2)
            sketcher = EdgeSketcher(g, hashes)

            leader_of = list(range(n))
            comp_trees = self._build_trees(leader_of)
            active = set(range(n))
            finished: set[int] = set()

            while active:
                if phases >= limit:
                    raise ProtocolError(
                        f"components did not converge within {limit} phases"
                    )
                phases += 1

                coins = {
                    c: rt.shared.node_rng(c, (tag, "coin", phases)).randrange(2)
                    for c in active
                }
                packets = {c: coins[c] for c in active if c in comp_trees.root}
                if packets:
                    rt.multicast(
                        comp_trees,
                        packets,
                        {c: c for c in packets},
                        ell_bound=1,
                        tag=rt.shared.fresh_tag("cc-coin"),
                        kind="components:coin",
                    )

                outcome = find_lightest_edges(
                    rt, g, leader_of, comp_trees, sketcher, active,
                    kind="components:findany",
                )
                outgoing = outcome.lightest
                finished |= active - set(outgoing)
                active -= active - set(outgoing)
                if not rt.aggregate_and_broadcast(
                    {c: 1 for c in outgoing}, MAX, kind="components:sync"
                ):
                    break

                packets = {
                    c: (a, b) for c, (_w, a, b) in outgoing.items() if c in comp_trees.root
                }
                if packets:
                    rt.multicast(
                        comp_trees,
                        packets,
                        {c: c for c in packets},
                        ell_bound=1,
                        tag=rt.shared.fresh_tag("cc-edge"),
                        kind="components:edge",
                    )

                probe_of = {}
                for c, (_w, a, b) in outgoing.items():
                    u, v = (a, b) if leader_of[a] == c else (b, a)
                    probe_of[c] = (u, v)
                nb_trees = rt.multicast_setup(
                    {u: [("nb", v)] for u, v in probe_of.values()},
                    tag=rt.shared.fresh_tag("cc-nb"),
                    kind="components:neighbor-setup",
                )
                nb_packets = {
                    grp: (coins[leader_of[grp[1]]], leader_of[grp[1]])
                    for grp in nb_trees.root
                }
                nb_out = rt.multicast(
                    nb_trees,
                    nb_packets,
                    {grp: grp[1] for grp in nb_packets},
                    ell_bound=1,
                    tag=rt.shared.fresh_tag("cc-nbmc"),
                    kind="components:neighbor-coin",
                )

                reports = []
                for c, (u, v) in probe_of.items():
                    if coins[c] != TAILS:
                        continue
                    got = nb_out.at(u).get(("nb", v))
                    if got is None:
                        raise ProtocolError(f"probe {u} missed coin of {v}")
                    v_coin, v_leader = got
                    if v_coin == HEADS:
                        forest.add(canonical_edge(u, v))
                        reports.append((u, c, v_leader))

                new_leader = {}
                inbox = send_direct(
                    rt.net,
                    [(u, c, ("NL", nl)) for u, c, nl in reports if u != c],
                    kind="components:report",
                )
                for c, msgs in inbox.items():
                    for m in msgs:
                        new_leader[c] = m.payload[1]
                for u, c, nl in reports:
                    if u == c:
                        new_leader[c] = nl

                packets = {c: nl for c, nl in new_leader.items() if c in comp_trees.root}
                if packets:
                    rt.multicast(
                        comp_trees,
                        packets,
                        {c: c for c in packets},
                        ell_bound=1,
                        tag=rt.shared.fresh_tag("cc-newleader"),
                        kind="components:new-leader",
                    )
                for u in range(n):
                    if leader_of[u] in new_leader:
                        leader_of[u] = new_leader[leader_of[u]]
                active = {leader_of[u] for u in range(n)} - finished
                comp_trees = self._build_trees(leader_of)

            # Final labeling: each component aggregates its minimum id to
            # the leader and multicasts it back (one Aggregation + one
            # Multicast over the final trees).
            from ..primitives.aggregation import AggregationProblem

            problem = AggregationProblem(
                memberships={u: {leader_of[u]: u} for u in range(n)},
                targets={c: c for c in set(leader_of)},
                fn=MIN,
                ell2_bound=1,
            )
            mins = rt.aggregation(
                problem, tag=rt.shared.fresh_tag("cc-minid"), kind="components:label"
            )
            packets = {
                c: mins.values[c] for c in set(leader_of) if c in comp_trees.root
            }
            label_out = rt.multicast(
                comp_trees,
                packets,
                {c: c for c in packets},
                ell_bound=1,
                tag=rt.shared.fresh_tag("cc-label"),
                kind="components:label",
            ) if packets else None
            labels = [0] * n
            for u in range(n):
                c = leader_of[u]
                if u == c:
                    labels[u] = mins.values[c]
                else:
                    assert label_out is not None
                    labels[u] = label_out.at(u)[c]

        return ComponentsResult(
            labels=labels,
            forest=forest,
            phases=phases,
            rounds=rt.net.round_index - start_round,
        )

    def _build_trees(self, leader_of: list[int]):
        rt = self.rt
        memberships = {u: [leader_of[u]] for u in range(rt.n) if leader_of[u] != u}
        return rt.multicast_setup(
            memberships,
            tag=rt.shared.fresh_tag("cc-trees"),
            kind="components:tree-rebuild",
        )


# ----------------------------------------------------------------------
# Registry entry
# ----------------------------------------------------------------------
def _union_find_labels(n: int, edges) -> list[int]:
    """Min-id component label per node under the given edge set."""
    labels = list(range(n))

    def find(u: int) -> int:
        while labels[u] != u:
            labels[u] = labels[labels[u]]
            u = labels[u]
        return u

    for u, v in edges:
        ru, rv = find(u), find(v)
        if ru != rv:
            labels[max(ru, rv)] = min(ru, rv)
    return [find(u) for u in range(n)]


def _check(g: InputGraph, result: ComponentsResult, params: dict) -> bool:
    expected = _union_find_labels(g.n, g.edges())
    if result.labels != expected:
        return False
    # The forest must be genuine graph edges forming the same partition with
    # n - c edges (which forces acyclicity).
    if len(result.forest) != g.n - result.component_count:
        return False
    if not all(g.has_edge(u, v) for u, v in result.forest):
        return False
    return _union_find_labels(g.n, result.forest) == expected


def _describe(
    g: InputGraph, result: ComponentsResult, rt: NCCRuntime, params: dict
) -> dict:
    from ..registry import describe_workload

    row = describe_workload(g, a_known=params["a"])
    row.update(
        rounds=result.rounds,
        phases=result.phases,
        components=result.component_count,
    )
    return row


@register_algorithm(
    "components",
    aliases=("CC", "connected-components"),
    summary="connected components / spanning forest (unweighted Boruvka)",
    bound="O(log^3 n)",
    default_scenario="forest-union",
    check=_check,
    describe=_describe,
)
def _run(rt: NCCRuntime, g: InputGraph) -> ComponentsResult:
    return ConnectedComponentsAlgorithm(rt, g).run()
