"""Exception hierarchy for the NCC reproduction library.

All library errors derive from :class:`ReproError`, so callers can catch a
single base class.  The hierarchy distinguishes *model* violations (a node
tried to exceed its communication capacity) from *protocol* failures (a
randomized routine exhausted its retry budget) and plain *usage* errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """An :class:`~repro.config.NCCConfig` parameter is invalid."""


class CapacityError(ReproError):
    """A node exceeded its per-round send or receive capacity.

    Raised only when the network runs in ``strict`` enforcement mode; in the
    default ``count`` mode the violation is recorded in the statistics ledger
    and the message is still delivered.
    """

    def __init__(self, message: str, *, node: int, round_index: int, count: int, capacity: int):
        super().__init__(message)
        self.node = node
        self.round_index = round_index
        self.count = count
        self.capacity = capacity


class MessageSizeError(ReproError):
    """A message payload exceeded the O(log n)-bit budget of the model."""

    def __init__(self, message: str, *, bits: int, budget: int):
        super().__init__(message)
        self.bits = bits
        self.budget = budget


class ProtocolError(ReproError):
    """A distributed protocol reached an inconsistent or impossible state.

    This signals a bug in the protocol implementation (or a failure of a
    with-high-probability guarantee at the configured constants), not a user
    error.
    """


class RetryBudgetExceeded(ProtocolError):
    """A randomized routine failed more often than its retry budget allows."""


class SimulationLimitError(ReproError):
    """A simulation safety limit (e.g. maximum rounds) was exceeded."""


class InputGraphError(ReproError):
    """The input graph is malformed (bad node ids, self-loops, ...)."""
