"""repro.api — the unified experiment API.

Three layers, one import::

    from repro.api import RunSpec, Session

    session = Session()
    report = session.run(RunSpec("mst", n=64, seed=3))
    print(report.rounds, report.correct)

    # A sweep: every (algorithm, n, seed) combination, all cores, JSONL out.
    specs = sweep_grid(["mst", "mis"], [64, 128], seeds=range(5))
    reports = session.run_many(specs, jobs=8, out="results.jsonl")

* **Registry** (:mod:`repro.registry`) — every algorithm self-registers an
  :class:`~repro.registry.AlgorithmSpec` (workload builder, runner,
  sequential oracle, row descriptors); re-exported here for convenience.
* **Scenarios** (:mod:`repro.scenarios`) — named topology×weights workload
  families with declared, property-tested guarantees; select one per run
  via ``RunSpec(..., scenario="pa-heavy-tail")``, sweep them with
  ``sweep_grid(..., scenarios=[...])``, or span the whole
  algorithm×scenario grid with :func:`matrix_grid` (incompatible cells —
  an algorithm requirement the scenario cannot provide — are skipped).
* **Schema** (:mod:`repro.api.schema`) — frozen :class:`RunSpec` in,
  JSON-serializable :class:`RunReport` out, canonical JSONL persistence,
  content-addressed spec hashing.
* **Session** (:mod:`repro.api.session`) — serial or multiprocessing
  execution with per-``n`` butterfly/workload caching; JSONL output is
  byte-identical for any ``jobs`` value.
* **Sweep service** — the persistent worker pool with shared-memory
  workload handoff (:mod:`repro.api.pool`), resumable sweep manifests
  (:mod:`repro.api.manifest`), and the sharded append-only result store
  plus query layer (:mod:`repro.api.store`).  ``Session(pool=...)``
  selects the pool; ``run_many(store=..., manifest=...)`` makes a sweep
  durable and resumable.  See docs/OPERATIONS.md.

The CLI (``python -m repro run/table1/sweep/query``) is a thin wrapper
over this module.
"""

from ..registry import (
    AlgorithmSpec,
    UnknownAlgorithmError,
    algorithm_names,
    get_algorithm,
    iter_algorithms,
    register_algorithm,
    table1_specs,
)
from ..scenarios import (
    ScenarioCompatibilityError,
    ScenarioSpec,
    UnknownScenarioError,
    get_scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
)
from .manifest import Manifest, ManifestError
from .pool import PersistentPool, WorkerCrashError, shared_memory_available
from .schema import RunReport, RunSpec, dump_reports, load_reports
from .session import Session, matrix_grid, sweep_grid
from .store import ResultStore, StoreError

__all__ = [
    "AlgorithmSpec",
    "Manifest",
    "ManifestError",
    "PersistentPool",
    "ResultStore",
    "RunReport",
    "RunSpec",
    "ScenarioCompatibilityError",
    "ScenarioSpec",
    "Session",
    "StoreError",
    "UnknownAlgorithmError",
    "UnknownScenarioError",
    "WorkerCrashError",
    "algorithm_names",
    "dump_reports",
    "get_algorithm",
    "get_scenario",
    "iter_algorithms",
    "iter_scenarios",
    "load_reports",
    "matrix_grid",
    "register_algorithm",
    "register_scenario",
    "scenario_names",
    "shared_memory_available",
    "sweep_grid",
    "table1_specs",
]
