"""The persistent worker service behind parallel sweeps.

The fork-per-sweep pool (``pool="fork"``) re-forks a ``ProcessPoolExecutor``
on every ``run_many`` call and every worker rebuilds its workload graphs
from the generators.  This module replaces it with a **persistent pool**
(``pool="persistent"``, the default when shared memory is available):

* workers are spawned **once per** :class:`~repro.api.session.Session` and
  stay alive across ``run_many`` calls, each holding a warm worker-local
  session (butterfly grids, workload caches, imported modules);
* the parent publishes each distinct workload graph **once** into a
  ``multiprocessing.shared_memory`` segment (canonical edge/weight int64
  columns — PR 6's typed-column work made these flat numeric arrays);
  workers attach by name and rebuild the graph through the trusted
  :meth:`InputGraph.from_canonical_arrays` fast path instead of receiving
  a pickled graph per job (`ButterflyGrid` topology is derived O(1) state
  — workers materialize it from ``n`` alone, nothing to ship);
* tasks travel over per-worker duplex pipes, so the parent always knows
  which spec each worker holds: when a worker **dies mid-run** (OOM kill,
  segfault, SIGKILL) its in-flight spec is requeued to a surviving worker,
  the incident is reported upward (the sweep manifest records it), and the
  sweep completes.  A spec that kills :data:`MAX_REQUEUES` + 1 workers in
  a row is declared poisonous and aborts the sweep with
  :class:`WorkerCrashError` instead of grinding the pool down.

Determinism is unchanged: a run is a pure function of its canonicalized
spec, workers return report dicts, and the session reorders completions
into spec order before anything observable happens — so jobs=1 and jobs=N
emit byte-identical JSONL through either pool (pinned in
``tests/test_session.py`` / ``tests/test_pool.py``).

Shared-memory lifecycle: segments are created by the parent, unlinked by
the parent when the pool closes (``Session.close()`` / context-manager
exit / a ``weakref.finalize`` backstop at interpreter shutdown).  Workers
attach read-only, copy, and detach immediately, so a worker dying at any
point never strands a mapping; if the *parent* itself is SIGKILLed, the
shared ``multiprocessing.resource_tracker`` process unlinks the segments
instead.  See docs/OPERATIONS.md for the abnormal-exit story.
"""

from __future__ import annotations

import os
import signal
import weakref
from collections import deque
from typing import Any, Callable, Iterator, Sequence

from ..errors import ConfigurationError
from ..ncc.graph_input import InputGraph
from ..telemetry import tracer as _tracer
from ..telemetry.metrics import METRICS, MetricRegistry
from ..telemetry.tracer import Tracer, install_tracer, uninstall_tracer
from .schema import RunSpec

_POOL_CRASHES = METRICS.counter("pool.crashes")
_POOL_PUBLISHES = METRICS.counter("pool.publishes")

#: times a single spec may be requeued after killing a worker before the
#: sweep aborts (a deterministic worker-killer would otherwise take the
#: whole pool down one worker at a time).
MAX_REQUEUES = 2

#: the selectable pool kinds (`Session(pool=...)`); "auto" resolves to
#: "persistent" when shared memory is available, else "fork".
POOL_KINDS = ("auto", "persistent", "fork")

#: test-only chaos hook (see _maybe_chaos_kill); documented in
#: docs/OPERATIONS.md so operators finding it set know what it is.
CHAOS_ENV = "REPRO_POOL_CHAOS"


class WorkerCrashError(RuntimeError):
    """A sweep could not complete because workers died unrecoverably:
    either every worker is gone, or one spec exhausted its requeue budget
    (it crashes whatever worker runs it)."""


# ----------------------------------------------------------------------
# Shared-memory availability + graph transport
# ----------------------------------------------------------------------
_SHM_AVAILABLE: bool | None = None


def shared_memory_available() -> bool:
    """True when ``multiprocessing.shared_memory`` works on this host
    (importable and a segment can actually be created — containers with a
    masked /dev/shm fail the latter).  Probed once per process."""
    global _SHM_AVAILABLE
    if _SHM_AVAILABLE is None:
        try:
            from multiprocessing import shared_memory

            seg = shared_memory.SharedMemory(create=True, size=8)
            seg.close()
            seg.unlink()
            _SHM_AVAILABLE = True
        except Exception:
            _SHM_AVAILABLE = False
    return _SHM_AVAILABLE


def pack_graph(g: InputGraph) -> tuple[dict[str, Any], "Any"]:
    """Flatten a validated graph into ``(meta, int64 column)`` for shared
    memory: ``2m`` edge endpoints (canonical sorted order) followed by
    ``m`` weights when the graph is weighted."""
    import numpy as np

    edges = g.edges()
    cols = [np.asarray(edges, dtype=np.int64).reshape(-1)]
    if g.is_weighted():
        cols.append(
            np.asarray([g.weight(u, v) for u, v in edges], dtype=np.int64)
        )
    flat = np.concatenate(cols) if cols[0].size or len(cols) > 1 else cols[0]
    meta = {"n": g.n, "m": g.m, "weighted": g.is_weighted(), "size": int(flat.size)}
    return meta, flat


def unpack_graph(meta: dict[str, Any], flat: "Any") -> InputGraph:
    """Inverse of :func:`pack_graph` via the trusted
    :meth:`InputGraph.from_canonical_arrays` fast path."""
    m = int(meta["m"])
    edges = flat[: 2 * m].reshape(m, 2)
    weights = flat[2 * m : 3 * m] if meta["weighted"] else None
    return InputGraph.from_canonical_arrays(int(meta["n"]), edges, weights)


class _Segment:
    """One published workload graph living in a shared-memory segment."""

    def __init__(self, graph: InputGraph):
        import numpy as np
        from multiprocessing import shared_memory

        meta, flat = pack_graph(graph)
        self.shm = shared_memory.SharedMemory(
            create=True, size=max(8, flat.nbytes)
        )
        np.frombuffer(self.shm.buf, dtype=np.int64, count=flat.size)[:] = flat
        self.ref = {**meta, "shm": self.shm.name}

    def unlink(self) -> None:
        try:
            self.shm.close()
            self.shm.unlink()
        except Exception:  # pragma: no cover - already gone
            pass


def _attach_graph(ref: dict[str, Any]) -> InputGraph:
    """Worker side: attach the named segment, copy the columns out,
    detach, and rebuild the graph.

    CPython (< 3.13) registers *attachments* with the resource tracker
    too, but our workers are ``multiprocessing`` children and therefore
    share the parent's tracker (the tracker fd travels through fork and
    spawn preparation data alike), where registration is a set — the
    duplicate is a no-op and the parent's unlink retires it.  Do NOT
    "fix" this with ``resource_tracker.unregister`` here: on a shared
    tracker that would remove the *parent's* registration and make the
    parent's own unlink crash the tracker."""
    import numpy as np
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=ref["shm"])
    try:
        flat = np.frombuffer(
            shm.buf, dtype=np.int64, count=int(ref["size"])
        ).copy()
    finally:
        shm.close()
    return unpack_graph(ref, flat)


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _maybe_chaos_kill(spec: RunSpec) -> None:
    """Crash-injection hook for the robustness tests: when
    ``REPRO_POOL_CHAOS=<hash-prefix>:<flagfile>`` is set and this spec's
    content hash matches the prefix, SIGKILL this worker — exactly once
    across the pool (the flag file is claimed with O_EXCL), so the requeued
    spec then completes on a surviving worker.  An empty flagfile path
    (``<hash-prefix>:``) kills *every* worker that picks the spec up,
    simulating a poisonous spec.  Never set outside tests."""
    raw = os.environ.get(CHAOS_ENV)
    if not raw:
        return
    prefix, _, flag = raw.partition(":")
    if not prefix or not spec.content_hash().startswith(prefix):
        return
    if flag:
        try:
            os.close(os.open(flag, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        except FileExistsError:
            return  # the one crash already happened; run normally
    os.kill(os.getpid(), signal.SIGKILL)


def _worker_main(conn, base_config, cache: bool) -> None:
    """Long-lived worker loop: recv ``(idx, spec_dict, wl_key, wl_ref,
    trace)`` tasks, run them on a warm worker-local Session, send back
    ``(idx, report_dict)``.  ``None`` (or a closed pipe) shuts down.

    When the task's ``trace`` flag is set the run executes under a fresh
    per-row tracer and its payload ships back piggybacked on the report
    dict under ``"__telemetry__"`` — a key :meth:`RunReport.from_dict`
    ignores by schema design and the session strips before the report is
    built, so the canonical surface never sees it."""
    from .session import Session

    session = Session(base_config=base_config, cache=cache)
    attached: dict[str, InputGraph] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None:
            break
        gen, idx, spec_data, wl_key, wl_ref, trace = msg
        spec = RunSpec.from_dict(spec_data)
        _maybe_chaos_kill(spec)
        if wl_key is not None and wl_ref is not None:
            g = attached.get(wl_ref["shm"])
            if g is None:
                g = _attach_graph(wl_ref)
                if cache:
                    attached[wl_ref["shm"]] = g
            session._workload_cache[wl_key] = g
        payload = None
        if trace:
            counters_before = METRICS.snapshot()
            tracer = Tracer(label=f"row-{idx}", row=idx)
            previous = install_tracer(tracer)
            try:
                report = session.run(spec)
            finally:
                uninstall_tracer(previous)
            payload = tracer.to_payload()
            payload["counters"] = MetricRegistry.delta(
                counters_before, payload["counters"]
            )
        else:
            report = session.run(spec)
        if not cache:
            session._workload_cache.clear()
        data = report.to_dict(timing=True)
        if payload is not None:
            data["__telemetry__"] = payload
        conn.send((gen, idx, data))
    conn.close()


class _Worker:
    __slots__ = ("proc", "conn")

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
class PersistentPool:
    """Long-lived worker processes with shared-memory workload handoff.

    Spawned once (``jobs`` workers, fork start method where available so
    workers inherit the warm interpreter) and reused for every subsequent
    dispatch until :meth:`close`.  See the module docstring for the
    architecture and crash semantics.
    """

    def __init__(self, jobs: int, base_config=None, cache: bool = True):
        import multiprocessing as mp

        if not shared_memory_available():
            raise ConfigurationError(
                "persistent pool needs multiprocessing.shared_memory; "
                "use Session(pool='fork') (or pool='auto') on this host"
            )
        if jobs < 1:
            raise ConfigurationError(f"pool needs jobs >= 1, got {jobs}")
        self.jobs = jobs
        method = "fork" if "fork" in mp.get_all_start_methods() else None
        ctx = mp.get_context(method)
        self._workers: dict[int, _Worker] = {}
        self._segments: dict[Any, _Segment] = {}
        self._generation = 0
        for wid in range(jobs):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, base_config, cache),
                daemon=True,
                name=f"repro-sweep-worker-{wid}",
            )
            proc.start()
            child_conn.close()
            self._workers[wid] = _Worker(proc, parent_conn)
        # Backstop: unlink segments and reap workers even if the owning
        # Session is dropped without close() (incl. interpreter exit).
        self._finalizer = weakref.finalize(
            self, PersistentPool._cleanup, self._workers, self._segments
        )

    # ------------------------------------------------------------------
    # Workload publication (parent side)
    # ------------------------------------------------------------------
    def publish_workload(
        self, key: Any, build: Callable[[], InputGraph]
    ) -> dict[str, Any]:
        """Publish the workload graph under ``key`` (the session
        workload-cache key), creating its shared-memory segment on first
        use — ``build`` is only called then; returns the attach reference
        workers receive with their tasks."""
        seg = self._segments.get(key)
        if seg is None:
            seg = _Segment(build())
            self._segments[key] = seg
            _POOL_PUBLISHES.inc()
            tr = _tracer.CURRENT
            if tr is not None:
                tr.event(
                    "pool-publish",
                    key=str(key),
                    nbytes=seg.shm.size,
                    segments=len(self._segments),
                )
        return seg.ref

    def release_segments(self) -> None:
        """Unlink every published segment (close() does this too; callers
        running with caching disabled release after each sweep)."""
        for seg in self._segments.values():
            seg.unlink()
        self._segments.clear()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def run(
        self,
        items: Sequence[tuple[int, dict, Any, dict | None]],
        *,
        on_incident: Callable[[dict[str, Any]], None] | None = None,
        trace: bool = False,
    ) -> Iterator[tuple[int, dict]]:
        """Fan ``items`` (``(idx, spec_dict, wl_key, wl_ref)``) out over
        the workers; yield ``(idx, report_dict)`` in completion order.
        With ``trace`` each worker runs its row under a fresh tracer and
        ships the payload back under the report dict's ``"__telemetry__"``
        key (stripped by the session before the report is built).

        Worker deaths are survived: the dead worker's in-flight item is
        requeued (up to :data:`MAX_REQUEUES` times per item) and the
        incident is passed to ``on_incident``.  Raises
        :class:`WorkerCrashError` when no workers remain or an item
        exhausts its requeue budget.

        Each dispatch carries a generation tag: results a worker sends for
        an *abandoned* previous dispatch (the consumer stopped iterating
        mid-sweep) are recognised and dropped, so a reused pool can never
        serve a stale report.
        """
        from multiprocessing.connection import wait as conn_wait

        self._generation += 1
        gen = self._generation
        pending = deque(items)
        attempts: dict[int, int] = {}
        inflight: dict[int, tuple] = {}  # wid -> item
        idle = list(self._workers)
        while pending or inflight:
            while pending and idle:
                wid = idle.pop()
                item = pending.popleft()
                try:
                    self._workers[wid].conn.send((gen, *item, trace))
                except (BrokenPipeError, OSError):
                    # Death noticed at dispatch: requeue, drop the worker.
                    pending.appendleft(item)
                    self._requeue_or_raise(
                        item, wid, attempts, pending, on_incident, sent=False
                    )
                    continue
                tr = _tracer.CURRENT
                if tr is not None:
                    tr.event("pool-dispatch", row=item[0], worker=wid)
                inflight[wid] = item
            if not self._workers:
                raise WorkerCrashError(
                    "all persistent sweep workers died; cannot continue"
                )
            if not inflight:
                continue
            conns = {self._workers[w].conn: w for w in inflight}
            sentinels = {
                self._workers[w].proc.sentinel: w for w in self._workers
            }
            ready = conn_wait(list(conns) + list(sentinels))
            # Results first: a worker that answered and then exited must
            # still have its result consumed before the sentinel fires.
            for obj in ready:
                wid = conns.get(obj)
                if wid is None:
                    continue
                try:
                    msg_gen, idx, data = obj.recv()
                except (EOFError, OSError):
                    continue  # died mid-send; the sentinel path requeues
                if msg_gen != gen:
                    # Tail of an abandoned dispatch; the worker is still
                    # busy with (or about to start) its current-gen item.
                    continue
                inflight.pop(wid, None)
                idle.append(wid)
                yield idx, data
            for obj in ready:
                wid = sentinels.get(obj)
                if wid is None or wid not in self._workers:
                    continue
                item = inflight.pop(wid, None)
                if item is not None:
                    pending.appendleft(item)
                if wid in idle:
                    idle.remove(wid)
                self._requeue_or_raise(
                    item, wid, attempts, pending, on_incident, sent=True
                )

    def _requeue_or_raise(
        self, item, wid, attempts, pending, on_incident, *, sent: bool
    ) -> None:
        """Reap a dead worker; account the requeue of its in-flight item
        (already back on ``pending``) and abort on a poisonous spec."""
        worker = self._workers.pop(wid, None)
        exitcode = None
        if worker is not None:
            worker.proc.join()
            exitcode = worker.proc.exitcode
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
        idx = item[0] if item is not None else None
        requeued = item is not None
        over_budget = False
        if requeued and sent:
            # Only a death *while holding* the spec counts against its
            # requeue budget; a worker found dead at dispatch says nothing
            # about the spec itself.
            attempts[idx] = attempts.get(idx, 0) + 1
            over_budget = attempts[idx] > MAX_REQUEUES
        incident = {
            "kind": "worker-crash",
            "row": idx,
            "exitcode": exitcode,
            "requeued": requeued and not over_budget,
            "attempt": attempts.get(idx, 0) if requeued else 0,
            "workers_left": len(self._workers),
        }
        _POOL_CRASHES.inc()
        tr = _tracer.CURRENT
        if tr is not None:
            tr.event("worker-crash", **incident)
        if on_incident is not None:
            on_incident(incident)
        if over_budget:
            raise WorkerCrashError(
                f"sweep row {idx} crashed {attempts[idx]} workers in a row; "
                "aborting instead of exhausting the pool"
            )
        if not self._workers:
            raise WorkerCrashError(
                "all persistent sweep workers died; cannot continue"
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def alive_workers(self) -> int:
        return sum(1 for w in self._workers.values() if w.proc.is_alive())

    def close(self) -> None:
        """Shut workers down (politely, then terminate) and unlink every
        shared-memory segment.  Idempotent."""
        self._finalizer.detach()
        PersistentPool._cleanup(self._workers, self._segments)

    @staticmethod
    def _cleanup(workers: dict[int, _Worker], segments: dict[Any, _Segment]) -> None:
        for w in workers.values():
            try:
                w.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for w in workers.values():
            w.proc.join(timeout=5)
            if w.proc.is_alive():  # pragma: no cover - stuck worker
                w.proc.terminate()
                w.proc.join(timeout=5)
            try:
                w.conn.close()
            except OSError:  # pragma: no cover
                pass
        workers.clear()
        for seg in segments.values():
            seg.unlink()
        segments.clear()

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
