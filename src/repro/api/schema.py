"""The experiment schema: frozen :class:`RunSpec` in, :class:`RunReport` out.

A :class:`RunSpec` is a complete, serializable description of one scenario
— algorithm, size, workload parameters, seed, engine, enforcement — so a
sweep is literally a list of specs and nothing else.  A :class:`RunReport`
is the JSON-serializable outcome: the legacy Table 1 row (outputs +
workload descriptors), the measured rounds/messages/bits, the full
:class:`~repro.ncc.stats.NetworkStats` snapshot including the violation
ledger, the wall time, and the engine that actually ran.

Reports serialize to canonical JSONL (sorted keys, compact separators,
**no wall time**) via :meth:`RunReport.to_json_line`, so a sweep's output
file is byte-deterministic: the same spec list produces the same bytes
regardless of parallelism, host speed, or row ordering inside a worker.
Wall times stay on the in-memory report (`wall_time_s`) and in
``to_dict(timing=True)``; machine-dependent timings belong in
``BENCH_engine.json``, not in results files.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Iterator, Mapping

from ..config import Enforcement
from ..errors import ConfigurationError

ExtrasT = tuple[tuple[str, Any], ...]


def _canon_value(value: Any) -> Any:
    """Canonicalize an extras value so specs survive a JSON roundtrip
    unchanged and stay hashable: sequences become tuples (JSON reads
    tuples back as lists) and mappings become sorted pair-tuples."""
    if isinstance(value, Mapping):
        return tuple(sorted((str(k), _canon_value(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_canon_value(v) for v in value)
    return value


def _freeze_extras(extras: Any) -> ExtrasT:
    if isinstance(extras, Mapping):
        items = extras.items()
    else:
        items = tuple(extras or ())
    frozen = tuple(sorted((str(k), _canon_value(v)) for k, v in items))
    if len({k for k, _ in frozen}) != len(frozen):
        raise ConfigurationError(f"duplicate keys in extras: {frozen!r}")
    return frozen


@dataclass(frozen=True)
class RunSpec:
    """One fully-specified experiment scenario.

    Parameters
    ----------
    algorithm:
        Registry name or alias (``"mst"``, ``"MM"``, …); resolved through
        :func:`repro.registry.get_algorithm`.
    n:
        Requested problem size (the workload builder may round, e.g. the
        BFS grid family uses the nearest square).
    a:
        Arboricity parameter of the standard workload.
    seed:
        Master seed: drives the workload generator and the simulation's
        shared randomness.  Same spec ⇒ identical run.
    engine:
        Round engine name, or ``None`` for the session/process default.
    enforcement:
        ``"strict" | "count" | "drop"``, or ``None`` for the session
        default (the benchmark profile's COUNT).
    extras:
        Extra workload/runner options (e.g. ``{"family": "grid"}``),
        stored as a sorted tuple of pairs so specs stay hashable.
    scenario:
        Workload scenario name from :mod:`repro.scenarios` (topology
        family × optional weight regime), or ``None`` for the
        algorithm's default workload.  ``None`` keeps the canonical
        JSONL byte-identical to the pre-scenario schema: the key is
        only serialized when a scenario is set.
    shards:
        Worker count for the ``"sharded"`` engine, or ``None`` to leave
        it to the engine (auto from the core count).  Like ``scenario``,
        the key is only serialized when set, so shard-free results files
        stay byte-identical to the PR 8 schema.  The value never changes
        a run's output (sharded runs are byte-identical for every shard
        count) — it is part of the spec so a sweep row records how it
        was executed, not part of the workload identity.
    """

    algorithm: str
    n: int
    a: int = 2
    seed: int = 0
    engine: str | None = None
    enforcement: str | None = None
    extras: ExtrasT = field(default=())
    scenario: str | None = None
    shards: int | None = None

    def __post_init__(self) -> None:
        if not self.algorithm:
            raise ConfigurationError("RunSpec.algorithm must be non-empty")
        if self.scenario is not None and not str(self.scenario).strip():
            raise ConfigurationError("RunSpec.scenario must be non-empty when set")
        if self.n < 1:
            raise ConfigurationError(f"RunSpec.n must be >= 1, got {self.n}")
        if self.a < 1:
            raise ConfigurationError(f"RunSpec.a must be >= 1, got {self.a}")
        if self.shards is not None and (
            not isinstance(self.shards, int)
            or isinstance(self.shards, bool)
            or self.shards < 1
        ):
            raise ConfigurationError(
                f"RunSpec.shards must be an integer >= 1 when set, got {self.shards!r}"
            )
        object.__setattr__(self, "extras", _freeze_extras(self.extras))
        if self.enforcement is not None:
            # Normalize eagerly so bad specs fail at construction time.
            object.__setattr__(
                self, "enforcement", Enforcement(self.enforcement).value
            )

    # ------------------------------------------------------------------
    @property
    def options(self) -> dict[str, Any]:
        """The extras as a plain keyword dict."""
        return dict(self.extras)

    def with_(self, **changes: Any) -> "RunSpec":
        """A copy with ``changes`` applied (specs are frozen)."""
        return replace(self, **changes)

    def canonical_json(self) -> str:
        """The canonical JSON encoding of this spec: sorted keys, compact
        separators, scenario key only when set — the exact bytes hashed by
        :meth:`content_hash`.  Two specs have equal canonical JSON iff
        they describe the same run."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def content_hash(self) -> str:
        """Content-addressed identity of this spec: the SHA-256 hex digest
        of :meth:`canonical_json`.

        Manifests key completed sweep rows by this hash and the result
        store shards by it, so re-running a grid recognises rows it has
        already computed no matter where or when they ran.  The hash is
        stable across processes and Python versions (it hashes canonical
        JSON bytes, not :func:`hash`).  Hash a *canonicalized* spec
        (:meth:`Session.canonical <repro.api.Session.canonical>`) when the
        identity must be independent of aliases and session defaults.
        """
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "algorithm": self.algorithm,
            "n": self.n,
            "a": self.a,
            "seed": self.seed,
            "engine": self.engine,
            "enforcement": self.enforcement,
            "extras": dict(self.extras),
        }
        # Serialized only when set, so scenario-free results files stay
        # byte-identical to the pre-scenario schema (likewise shard-free
        # files and the pre-sharding schema).
        if self.scenario is not None:
            data["scenario"] = self.scenario
        if self.shards is not None:
            data["shards"] = self.shards
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        return cls(
            algorithm=data["algorithm"],
            n=data["n"],
            a=data.get("a", 2),
            seed=data.get("seed", 0),
            engine=data.get("engine"),
            enforcement=data.get("enforcement"),
            extras=data.get("extras") or (),
            scenario=data.get("scenario"),
            shards=data.get("shards"),
        )


@dataclass(frozen=True)
class RunReport:
    """The JSON-serializable outcome of one :class:`RunSpec` execution."""

    #: the spec that produced this report, canonicalized (algorithm name
    #: resolved, engine/enforcement made explicit) so it reruns verbatim.
    spec: RunSpec
    #: the legacy Table 1 row: workload descriptors + outputs + ``correct``.
    row: dict[str, Any]
    #: round engine that actually executed the run.
    engine: str
    correct: bool
    rounds: int
    messages: int
    bits: int
    #: full :meth:`NetworkStats.to_dict` snapshot (phases + violation log).
    stats: dict[str, Any]
    #: wall-clock seconds (in-memory / verbose export only — see module doc).
    wall_time_s: float = 0.0

    # ------------------------------------------------------------------
    @property
    def violations(self) -> list[dict[str, Any]]:
        """The violation ledger, in engine observation order."""
        return list(self.stats.get("violation_log", ()))

    def to_dict(self, *, timing: bool = True) -> dict[str, Any]:
        data: dict[str, Any] = {
            "spec": self.spec.to_dict(),
            "row": self.row,
            "engine": self.engine,
            "correct": self.correct,
            "rounds": self.rounds,
            "messages": self.messages,
            "bits": self.bits,
            "stats": self.stats,
        }
        if timing:
            data["wall_time_s"] = self.wall_time_s
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunReport":
        return cls(
            spec=RunSpec.from_dict(data["spec"]),
            row=dict(data["row"]),
            engine=data["engine"],
            correct=data["correct"],
            rounds=data["rounds"],
            messages=data["messages"],
            bits=data["bits"],
            stats=dict(data["stats"]),
            wall_time_s=data.get("wall_time_s", 0.0),
        )

    def to_json_line(self) -> str:
        """Canonical deterministic JSONL record (no timing, sorted keys)."""
        return json.dumps(
            self.to_dict(timing=False),
            sort_keys=True,
            separators=(",", ":"),
            default=_json_default,
        )

    @classmethod
    def from_json_line(cls, line: str) -> "RunReport":
        return cls.from_dict(json.loads(line))


def _json_default(obj: Any) -> Any:
    """Serialize the few non-JSON row values (sets of edges; tuples are
    handled natively by the encoder)."""
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    raise TypeError(f"not JSON-serializable: {type(obj).__name__}")


def dump_reports(reports: Iterable[RunReport], path: str) -> None:
    """Write reports as JSONL to ``path`` (``"-"`` = stdout)."""
    import sys

    lines = [r.to_json_line() for r in reports]
    if path == "-":
        for line in lines:
            sys.stdout.write(line + "\n")
    else:
        with open(path, "w", encoding="utf-8") as fh:
            for line in lines:
                fh.write(line + "\n")


def load_reports(path: str) -> Iterator[RunReport]:
    """Read reports back from a JSONL file."""
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield RunReport.from_json_line(line)
