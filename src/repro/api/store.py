"""The append-only sweep result store and its query layer.

A :class:`ResultStore` is a directory of sharded JSONL partitions::

    results_store/
      store.json        # {"version": 1, "shards": 4}
      shard-000.jsonl   # canonical RunReport lines (timing-free)
      shard-001.jsonl
      ...

Writes are **single-writer, append-only, in spec order**: the sweep
session emits each report to shard ``content_hash(spec) mod shards`` the
moment its row completes (flushed per line), and only ever in grid order.
Two consequences the tests pin:

* **Byte-determinism.**  Shard routing depends only on the spec and the
  in-shard order only on grid order, so the same grid produces the same
  shard bytes for any ``jobs`` value — and a run interrupted at row *k*
  and resumed (:mod:`repro.api.manifest`) appends exactly where a
  from-scratch run would have, leaving identical files.
* **Durability.**  A SIGKILL loses at most the line being written; every
  previously appended report survives and is skipped on resume.

The query layer (``python -m repro query``) reads a store directory *or*
a flat ``sweep --out`` JSONL file, filters on spec/report fields, and
aggregates (count/mean/min/max/sum, optionally grouped) — enough to
answer "which rows violated their bound" over a 10^4-run grid without
pandas.  See docs/OPERATIONS.md for recipes.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Iterable, Iterator, Sequence

from ..errors import ConfigurationError
from .schema import RunReport, RunSpec, load_reports

META_NAME = "store.json"
SHARD_FMT = "shard-{:03d}.jsonl"


class StoreError(ConfigurationError):
    """A result store is missing, malformed, or used inconsistently."""


class ResultStore:
    """A sharded, append-only store of canonical :class:`RunReport` lines.

    One writer (the sweep session) appends; any number of readers
    (``repro query``, :meth:`iter_reports`) consume.  Open existing stores
    with :meth:`open`, create new ones with :meth:`create`;
    :meth:`open_or_create` does the right thing for the sweep CLI.
    """

    def __init__(self, root: str, shards: int):
        if shards < 1:
            raise StoreError(f"store needs shards >= 1, got {shards}")
        self.root = root
        self.shards = shards
        self._handles: dict[int, Any] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, root: str, shards: int = 1) -> "ResultStore":
        """Create a fresh store directory (must not already contain one)."""
        if os.path.exists(os.path.join(root, META_NAME)):
            raise StoreError(
                f"result store already exists at {root!r}; open() it "
                "(resume) or pick a fresh directory"
            )
        os.makedirs(root, exist_ok=True)
        store = cls(root, shards)
        with open(os.path.join(root, META_NAME), "w", encoding="utf-8") as fh:
            json.dump({"version": 1, "shards": shards}, fh, sort_keys=True)
            fh.write("\n")
        return store

    @classmethod
    def open(cls, root: str) -> "ResultStore":
        """Open an existing store (shard count comes from its metadata)."""
        meta_path = os.path.join(root, META_NAME)
        try:
            with open(meta_path, encoding="utf-8") as fh:
                meta = json.load(fh)
        except OSError as exc:
            raise StoreError(
                f"no result store at {root!r} (missing {META_NAME})"
            ) from exc
        except ValueError as exc:
            raise StoreError(f"corrupt store metadata {meta_path!r}") from exc
        return cls(root, int(meta.get("shards", 1)))

    @classmethod
    def open_or_create(cls, root: str, shards: int = 1) -> "ResultStore":
        """Open ``root`` if it is already a store (its recorded shard
        count wins — resuming must not re-route rows), else create it."""
        if os.path.exists(os.path.join(root, META_NAME)):
            return cls.open(root)
        return cls.create(root, shards)

    # ------------------------------------------------------------------
    # Writing (single writer, spec order — see module docstring)
    # ------------------------------------------------------------------
    def shard_for(self, spec: RunSpec) -> int:
        """The shard a spec's report lives in: first 8 hex digits of the
        content hash, mod shard count — stable across runs and hosts."""
        return int(spec.content_hash()[:8], 16) % self.shards

    def shard_path(self, index: int) -> str:
        return os.path.join(self.root, SHARD_FMT.format(index))

    def shard_paths(self) -> list[str]:
        return [self.shard_path(i) for i in range(self.shards)]

    def append(self, report: RunReport) -> None:
        """Append one report to its shard and flush (durable before the
        manifest's ``done`` event is journaled)."""
        idx = self.shard_for(report.spec)
        fh = self._handles.get(idx)
        if fh is None:
            fh = open(self.shard_path(idx), "a", encoding="utf-8")
            self._handles[idx] = fh
        fh.write(report.to_json_line())
        fh.write("\n")
        fh.flush()

    def close(self) -> None:
        for fh in self._handles.values():
            if not fh.closed:
                fh.close()
        self._handles.clear()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def count(self) -> int:
        """Total stored reports (line count across shards)."""
        total = 0
        for path in self.shard_paths():
            try:
                with open(path, encoding="utf-8") as fh:
                    total += sum(1 for line in fh if line.strip())
            except OSError:
                continue
        return total

    def iter_reports(self) -> Iterator[RunReport]:
        """All stored reports, shard by shard (shard-major order; global
        grid order is not reconstructed — key by ``spec.content_hash()``
        when order matters)."""
        for path in self.shard_paths():
            if os.path.exists(path):
                yield from load_reports(path)

    def reports_by_hash(self) -> dict[str, RunReport]:
        """Stored reports keyed by spec content hash (resume uses this to
        serve the completed prefix; duplicate hashes are an error — the
        writer appends every spec at most once)."""
        out: dict[str, RunReport] = {}
        for r in self.iter_reports():
            h = r.spec.content_hash()
            if h in out:
                raise StoreError(
                    f"result store {self.root!r} holds duplicate reports "
                    f"for spec {r.spec!r}"
                )
            out[h] = r
        return out


# ----------------------------------------------------------------------
# Query layer
# ----------------------------------------------------------------------
def load_any(path: str) -> Iterator[RunReport]:
    """Reports from either a store directory or a flat JSONL file."""
    if os.path.isdir(path):
        yield from ResultStore.open(path).iter_reports()
    elif os.path.exists(path):
        yield from load_reports(path)
    else:
        raise StoreError(f"no result store or JSONL file at {path!r}")


#: queryable fields -> extractor.  Spec identity fields plus the measured
#: outcome columns; extend here and `repro query` picks it up.
FIELDS: dict[str, Callable[[RunReport], Any]] = {
    "algorithm": lambda r: r.spec.algorithm,
    "scenario": lambda r: r.spec.scenario,
    "n": lambda r: r.spec.n,
    "a": lambda r: r.spec.a,
    "seed": lambda r: r.spec.seed,
    "engine": lambda r: r.engine,
    "enforcement": lambda r: r.spec.enforcement,
    "correct": lambda r: r.correct,
    "rounds": lambda r: r.rounds,
    "messages": lambda r: r.messages,
    "bits": lambda r: r.bits,
    "violations": lambda r: len(r.violations),
}

#: aggregate functions for --agg (count takes no field).
AGG_FNS: dict[str, Callable[[list], Any]] = {
    "count": len,
    "sum": sum,
    "min": min,
    "max": max,
    "mean": lambda xs: sum(xs) / len(xs) if xs else 0.0,
}


def field_value(report: RunReport, name: str) -> Any:
    try:
        return FIELDS[name](report)
    except KeyError:
        raise StoreError(
            f"unknown query field {name!r}; known fields: "
            f"{', '.join(sorted(FIELDS))}"
        ) from None


def parse_where(terms: Sequence[str]) -> list[tuple[str, Any]]:
    """``field=value`` filter terms; values coerce like JSON scalars
    (ints, floats, true/false/null) and fall back to strings."""
    out: list[tuple[str, Any]] = []
    for term in terms:
        name, sep, raw = term.partition("=")
        if not sep or not name:
            raise StoreError(
                f"malformed --where {term!r}; expected field=value"
            )
        if name not in FIELDS:
            raise StoreError(
                f"unknown query field {name!r}; known fields: "
                f"{', '.join(sorted(FIELDS))}"
            )
        try:
            value = json.loads(raw)
        except ValueError:
            value = raw
        out.append((name, value))
    return out


def filter_reports(
    reports: Iterable[RunReport], where: Sequence[tuple[str, Any]]
) -> Iterator[RunReport]:
    """Reports matching every ``(field, value)`` term (conjunction)."""
    for r in reports:
        if all(field_value(r, name) == value for name, value in where):
            yield r


def parse_aggs(terms: Sequence[str]) -> list[tuple[str, str | None]]:
    """``fn:field`` aggregate terms (bare ``count`` allowed)."""
    out: list[tuple[str, str | None]] = []
    for term in terms:
        fn, sep, fld = term.partition(":")
        if fn not in AGG_FNS:
            raise StoreError(
                f"unknown aggregate {fn!r}; known: {', '.join(sorted(AGG_FNS))}"
            )
        if fn == "count":
            out.append(("count", None))
            continue
        if not sep or fld not in FIELDS:
            raise StoreError(
                f"aggregate {term!r} needs fn:field with a known field; "
                f"known fields: {', '.join(sorted(FIELDS))}"
            )
        out.append((fn, fld))
    return out


def aggregate(
    reports: Iterable[RunReport],
    group_by: Sequence[str],
    aggs: Sequence[tuple[str, str | None]],
) -> tuple[list[str], list[list[Any]]]:
    """Grouped aggregation -> (headers, rows), groups in first-seen order.

    ``group_by`` may be empty (one overall row); ``aggs`` are
    ``(fn, field)`` pairs from :func:`parse_aggs`.
    """
    for g in group_by:
        if g not in FIELDS:
            raise StoreError(
                f"unknown query field {g!r}; known fields: "
                f"{', '.join(sorted(FIELDS))}"
            )
    groups: dict[tuple, list[RunReport]] = {}
    for r in reports:
        key = tuple(field_value(r, g) for g in group_by)
        groups.setdefault(key, []).append(r)
    headers = list(group_by) + [
        fn if fld is None else f"{fn}({fld})" for fn, fld in aggs
    ]
    rows: list[list[Any]] = []
    for key, members in groups.items():
        row: list[Any] = list(key)
        for fn, fld in aggs:
            values = (
                members
                if fld is None
                else [field_value(r, fld) for r in members]
            )
            out = AGG_FNS[fn](values)
            row.append(round(out, 3) if isinstance(out, float) else out)
        rows.append(row)
    return headers, rows
