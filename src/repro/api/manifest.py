"""Resumable sweep manifests: an append-only journal of one grid.

A manifest makes a sweep *interruptible*: the first line records the full
canonical spec grid (content-addressed per row via
:meth:`RunSpec.content_hash`) plus the result-store location, and every
completed row appends a ``done`` event **after** its report is in the
store.  Kill the process at any point — SIGKILL included — and
``sweep --resume <manifest>`` (or ``Session.run_many`` with the same
manifest) picks up at the first unfinished row: the completed prefix is
skipped, its reports are served from the store, and the remaining rows run
and append exactly where a from-scratch run would have put them, so the
resumed store is **byte-identical** to an uninterrupted one (pinned in
``tests/test_store.py``).

Events are one JSON object per line (append-only, flushed per event):

* ``create`` — version, store path, shard count, row count, the grid
  itself (list of canonical spec dicts) and its aggregate hash;
* ``done`` — ``row`` (grid index) + ``hash`` after the row's report is
  durably in the store.  The session emits rows in spec order, so the
  done-set is always a contiguous prefix — validated on load, because
  resume correctness (and store byte-determinism) depends on it;
* ``incident`` — a worker crash or other anomaly (kind, row, exitcode,
  whether the spec was requeued), timestamped.  Incidents are operational
  history; they never affect resume arithmetic;
* ``resume`` — a marker appended every time an existing manifest is
  reopened for more work.

The manifest is bookkeeping, not results: timestamps and incidents make it
non-deterministic by design.  Determinism lives in the store.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Any, Iterator

from ..errors import ConfigurationError
from .schema import RunSpec


class ManifestError(ConfigurationError):
    """A manifest file is malformed, truncated beyond use, or does not
    match the grid it is asked to resume."""


def grid_hash(specs: list[RunSpec]) -> str:
    """Aggregate content hash of a whole grid (order-sensitive)."""
    h = hashlib.sha256()
    for s in specs:
        h.update(s.content_hash().encode("ascii"))
    return h.hexdigest()


class Manifest:
    """One sweep grid's append-only journal (see module docstring).

    Use :meth:`open` (create-or-resume against a known grid) or
    :meth:`load` (resume knowing only the path, e.g. ``sweep --resume``).
    """

    VERSION = 1

    def __init__(
        self,
        path: str,
        specs: list[RunSpec],
        store: str | None,
        shards: int,
        done_rows: int,
        incidents: list[dict[str, Any]],
    ):
        self.path = path
        self.specs = specs
        self.store = store
        self.shards = shards
        self.done_rows = done_rows  #: length of the completed prefix
        self.incidents = incidents
        self._fh = open(path, "a", encoding="utf-8")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        path: str,
        specs: list[RunSpec],
        *,
        store: str | None,
        shards: int = 1,
    ) -> "Manifest":
        """Create the manifest for ``specs``, or — when ``path`` already
        exists — resume it after verifying it journals the *same* grid
        (aggregate hash match; a mismatch raises :class:`ManifestError`
        rather than silently skipping the wrong rows)."""
        if os.path.exists(path) and os.path.getsize(path) > 0:
            mani = cls.load(path)
            if grid_hash(mani.specs) != grid_hash(specs):
                raise ManifestError(
                    f"manifest {path!r} journals a different grid "
                    f"({len(mani.specs)} rows) than the one being run "
                    f"({len(specs)} rows); use a fresh manifest path"
                )
            return mani
        mani = cls(path, list(specs), store, shards, done_rows=0, incidents=[])
        mani._append(
            {
                "event": "create",
                "version": cls.VERSION,
                "store": store,
                "shards": shards,
                "rows": len(specs),
                "grid_hash": grid_hash(mani.specs),
                "grid": [s.to_dict() for s in mani.specs],
            }
        )
        return mani

    @classmethod
    def load(cls, path: str) -> "Manifest":
        """Reopen an existing manifest: parse every event, reconstruct the
        grid, and validate that the done-set is a contiguous prefix.  A
        torn final line (the process died mid-append) is tolerated and
        ignored; anything else malformed raises :class:`ManifestError`."""
        specs: list[RunSpec] | None = None
        store: str | None = None
        shards = 1
        done: set[int] = set()
        incidents: list[dict[str, Any]] = []
        try:
            with open(path, encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        except OSError as exc:
            raise ManifestError(f"cannot read manifest {path!r}: {exc}") from exc
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                ev = json.loads(line)
            except ValueError as exc:
                if i == len(lines) - 1:
                    break  # torn tail from a mid-append kill; resumable
                raise ManifestError(
                    f"manifest {path!r} line {i + 1} is not JSON"
                ) from exc
            kind = ev.get("event")
            if kind == "create":
                specs = [RunSpec.from_dict(d) for d in ev["grid"]]
                store = ev.get("store")
                shards = int(ev.get("shards", 1))
            elif kind == "done":
                done.add(int(ev["row"]))
            elif kind == "incident":
                incidents.append(ev)
            # "resume" markers and unknown events are informational
        if specs is None:
            raise ManifestError(f"manifest {path!r} has no create event")
        if done and (min(done) != 0 or max(done) != len(done) - 1):
            raise ManifestError(
                f"manifest {path!r} done-set is not a contiguous prefix "
                f"({len(done)} rows, max {max(done)}); it was not written "
                "by the in-order sweep writer"
            )
        if len(done) > len(specs):
            raise ManifestError(
                f"manifest {path!r} records {len(done)} done rows for a "
                f"{len(specs)}-row grid"
            )
        mani = cls(path, specs, store, shards, len(done), incidents)
        mani._append({"event": "resume", "done_rows": len(done), "ts": time.time()})
        return mani

    # ------------------------------------------------------------------
    # Journal writes (flushed per event: a kill loses at most one line)
    # ------------------------------------------------------------------
    def _append(self, event: dict[str, Any]) -> None:
        self._fh.write(json.dumps(event, sort_keys=True, separators=(",", ":")))
        self._fh.write("\n")
        self._fh.flush()

    def mark_done(self, row: int, spec: RunSpec) -> None:
        """Journal row completion — call only *after* the report is in the
        store, and strictly in row order."""
        if row != self.done_rows:
            raise ManifestError(
                f"done events must be in-order: expected row "
                f"{self.done_rows}, got {row}"
            )
        self._append({"event": "done", "row": row, "hash": spec.content_hash()})
        self.done_rows += 1

    def record_incident(self, info: dict[str, Any]) -> None:
        """Journal an operational anomaly (worker crash, requeue, ...)."""
        ev = {"event": "incident", "ts": time.time(), **info}
        self.incidents.append(ev)
        self._append(ev)

    # ------------------------------------------------------------------
    @property
    def complete(self) -> bool:
        return self.done_rows >= len(self.specs)

    def remaining(self) -> Iterator[RunSpec]:
        """Specs still to run, in order."""
        return iter(self.specs[self.done_rows :])

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "Manifest":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
