"""The :class:`Session`: run :class:`~repro.api.schema.RunSpec` scenarios,
serially or fanned out over worker processes.

A session owns the cross-run caches — the per-``n``
:class:`~repro.butterfly.topology.ButterflyGrid` (immutable topology, one
instance per size) and the workload graphs (keyed by algorithm, size,
arboricity, seed, and workload options) — so a 3-algorithms × 4-sizes ×
5-seeds sweep builds each instance once instead of once per run.

``run_many(specs, jobs=N)`` fans the specs out over a process pool (fork
start method where available: workers inherit the warm interpreter).  Every
run is a pure function of its canonicalized spec — the engine and
enforcement are resolved *before* dispatch, so a forked/spawned worker
cannot drift from the parent's process-wide defaults — which makes the
resulting JSONL byte-identical for any ``jobs`` value; a regression test
pins this.
"""

from __future__ import annotations

import inspect
import time
from typing import Any, Callable, Iterable, Sequence

from ..config import Enforcement, NCCConfig, default_engine
from ..errors import ConfigurationError
from ..registry import bench_config, get_algorithm
from .schema import RunReport, RunSpec


def _known_option_keys(alg) -> tuple[set[str], bool]:
    """Option names an algorithm accepts: its declared workload options
    plus the run callable's keyword parameters (everything after the fixed
    ``(rt, g)`` positionals).  Returns ``(keys, accepts_any)``;
    ``accepts_any`` is set when the run callable takes ``**kwargs`` (or
    cannot be inspected), in which case no key can be rejected."""
    keys = set(alg.workload_options)
    if alg.run is None:
        return keys, False
    try:
        sig = inspect.signature(alg.run)
    except (TypeError, ValueError):  # pragma: no cover - C callables
        return keys, True
    for p in list(sig.parameters.values())[2:]:
        if p.kind is inspect.Parameter.VAR_KEYWORD:
            return keys, True
        if p.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            keys.add(p.name)
    return keys, False


class Session:
    """A programmatic experiment driver over the algorithm registry.

    Parameters
    ----------
    base_config:
        Template :class:`NCCConfig` applied to every run (seeded per spec).
        Defaults to the benchmark profile
        (:func:`repro.registry.bench_config`: COUNT enforcement,
        lightweight sync) — the same profile the legacy row runners used.
    cache:
        Keep per-``n`` butterfly grids and workload graphs alive across
        :meth:`run` calls (on by default; disable to bound memory on huge
        sweeps).
    """

    def __init__(self, *, base_config: NCCConfig | None = None, cache: bool = True):
        self.base_config = base_config
        self._cache_enabled = cache
        self._bf_cache: dict[int, Any] = {}
        self._workload_cache: dict[tuple, Any] = {}

    # ------------------------------------------------------------------
    # Canonicalization and per-spec config
    # ------------------------------------------------------------------
    def canonical(self, spec: RunSpec) -> RunSpec:
        """Resolve aliases and defaults so the spec reruns verbatim anywhere:
        canonical algorithm name, canonical scenario name (validated against
        the algorithm's requirements), explicit engine and enforcement."""
        alg = get_algorithm(spec.algorithm)
        scenario = spec.scenario
        if scenario is not None:
            from ..scenarios import check_compatible, get_scenario

            scn = get_scenario(scenario)
            check_compatible(alg, scn)
            if "family" in dict(spec.extras):
                raise ConfigurationError(
                    f"RunSpec for {alg.name!r} sets both scenario="
                    f"{scn.name!r} and the legacy extras['family'] option; "
                    "the family option is a deprecated alias of scenario — "
                    "drop it"
                )
            scenario = scn.name
        # A typo'd option used to fall through silently: _workload forwards
        # only keys in workload_options, so e.g. extras={"familly": "grid"}
        # ran the *default* workload without complaint.  Reject anything
        # neither the workload builder nor the run callable accepts.
        known, accepts_any = _known_option_keys(alg)
        if not accepts_any:
            unknown = [k for k in dict(spec.extras) if k not in known]
            if unknown:
                raise ConfigurationError(
                    f"unknown option(s) {', '.join(sorted(unknown))} for "
                    f"algorithm {alg.name!r}; known options: "
                    f"{', '.join(sorted(known)) if known else '(none)'}"
                )
        cfg = self.base_config if self.base_config is not None else bench_config(0)
        return spec.with_(
            algorithm=alg.name,
            scenario=scenario,
            engine=spec.engine or cfg.engine or default_engine(),
            enforcement=spec.enforcement or cfg.enforcement.value,
        )

    def config_for(self, spec: RunSpec) -> NCCConfig:
        cfg = (
            self.base_config.with_(seed=spec.seed)
            if self.base_config is not None
            else bench_config(spec.seed)
        )
        if spec.engine:
            cfg = cfg.with_(engine=spec.engine)
        if spec.enforcement:
            cfg = cfg.with_(enforcement=Enforcement(spec.enforcement))
        return cfg

    # ------------------------------------------------------------------
    # Caches
    # ------------------------------------------------------------------
    def _butterfly(self, n: int):
        from ..butterfly.topology import ButterflyGrid

        bf = self._bf_cache.get(n)
        if bf is None:
            bf = ButterflyGrid(n)
            if self._cache_enabled:
                self._bf_cache[n] = bf
        return bf

    def _workload(self, alg, spec: RunSpec):
        if spec.scenario is not None:
            from ..scenarios import get_scenario

            # Scenario workloads are algorithm-independent, but the key
            # keeps the algorithm so per-algorithm eviction stays possible.
            key = (alg.name, spec.scenario, spec.n, spec.a, spec.seed)
            g = self._workload_cache.get(key)
            if g is None:
                g = get_scenario(spec.scenario).build(spec.n, spec.a, spec.seed)
                if self._cache_enabled:
                    self._workload_cache[key] = g
            return g
        options = {
            k: v for k, v in spec.extras if k in alg.workload_options
        }
        key = (alg.name, spec.n, spec.a, spec.seed, tuple(sorted(options.items())))
        g = self._workload_cache.get(key)
        if g is None:
            g = alg.workload(spec.n, spec.a, spec.seed, **options)
            if self._cache_enabled:
                self._workload_cache[key] = g
        return g

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, spec: RunSpec) -> RunReport:
        """Execute one spec and return its report."""
        spec = self.canonical(spec)
        alg = get_algorithm(spec.algorithm)
        g = self._workload(alg, spec)
        a_label = spec.a
        if spec.scenario is not None:
            from ..scenarios import get_scenario

            scn = get_scenario(spec.scenario)
            # Rows label `a` with the scenario's declared bound (e.g. 3
            # for the grid family) rather than the sweep knob, which only
            # parameterizes a-controlled families.  Without a declared
            # bound the knob is meaningless too — the trivial `n` bound
            # makes the describers fall back to the greedy estimate
            # instead of understating `a` as the knob value.
            a_label = (
                scn.effective_a(spec.n, spec.a)
                if scn.arboricity is not None
                else spec.n
            )
        t0 = time.perf_counter()
        ex = alg.execute(
            spec.n,
            a=a_label,
            seed=spec.seed,
            config=self.config_for(spec),
            graph=g,
            bf=self._butterfly(g.n),
            **spec.options,
        )
        wall = time.perf_counter() - t0
        rt = ex.runtime
        return RunReport(
            spec=spec,
            row=ex.row,
            engine=rt.config.resolve_engine(),
            correct=bool(ex.row.get("correct", False)),
            rounds=rt.net.round_index,
            messages=rt.net.stats.messages,
            bits=rt.net.stats.bits,
            stats=rt.net.stats.to_dict(),
            wall_time_s=wall,
        )

    def run_many(
        self,
        specs: Iterable[RunSpec],
        *,
        jobs: int = 1,
        out: str | None = None,
        progress: Callable[[RunReport], None] | None = None,
    ) -> list[RunReport]:
        """Execute specs (in order) and optionally persist JSONL to ``out``.

        ``jobs > 1`` fans out over a process pool; report order always
        matches spec order and the JSONL bytes are identical to a serial
        run.  ``out="-"`` writes the JSONL to stdout.
        """
        spec_list = [self.canonical(s) for s in specs]
        if jobs <= 1 or len(spec_list) <= 1:
            reports = []
            for s in spec_list:
                r = self.run(s)
                if progress is not None:
                    progress(r)
                reports.append(r)
        else:
            reports = self._run_pool(spec_list, jobs, progress)
        if out is not None:
            from .schema import dump_reports

            dump_reports(reports, out)
        return reports

    def _run_pool(
        self,
        specs: Sequence[RunSpec],
        jobs: int,
        progress: Callable[[RunReport], None] | None,
    ) -> list[RunReport]:
        import multiprocessing as mp
        from concurrent.futures import ProcessPoolExecutor

        method = "fork" if "fork" in mp.get_all_start_methods() else None
        ctx = mp.get_context(method)
        payloads = [s.to_dict() for s in specs]
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(specs)),
            mp_context=ctx,
            initializer=_init_worker,
            initargs=(self.base_config, self._cache_enabled),
        ) as pool:
            reports = []
            for data in pool.map(_worker_run, payloads, chunksize=1):
                r = RunReport.from_dict(data)
                if progress is not None:
                    progress(r)
                reports.append(r)
        return reports


# ----------------------------------------------------------------------
# Worker-process plumbing (module-level: must be picklable by reference)
# ----------------------------------------------------------------------
_WORKER_SESSION: Session | None = None


def _init_worker(base_config: NCCConfig | None, cache: bool = True) -> None:
    global _WORKER_SESSION
    _WORKER_SESSION = Session(base_config=base_config, cache=cache)


def _worker_run(spec_data: dict) -> dict:
    global _WORKER_SESSION
    if _WORKER_SESSION is None:  # pragma: no cover - initializer always runs
        _WORKER_SESSION = Session()
    report = _WORKER_SESSION.run(RunSpec.from_dict(spec_data))
    return report.to_dict(timing=True)


def _dedup_axis(values: Sequence[Any]) -> list[Any]:
    """Order-preserving axis dedupe: a repeated axis value (``--ns 64,64``)
    must not multiply the grid — every duplicate row would rerun and
    re-emit an identical JSONL record."""
    seen: set[Any] = set()
    out: list[Any] = []
    for v in values:
        if v not in seen:
            seen.add(v)
            out.append(v)
    return out


def sweep_grid(
    algorithms: Sequence[str],
    ns: Sequence[int],
    *,
    a: int = 2,
    seeds: Sequence[int] = (0,),
    engines: Sequence[str | None] = (None,),
    enforcement: str | None = None,
    extras: dict[str, Any] | None = None,
    scenarios: Sequence[str | None] = (None,),
) -> list[RunSpec]:
    """The cartesian spec grid, in deterministic algorithm-major order
    (scenario varies directly inside the algorithm axis, i.e. it is the
    second-slowest-moving axis; engine is the fastest).  Each axis is
    deduplicated preserving first-occurrence order."""
    return [
        RunSpec(
            algorithm=alg,
            n=n,
            a=a,
            seed=seed,
            engine=engine,
            enforcement=enforcement,
            extras=extras or (),
            scenario=scenario,
        )
        for alg in _dedup_axis(algorithms)
        for scenario in _dedup_axis(scenarios)
        for n in _dedup_axis(ns)
        for seed in _dedup_axis(seeds)
        for engine in _dedup_axis(engines)
    ]


def matrix_grid(
    algorithms: Sequence[str],
    scenarios: Sequence[str],
    *,
    n: int,
    a: int = 2,
    seed: int = 0,
    engine: str | None = None,
    enforcement: str | None = None,
) -> tuple[list[RunSpec], list[tuple[str, str]]]:
    """The algorithm×scenario grid at one ``(n, a, seed)`` point.

    Incompatible pairs (an algorithm requirement the scenario cannot
    provide) are *skipped*, not errors — a matrix sweep is exactly the
    place where some cells are undefined.  Returns
    ``(specs, skipped_pairs)``; ``skipped_pairs`` is the deterministic
    list of ``(algorithm, scenario)`` cells left out.
    """
    from ..scenarios import get_scenario, is_compatible

    specs: list[RunSpec] = []
    skipped: list[tuple[str, str]] = []
    for alg_name in algorithms:
        alg = get_algorithm(alg_name)
        for scenario_name in scenarios:
            scn = get_scenario(scenario_name)
            if not is_compatible(alg, scn):
                skipped.append((alg.name, scn.name))
                continue
            specs.append(
                RunSpec(
                    algorithm=alg.name,
                    n=n,
                    a=a,
                    seed=seed,
                    engine=engine,
                    enforcement=enforcement,
                    scenario=scn.name,
                )
            )
    return specs, skipped
