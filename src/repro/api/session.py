"""The :class:`Session`: run :class:`~repro.api.schema.RunSpec` scenarios,
serially or fanned out over worker processes.

A session owns the cross-run caches — the per-``n``
:class:`~repro.butterfly.topology.ButterflyGrid` (immutable topology, one
instance per size) and the workload graphs (keyed by algorithm, size,
arboricity, seed, and workload options) — so a 3-algorithms × 4-sizes ×
5-seeds sweep builds each instance once instead of once per run.

``run_many(specs, jobs=N)`` fans the specs out over one of two pools:

* ``pool="persistent"`` (the default where shared memory is available) —
  the long-lived worker service in :mod:`repro.api.pool`: workers spawn
  once per session, stay warm across ``run_many`` calls, receive specs
  over per-worker pipes, and read workload graphs from shared-memory
  segments the parent publishes once per distinct workload.  Worker
  crashes are survived (in-flight specs requeue; incidents land in the
  manifest when one is attached).
* ``pool="fork"`` — the legacy fork-per-sweep ``ProcessPoolExecutor``;
  every workload is rebuilt inside each worker.  The fallback where
  ``multiprocessing.shared_memory`` is unavailable.

Every run is a pure function of its canonicalized spec — the engine and
enforcement are resolved *before* dispatch, so a worker cannot drift from
the parent's process-wide defaults — which makes the resulting JSONL
byte-identical for any ``jobs`` value and either pool; regression tests
pin this.  ``run_many`` optionally journals to a resumable
:class:`~repro.api.manifest.Manifest` and persists each row to an
append-only :class:`~repro.api.store.ResultStore` the moment it completes,
in spec order, so interrupted sweeps resume without recomputing (and the
resumed store is byte-identical to an uninterrupted one).
"""

from __future__ import annotations

import inspect
import time
from typing import Any, Callable, Iterable, Sequence

from ..config import Enforcement, NCCConfig, default_engine
from ..errors import ConfigurationError
from ..registry import bench_config, get_algorithm
from ..telemetry import tracer as _tracer
from ..telemetry.metrics import METRICS, MetricRegistry
from ..telemetry.tracer import Tracer, install_tracer, uninstall_tracer
from .manifest import Manifest
from .schema import RunReport, RunSpec
from .store import ResultStore


def _known_option_keys(alg) -> tuple[set[str], bool]:
    """Option names an algorithm accepts: its declared workload options
    plus the run callable's keyword parameters (everything after the fixed
    ``(rt, g)`` positionals).  Returns ``(keys, accepts_any)``;
    ``accepts_any`` is set when the run callable takes ``**kwargs`` (or
    cannot be inspected), in which case no key can be rejected."""
    keys = set(alg.workload_options)
    if alg.run is None:
        return keys, False
    try:
        sig = inspect.signature(alg.run)
    except (TypeError, ValueError):  # pragma: no cover - C callables
        return keys, True
    for p in list(sig.parameters.values())[2:]:
        if p.kind is inspect.Parameter.VAR_KEYWORD:
            return keys, True
        if p.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            keys.add(p.name)
    return keys, False


class Session:
    """A programmatic experiment driver over the algorithm registry.

    Parameters
    ----------
    base_config:
        Template :class:`NCCConfig` applied to every run (seeded per spec).
        Defaults to the benchmark profile
        (:func:`repro.registry.bench_config`: COUNT enforcement,
        lightweight sync) — the same profile the legacy row runners used.
    cache:
        Keep per-``n`` butterfly grids and workload graphs alive across
        :meth:`run` calls (on by default; disable to bound memory on huge
        sweeps — workers and shared-memory segments are then released
        after each ``run_many``).
    pool:
        Parallel-execution backend for ``run_many(jobs>1)``: ``"auto"``
        (default — persistent workers when shared memory is available,
        else the fork pool), ``"persistent"`` (require the persistent
        worker service; :class:`ConfigurationError` where shared memory
        is unavailable), or ``"fork"`` (the legacy fork-per-sweep pool).
        See :mod:`repro.api.pool`.

    Guarantees
    ----------
    * Reports (and their canonical JSONL) are a pure function of the
      canonicalized spec: identical for ``jobs=1`` and ``jobs=N``, either
      pool, any host — pinned by ``tests/test_session.py`` /
      ``tests/test_pool.py``.
    * A session holding a persistent pool releases its workers and
      shared-memory segments on :meth:`close` (also a context manager; a
      finalizer backstops abnormal exits).

    Failure modes
    -------------
    :class:`ConfigurationError` for unknown algorithms/scenarios/options
    or an unsatisfiable ``pool=`` choice;
    :class:`~repro.api.pool.WorkerCrashError` when a parallel sweep loses
    every worker or one spec keeps killing workers (after
    :data:`~repro.api.pool.MAX_REQUEUES` requeues).
    """

    def __init__(
        self,
        *,
        base_config: NCCConfig | None = None,
        cache: bool = True,
        pool: str = "auto",
    ):
        from .pool import POOL_KINDS

        if pool not in POOL_KINDS:
            raise ConfigurationError(
                f"unknown pool kind {pool!r}; choose from {', '.join(POOL_KINDS)}"
            )
        self.base_config = base_config
        self._cache_enabled = cache
        self._pool_kind = pool
        self._pool: Any = None  # lazily-spawned PersistentPool
        self._bf_cache: dict[int, Any] = {}
        self._workload_cache: dict[tuple, Any] = {}
        #: engine incident journal of the most recent :meth:`run` (e.g.
        #: shard-worker crashes the run survived) — kept off the report,
        #: which is part of the byte-identical canonical surface.
        self.last_incidents: list[dict] = []
        #: pool/engine incidents of the most recent :meth:`run_many`.
        self.last_sweep_incidents: list[dict] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the persistent worker pool (if one was spawned) and
        unlink its shared-memory segments.  Idempotent; the session stays
        usable (a new pool spawns on the next parallel ``run_many``)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Canonicalization and per-spec config
    # ------------------------------------------------------------------
    def canonical(self, spec: RunSpec) -> RunSpec:
        """Resolve aliases and defaults so the spec reruns verbatim anywhere:
        canonical algorithm name, canonical scenario name (validated against
        the algorithm's requirements), explicit engine and enforcement."""
        alg = get_algorithm(spec.algorithm)
        scenario = spec.scenario
        if scenario is not None:
            from ..scenarios import check_compatible, get_scenario

            scn = get_scenario(scenario)
            check_compatible(alg, scn)
            if "family" in dict(spec.extras):
                raise ConfigurationError(
                    f"RunSpec for {alg.name!r} sets both scenario="
                    f"{scn.name!r} and the legacy extras['family'] option; "
                    "the family option is a deprecated alias of scenario — "
                    "drop it"
                )
            scenario = scn.name
        # A typo'd option used to fall through silently: _workload forwards
        # only keys in workload_options, so e.g. extras={"familly": "grid"}
        # ran the *default* workload without complaint.  Reject anything
        # neither the workload builder nor the run callable accepts.
        known, accepts_any = _known_option_keys(alg)
        if not accepts_any:
            unknown = [k for k in dict(spec.extras) if k not in known]
            if unknown:
                raise ConfigurationError(
                    f"unknown option(s) {', '.join(sorted(unknown))} for "
                    f"algorithm {alg.name!r}; known options: "
                    f"{', '.join(sorted(known)) if known else '(none)'}"
                )
        cfg = self.base_config if self.base_config is not None else bench_config(0)
        engine = spec.engine or cfg.engine or default_engine()
        if spec.shards is not None:
            # A shard count implies the sharded engine; an explicit
            # different engine is a contradiction, not a silent override.
            if spec.engine in (None, "", "sharded"):
                engine = "sharded"
            else:
                raise ConfigurationError(
                    f"RunSpec sets shards={spec.shards} but engine="
                    f"{spec.engine!r}; shards only applies to the "
                    "'sharded' engine"
                )
        return spec.with_(
            algorithm=alg.name,
            scenario=scenario,
            engine=engine,
            enforcement=spec.enforcement or cfg.enforcement.value,
        )

    def config_for(self, spec: RunSpec) -> NCCConfig:
        cfg = (
            self.base_config.with_(seed=spec.seed)
            if self.base_config is not None
            else bench_config(spec.seed)
        )
        if spec.engine:
            cfg = cfg.with_(engine=spec.engine)
        if spec.enforcement:
            cfg = cfg.with_(enforcement=Enforcement(spec.enforcement))
        if spec.shards is not None:
            cfg = cfg.with_(shards=spec.shards)
        return cfg

    # ------------------------------------------------------------------
    # Caches
    # ------------------------------------------------------------------
    def _butterfly(self, n: int):
        from ..butterfly.topology import ButterflyGrid

        bf = self._bf_cache.get(n)
        if bf is None:
            bf = ButterflyGrid(n)
            if self._cache_enabled:
                self._bf_cache[n] = bf
        return bf

    def workload_key(self, spec: RunSpec) -> tuple:
        """The workload-cache key of a canonicalized spec — also the
        shared-memory publication key of the persistent pool (parent and
        workers must agree on it, so it lives here, once)."""
        alg = get_algorithm(spec.algorithm)
        if spec.scenario is not None:
            # Scenario workloads are algorithm-independent, but the key
            # keeps the algorithm so per-algorithm eviction stays possible.
            return (alg.name, spec.scenario, spec.n, spec.a, spec.seed)
        options = {k: v for k, v in spec.extras if k in alg.workload_options}
        return (alg.name, spec.n, spec.a, spec.seed, tuple(sorted(options.items())))

    def _workload(self, alg, spec: RunSpec):
        key = self.workload_key(spec)
        g = self._workload_cache.get(key)
        if g is None:
            if spec.scenario is not None:
                from ..scenarios import get_scenario

                g = get_scenario(spec.scenario).build(spec.n, spec.a, spec.seed)
            else:
                options = {
                    k: v for k, v in spec.extras if k in alg.workload_options
                }
                g = alg.workload(spec.n, spec.a, spec.seed, **options)
            if self._cache_enabled:
                self._workload_cache[key] = g
        return g

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, spec: RunSpec) -> RunReport:
        """Execute one spec and return its report."""
        spec = self.canonical(spec)
        alg = get_algorithm(spec.algorithm)
        g = self._workload(alg, spec)
        a_label = spec.a
        if spec.scenario is not None:
            from ..scenarios import get_scenario

            scn = get_scenario(spec.scenario)
            # Rows label `a` with the scenario's declared bound (e.g. 3
            # for the grid family) rather than the sweep knob, which only
            # parameterizes a-controlled families.  Without a declared
            # bound the knob is meaningless too — the trivial `n` bound
            # makes the describers fall back to the greedy estimate
            # instead of understating `a` as the knob value.
            a_label = (
                scn.effective_a(spec.n, spec.a)
                if scn.arboricity is not None
                else spec.n
            )
        t0 = time.perf_counter()
        ex = alg.execute(
            spec.n,
            a=a_label,
            seed=spec.seed,
            config=self.config_for(spec),
            graph=g,
            bf=self._butterfly(g.n),
            **spec.options,
        )
        wall = time.perf_counter() - t0
        rt = ex.runtime
        # Surface the engine's incident journal (shard-worker crashes the
        # run survived): sidecar state only — the report stays canonical.
        self.last_incidents = list(getattr(rt.net.engine, "incidents", ()) or ())
        report = RunReport(
            spec=spec,
            row=ex.row,
            engine=rt.config.resolve_engine(),
            correct=bool(ex.row.get("correct", False)),
            rounds=rt.net.round_index,
            messages=rt.net.stats.messages,
            bits=rt.net.stats.bits,
            stats=rt.net.stats.to_dict(),
            wall_time_s=wall,
        )
        tr = _tracer.CURRENT
        if tr is not None:
            tr.add_span(
                "run",
                t0,
                t0 + wall,
                algorithm=spec.algorithm,
                n=spec.n,
                a=spec.a,
                seed=spec.seed,
                engine=report.engine,
                scenario=spec.scenario or "",
                shards=spec.shards,
                rounds=report.rounds,
                messages=report.messages,
                bits=report.bits,
                incidents=len(self.last_incidents),
            )
        return report

    def run_many(
        self,
        specs: Iterable[RunSpec],
        *,
        jobs: int = 1,
        out: str | None = None,
        progress: Callable[[RunReport], None] | None = None,
        store: "ResultStore | str | None" = None,
        manifest: "Manifest | str | None" = None,
        shards: int = 1,
        max_rows: int | None = None,
        telemetry: Any = None,
    ) -> list[RunReport]:
        """Execute specs (in order); optionally journal, persist, resume.

        Parameters
        ----------
        jobs:
            Worker processes; ``1`` runs serially in this process.  Which
            pool serves ``jobs > 1`` is the session's ``pool=`` choice.
        out:
            Flat canonical-JSONL path written *after* the sweep completes
            (``"-"`` = stdout).  Independent of ``store``.
        progress:
            Called once per completed row, in spec order, after the row is
            durable in the store (when one is attached).
        store:
            :class:`~repro.api.store.ResultStore` (or directory path) that
            receives each report the moment its row completes — append
            only, in spec order, flushed per line.  ``shards`` sets the
            partition count when the directory is created (an existing
            store's count wins).
        manifest:
            :class:`~repro.api.manifest.Manifest` (or path) journaling the
            grid.  Requires ``store`` (resume serves completed rows from
            it).  If the manifest already exists it must journal the same
            grid, and its completed prefix is *skipped*: those reports are
            loaded from the store instead of recomputed.
        max_rows:
            Process at most this many rows this invocation and return
            (the manifest stays resumable) — chunked draining of very
            large grids.
        telemetry:
            Optional :class:`~repro.telemetry.sweep.SweepTelemetry`: every
            row runs under a fresh tracer (in-process for serial rows,
            inside the worker for pooled rows — payloads ship back over
            the result pipes) and pool-level events land on its parent
            tracer.  Purely a sidecar: reports, stores, and JSONL stay
            byte-identical with or without it.  Call ``finalize()`` on it
            afterwards to write the merged trace directory.

        Returns the full in-order report list (resumed prefix included).
        Byte-determinism: the same grid yields identical ``out`` bytes and
        identical store-shard bytes for any ``jobs``/pool/interrupt-resume
        history.
        """
        spec_list = [self.canonical(s) for s in specs]
        if manifest is not None and store is None:
            raise ConfigurationError(
                "run_many(manifest=...) requires store=...: resume serves "
                "completed rows from the result store"
            )
        store_obj = (
            ResultStore.open_or_create(store, shards)
            if isinstance(store, str)
            else store
        )
        mani = (
            Manifest.open(
                manifest,
                spec_list,
                store=getattr(store_obj, "root", None),
                shards=getattr(store_obj, "shards", shards),
            )
            if isinstance(manifest, str)
            else manifest
        )

        skip = mani.done_rows if mani is not None else 0
        prior: list[RunReport] = []
        if skip:
            by_hash = store_obj.reports_by_hash()
            try:
                prior = [by_hash[s.content_hash()] for s in spec_list[:skip]]
            except KeyError as exc:
                raise ConfigurationError(
                    f"manifest {mani.path!r} marks rows done that the "
                    f"store {store_obj.root!r} does not hold ({exc}); "
                    "store and manifest are out of sync"
                ) from exc
        todo = spec_list[skip:]
        if max_rows is not None:
            todo = todo[: max(0, max_rows)]

        reports = list(prior)

        def emit(i: int, r: RunReport) -> None:
            # In-order, store-first: a row is only journaled done once its
            # report is durable, so a kill between the two recomputes the
            # row instead of losing it.
            if store_obj is not None:
                store_obj.append(r)
            if mani is not None:
                mani.mark_done(skip + i, todo[i])
            if progress is not None:
                progress(r)
            reports.append(r)

        self.last_sweep_incidents = []
        if jobs <= 1 or len(todo) <= 1:
            for i, s in enumerate(todo):
                if telemetry is None:
                    report = self.run(s)
                else:
                    report = self._run_traced_row(i, s, telemetry)
                if self.last_incidents:
                    self.last_sweep_incidents.extend(self.last_incidents)
                emit(i, report)
        elif self._resolved_pool_kind() == "persistent":
            self._run_persistent(todo, jobs, emit, mani, telemetry)
        else:
            self._run_fork_pool(todo, jobs, emit, telemetry)
        if out is not None:
            from .schema import dump_reports

            dump_reports(reports, out)
        return reports

    def _resolved_pool_kind(self) -> str:
        from .pool import shared_memory_available

        if self._pool_kind == "persistent":
            if not shared_memory_available():
                raise ConfigurationError(
                    "Session(pool='persistent') needs "
                    "multiprocessing.shared_memory, which is unavailable "
                    "on this host; use pool='auto' or pool='fork'"
                )
            return "persistent"
        if self._pool_kind == "fork":
            return "fork"
        return "persistent" if shared_memory_available() else "fork"

    def _persistent_pool(self, jobs: int):
        """The session's long-lived pool, (re)spawned when the requested
        worker count changes."""
        from .pool import PersistentPool

        if self._pool is not None and self._pool.jobs != jobs:
            self._pool.close()
            self._pool = None
        if self._pool is None:
            self._pool = PersistentPool(
                jobs, base_config=self.base_config, cache=self._cache_enabled
            )
        return self._pool

    def _run_traced_row(self, i: int, spec: RunSpec, telemetry: Any) -> RunReport:
        """One serial sweep row under a fresh tracer; the payload (with
        counter deltas for just this row) lands on the collector."""
        counters_before = METRICS.snapshot()
        tracer = Tracer(label=f"row-{i}", row=i)
        previous = install_tracer(tracer)
        try:
            report = self.run(spec)
        finally:
            uninstall_tracer(previous)
        payload = tracer.to_payload()
        payload["counters"] = MetricRegistry.delta(
            counters_before, payload["counters"]
        )
        telemetry.add_row(i, payload)
        return report

    def _run_persistent(
        self,
        todo: Sequence[RunSpec],
        jobs: int,
        emit: Callable[[int, RunReport], None],
        mani: "Manifest | None",
        telemetry: Any = None,
    ) -> None:
        # The collector's parent tracer is installed for the whole
        # dispatch so pool-level events (publish/dispatch/crash) are
        # captured alongside the per-row worker traces.
        previous = (
            install_tracer(telemetry.tracer) if telemetry is not None else None
        )
        try:
            pool = self._persistent_pool(min(jobs, len(todo)))
            items = []
            for i, s in enumerate(todo):
                key = self.workload_key(s)
                ref = pool.publish_workload(
                    key,
                    lambda s=s: self._workload(get_algorithm(s.algorithm), s),
                )
                items.append((i, s.to_dict(), key, ref))

            def on_incident(incident: dict) -> None:
                self.last_sweep_incidents.append(incident)
                if mani is not None:
                    mani.record_incident(incident)

            # Completions arrive in any order (and reruns after a crash);
            # re-serialize into spec order so every downstream observer —
            # store, manifest, progress, JSONL — sees a deterministic stream.
            buffered: dict[int, RunReport] = {}
            next_i = 0
            try:
                for i, data in pool.run(
                    items,
                    on_incident=on_incident,
                    trace=telemetry is not None,
                ):
                    payload = data.pop("__telemetry__", None)
                    if telemetry is not None:
                        telemetry.add_row(i, payload)
                    buffered[i] = RunReport.from_dict(data)
                    while next_i in buffered:
                        emit(next_i, buffered.pop(next_i))
                        next_i += 1
            finally:
                if not self._cache_enabled:
                    self.close()
        finally:
            if telemetry is not None:
                uninstall_tracer(previous)

    def _run_fork_pool(
        self,
        specs: Sequence[RunSpec],
        jobs: int,
        emit: Callable[[int, RunReport], None],
        telemetry: Any = None,
    ) -> None:
        import multiprocessing as mp
        from concurrent.futures import ProcessPoolExecutor

        method = "fork" if "fork" in mp.get_all_start_methods() else None
        ctx = mp.get_context(method)
        payloads = [s.to_dict() for s in specs]
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(specs)),
            mp_context=ctx,
            initializer=_init_worker,
            initargs=(self.base_config, self._cache_enabled, telemetry is not None),
        ) as pool:
            for i, data in enumerate(pool.map(_worker_run, payloads, chunksize=1)):
                payload = data.pop("__telemetry__", None)
                if telemetry is not None:
                    telemetry.add_row(i, payload)
                emit(i, RunReport.from_dict(data))


# ----------------------------------------------------------------------
# Worker-process plumbing (module-level: must be picklable by reference)
# ----------------------------------------------------------------------
_WORKER_SESSION: Session | None = None
_WORKER_TRACE = False


def _init_worker(
    base_config: NCCConfig | None, cache: bool = True, trace: bool = False
) -> None:
    global _WORKER_SESSION, _WORKER_TRACE
    _WORKER_SESSION = Session(base_config=base_config, cache=cache)
    _WORKER_TRACE = trace


def _worker_run(spec_data: dict) -> dict:
    global _WORKER_SESSION
    if _WORKER_SESSION is None:  # pragma: no cover - initializer always runs
        _WORKER_SESSION = Session()
    if not _WORKER_TRACE:
        return _WORKER_SESSION.run(RunSpec.from_dict(spec_data)).to_dict(timing=True)
    counters_before = METRICS.snapshot()
    tracer = Tracer()
    previous = install_tracer(tracer)
    try:
        report = _WORKER_SESSION.run(RunSpec.from_dict(spec_data))
    finally:
        uninstall_tracer(previous)
    payload = tracer.to_payload()
    payload["counters"] = MetricRegistry.delta(counters_before, payload["counters"])
    data = report.to_dict(timing=True)
    data["__telemetry__"] = payload
    return data


def _dedup_axis(values: Sequence[Any]) -> list[Any]:
    """Order-preserving axis dedupe: a repeated axis value (``--ns 64,64``)
    must not multiply the grid — every duplicate row would rerun and
    re-emit an identical JSONL record."""
    seen: set[Any] = set()
    out: list[Any] = []
    for v in values:
        if v not in seen:
            seen.add(v)
            out.append(v)
    return out


def sweep_grid(
    algorithms: Sequence[str],
    ns: Sequence[int],
    *,
    a: int = 2,
    seeds: Sequence[int] = (0,),
    engines: Sequence[str | None] = (None,),
    enforcement: str | None = None,
    extras: dict[str, Any] | None = None,
    scenarios: Sequence[str | None] = (None,),
    engine_shards: int | None = None,
) -> list[RunSpec]:
    """The cartesian spec grid, in deterministic algorithm-major order
    (scenario varies directly inside the algorithm axis, i.e. it is the
    second-slowest-moving axis; engine is the fastest).  Each axis is
    deduplicated preserving first-occurrence order.  ``engine_shards``
    (a scalar, not an axis — shard count never changes a row's bytes)
    applies to every spec and implies the sharded engine."""
    return [
        RunSpec(
            algorithm=alg,
            n=n,
            a=a,
            seed=seed,
            engine=engine,
            enforcement=enforcement,
            extras=extras or (),
            scenario=scenario,
            shards=engine_shards,
        )
        for alg in _dedup_axis(algorithms)
        for scenario in _dedup_axis(scenarios)
        for n in _dedup_axis(ns)
        for seed in _dedup_axis(seeds)
        for engine in _dedup_axis(engines)
    ]


def matrix_grid(
    algorithms: Sequence[str],
    scenarios: Sequence[str],
    *,
    n: int,
    a: int = 2,
    seed: int = 0,
    engine: str | None = None,
    enforcement: str | None = None,
) -> tuple[list[RunSpec], list[tuple[str, str]]]:
    """The algorithm×scenario grid at one ``(n, a, seed)`` point.

    Incompatible pairs (an algorithm requirement the scenario cannot
    provide) are *skipped*, not errors — a matrix sweep is exactly the
    place where some cells are undefined.  Returns
    ``(specs, skipped_pairs)``; ``skipped_pairs`` is the deterministic
    list of ``(algorithm, scenario)`` cells left out.
    """
    from ..scenarios import get_scenario, is_compatible

    specs: list[RunSpec] = []
    skipped: list[tuple[str, str]] = []
    for alg_name in algorithms:
        alg = get_algorithm(alg_name)
        for scenario_name in scenarios:
            scn = get_scenario(scenario_name)
            if not is_compatible(alg, scn):
                skipped.append((alg.name, scn.name))
                continue
            specs.append(
                RunSpec(
                    algorithm=alg.name,
                    n=n,
                    a=a,
                    seed=seed,
                    engine=engine,
                    enforcement=enforcement,
                    scenario=scn.name,
                )
            )
    return specs, skipped
