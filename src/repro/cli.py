"""Command-line interface: run algorithms, regenerate Table 1, drive sweeps.

Usage::

    python -m repro info --n 64
    python -m repro scenarios
    python -m repro run mst --n 48 --a 2 --seed 1
    python -m repro run mis --n 64 --scenario pa-heavy-tail
    python -m repro run mst --n 48 --engine batched
    python -m repro table1 --rows MIS,MM --ns 32,64 --a 2
    python -m repro separation --ns 32,64,128
    python -m repro sweep --algos mst,mis --ns 64,128 --seeds 0:5 \
        --jobs 8 --out results.jsonl
    python -m repro sweep --algos mis --ns 64 --scenarios grid,star,ring-of-chords
    python -m repro sweep --algos mis --ns 32 --seeds 0:500 --jobs 8 \
        --store sweep_store          # durable + resumable (manifest inside)
    python -m repro sweep --resume sweep_store/manifest.jsonl --jobs 8
    python -m repro query sweep_store --where correct=false
    python -m repro query sweep_store --group-by algorithm,n \
        --agg count --agg mean:rounds
    python -m repro matrix --algos mis,matching,components \
        --scenarios forest-union,grid,star,cycle,pa-heavy-tail,ring-of-chords \
        --n 32 --jobs 4 --out MATRIX_results.jsonl
    python -m repro lint src tests benchmarks --strict

``run`` and ``table1`` are thin wrappers over :class:`repro.api.Session`
and print the same row structure the benchmarks and EXPERIMENTS.md use;
``sweep`` fans a whole scenario grid out over worker processes and writes
canonical :class:`~repro.api.RunReport` JSONL (``--out -`` streams the
JSONL to stdout and the human summary to stderr).  With ``--store`` the
sweep also persists every row to a sharded append-only result store the
moment it completes and journals progress to a manifest, so an
interrupted sweep restarts from where it stopped via ``--resume`` —
see docs/OPERATIONS.md.  ``query`` filters/aggregates a store (or a flat
``--out`` JSONL) without pandas.  Algorithms are resolved through
:mod:`repro.registry`, so anything registered there — including
non-Table-1 entries like ``components`` — is runnable by name or alias.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from .analysis.reporting import format_table
from .api import (
    Manifest,
    RunSpec,
    Session,
    WorkerCrashError,
    matrix_grid,
    sweep_grid,
)
from .config import NCCConfig, known_engines
from .errors import ConfigurationError
from .lint import add_lint_arguments
from .lint import run_from_args as _lint_from_args
from .registry import (
    UnknownAlgorithmError,
    algorithm_names,
    bench_config,
    get_algorithm,
    table1_specs,
)
from .scenarios import (
    UnknownScenarioError,
    canonical_scenario_name,
    scenario_names,
)


def _engine_config(args: argparse.Namespace) -> NCCConfig | None:
    """Benchmark-profile config honoring ``--engine`` (None = runner default)."""
    if getattr(args, "engine", None) is None:
        return None
    return bench_config(args.seed, engine=args.engine)


# ----------------------------------------------------------------------
# argparse value parsers (argument errors exit with code 2, no tracebacks)
# ----------------------------------------------------------------------
def _dedup_values(values: list, what: str) -> list:
    """Order-preserving dedupe of one axis list, noting drops on stderr.

    A repeated axis value (``--ns 64,64``) used to multiply the sweep grid
    with identical rows; the grid builder now dedupes too, but the note
    belongs here where the user's literal input is still visible.
    """
    seen: set = set()
    out: list = []
    dropped = 0
    for v in values:
        if v in seen:
            dropped += 1
        else:
            seen.add(v)
            out.append(v)
    if dropped:
        print(
            f"note: ignoring {dropped} duplicate {what} value(s)",
            file=sys.stderr,
        )
    return out


def _ints_arg(text: str) -> list[int]:
    """Comma-separated ints, e.g. ``32,64,128``."""
    try:
        values = [int(x) for x in text.split(",") if x.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a comma-separated list of integers, got {text!r}"
        ) from None
    return _dedup_values(values, "size")


def _seeds_arg(text: str) -> list[int]:
    """Seed list: ``0:5`` (half-open range) or ``0,1,4``."""
    try:
        if ":" in text:
            lo_text, _, hi_text = text.partition(":")
            lo, hi = int(lo_text or 0), int(hi_text)
            if hi <= lo:
                raise argparse.ArgumentTypeError(
                    f"empty seed range {text!r} (want lo:hi with hi > lo)"
                )
            return list(range(lo, hi))
        return _dedup_values(
            [int(x) for x in text.split(",") if x.strip()], "seed"
        )
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected seeds as 'lo:hi' or a comma-separated list, got {text!r}"
        ) from None


def _shards_arg(text: str) -> int:
    """Shard-worker count for the sharded engine: an integer >= 1.
    Validated here so ``--shards banana`` and ``--shards 0`` are argparse
    errors (exit 2), same as every other axis flag."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer shard count, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"shard count must be >= 1, got {value}"
        )
    return value


def _rows_arg(text: str) -> list[str]:
    """Comma-separated Table 1 row keys, e.g. ``MIS,MM``."""
    rows = [r.strip().upper() for r in text.split(",")]
    if text.strip() and any(not r for r in rows):
        raise argparse.ArgumentTypeError(
            f"empty row name in {text!r}; expected e.g. MIS,MM"
        )
    return [r for r in rows if r]


def _names_arg(what: str):
    """Parser factory for a comma-separated name list (the error message
    names the right domain: algorithms for --algos, engines for --engines)."""

    def parse(text: str) -> list[str]:
        names = [x.strip() for x in text.split(",") if x.strip()]
        if not names:
            raise argparse.ArgumentTypeError(
                f"expected a comma-separated list of {what}, got {text!r}"
            )
        return _dedup_values(names, what.rstrip("s"))

    return parse


def _runnable_algorithm(name: str):
    """Resolve a CLI algorithm name to a *runnable* spec or raise
    :class:`UnknownAlgorithmError` with the pick-one-of message (registry
    entries like the ``findmin`` subroutine resolve but cannot run)."""
    alg = get_algorithm(name)  # raises UnknownAlgorithmError with the list
    if not alg.runnable:
        raise UnknownAlgorithmError(
            f"algorithm {name!r} is a {alg.kind}, not independently runnable; "
            f"pick one of {', '.join(sorted(algorithm_names(runnable_only=True)))}"
        )
    return alg


def _print_incidents(command: str, incidents: Sequence[dict]) -> None:
    """Stderr one-liner when a run survived worker crashes (sharded shard
    workers or sweep pool workers).  The canonical outputs stay silent
    about recovery by design — this is the operator-facing surface."""
    if not incidents:
        return
    kinds: dict[str, int] = {}
    for inc in incidents:
        kind = str(inc.get("kind", "incident"))
        kinds[kind] = kinds.get(kind, 0) + 1
    detail = ", ".join(f"{k} x{v}" for k, v in sorted(kinds.items()))
    print(
        f"{command}: survived {len(incidents)} incident(s): {detail}",
        file=sys.stderr,
    )


def _traced_run(session: Session, spec: RunSpec, label: str, path: str):
    """Run one spec under a fresh tracer and write the Chrome trace doc."""
    from .telemetry.export import build_chrome_doc, payload_rows, write_chrome_trace
    from .telemetry.metrics import METRICS, MetricRegistry
    from .telemetry.tracer import Tracer, install_tracer, uninstall_tracer

    counters_before = METRICS.snapshot()
    tracer = Tracer(label=f"run-{label}", scope="run")
    previous = install_tracer(tracer)
    try:
        report = session.run(spec)
    finally:
        uninstall_tracer(previous)
    payload = tracer.to_payload()
    payload["counters"] = MetricRegistry.delta(counters_before, payload["counters"])
    write_chrome_trace(path, build_chrome_doc(payload_rows(payload)))
    return report


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def cmd_info(args: argparse.Namespace) -> int:
    cfg = NCCConfig()
    n = args.n
    rows = [
        ["n", n],
        ["capacity (msgs/node/round)", cfg.capacity(n)],
        ["message size (bits)", cfg.message_bits(n)],
        ["injection batch", cfg.batch_size(n)],
        ["butterfly dimension d", (n.bit_length() - 1) if n > 1 else 0],
        ["round engine", cfg.resolve_engine()],
    ]
    print(format_table(["model parameter", "value"], rows, title=f"NCC model at n={n}"))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    try:
        alg = _runnable_algorithm(args.algorithm)
    except UnknownAlgorithmError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    extras = {}
    if args.family is not None:
        # Deprecated alias of --scenario; only BFS ever grew a family
        # option, so anything else is a hard error instead of the silent
        # drop it used to be.
        if args.scenario is not None:
            print("run: --family is a deprecated alias of --scenario; "
                  "pass only --scenario", file=sys.stderr)
            return 2
        if "family" not in alg.workload_options:
            print(f"run: error: algorithm {alg.name!r} has no --family option "
                  "(deprecated, BFS-only); pick a workload with --scenario "
                  f"(one of: {', '.join(sorted(scenario_names()))})",
                  file=sys.stderr)
            return 2
        print("run: warning: --family is deprecated; use --scenario instead",
              file=sys.stderr)
        extras["family"] = args.family
    session = Session()
    try:
        spec = RunSpec(
            alg.name, args.n, a=args.a, seed=args.seed, engine=args.engine,
            extras=extras, scenario=args.scenario, shards=args.shards,
        )
        if args.trace:
            report = _traced_run(session, spec, alg.name, args.trace)
        else:
            report = session.run(spec)
    except ConfigurationError as exc:
        print(f"run: {exc}", file=sys.stderr)
        return 2
    _print_incidents("run", session.last_incidents)
    if args.trace:
        print(
            f"run: trace written to {args.trace} "
            f"(summarize with `python -m repro trace {args.trace}`)",
            file=sys.stderr,
        )
    row = report.row
    key = alg.table1_key or alg.name
    bound = f" (bound {alg.bound})" if alg.bound else ""
    where = f"{report.spec.scenario} " if report.spec.scenario else ""
    print(
        format_table(
            list(row.keys()),
            [list(row.values())],
            title=f"{key} on {where}n={args.n}{bound}",
        )
    )
    return 0 if row["correct"] else 1


def cmd_table1(args: argparse.Namespace) -> int:
    bounds = {s.table1_key: s.bound for s in table1_specs()}
    rows_req = args.rows if args.rows else sorted(bounds)
    session = Session()
    exit_code = 0
    for name in rows_req:
        if name not in bounds:
            print(f"skipping unknown row {name!r}", file=sys.stderr)
            exit_code = 2
            continue
        try:
            specs = [
                RunSpec(name, n, a=args.a, seed=args.seed, engine=args.engine)
                for n in args.ns
            ]
        except ConfigurationError as exc:
            print(f"table1: {exc}", file=sys.stderr)
            return 2
        results = [session.run(spec).row for spec in specs]
        headers = sorted({k for r in results for k in r})
        print(
            format_table(
                headers,
                [[r.get(h, "") for h in headers] for r in results],
                title=f"T1-{name}  (bound {bounds[name]})",
            )
        )
        print()
        if not all(r["correct"] for r in results):
            exit_code = 1
    return exit_code


def _resolve_scenarios(names: Sequence[str] | None, command: str) -> list[str] | None:
    """Resolve ``--scenarios`` names/aliases (``all`` = every registered
    scenario); prints the clean pick-one-of error and returns None on
    failure."""
    if names is None:
        return None
    if list(names) == ["all"]:
        return list(scenario_names())
    try:
        return [canonical_scenario_name(name) for name in names]
    except UnknownScenarioError as exc:
        print(f"{command}: {exc}", file=sys.stderr)
        return None


def cmd_sweep(args: argparse.Namespace) -> int:
    manifest: "Manifest | str | None"
    if args.resume is not None:
        # The manifest journals the canonical grid, store path, and shard
        # count; the axis flags describe a *new* grid and would silently
        # disagree with it, so reject the telltale one.
        if args.algos is not None:
            print(
                "sweep: --resume reconstructs the grid from the manifest; "
                "drop --algos (and the other axis flags)",
                file=sys.stderr,
            )
            return 2
        try:
            mani = Manifest.load(args.resume)
        except ConfigurationError as exc:
            print(f"sweep: {exc}", file=sys.stderr)
            return 2
        if mani.store is None:
            print(
                f"sweep: manifest {args.resume!r} records no result store; "
                "it cannot be resumed",
                file=sys.stderr,
            )
            return 2
        specs = list(mani.specs)
        store, manifest, shards = mani.store, mani, mani.shards
    else:
        if args.algos is None:
            print(
                "sweep: provide --algos for a new sweep, or "
                "--resume MANIFEST to continue one",
                file=sys.stderr,
            )
            return 2
        try:
            algos = [_runnable_algorithm(name).name for name in args.algos]
        except UnknownAlgorithmError as exc:
            print(f"sweep: {exc}", file=sys.stderr)
            return 2
        for engine in args.engines or ():
            if engine not in known_engines():
                print(
                    f"sweep: unknown engine {engine!r}; choose from "
                    f"{', '.join(sorted(known_engines()))}",
                    file=sys.stderr,
                )
                return 2
        scenarios = _resolve_scenarios(args.scenarios, "sweep")
        if args.scenarios is not None and scenarios is None:
            return 2
        try:
            specs = sweep_grid(
                algos,
                args.ns,
                a=args.a,
                seeds=args.seeds,
                engines=args.engines or [args.engine],
                enforcement=args.enforcement,
                scenarios=scenarios or [None],
                engine_shards=args.engine_shards,
            )
        except ConfigurationError as exc:
            print(f"sweep: {exc}", file=sys.stderr)
            return 2
        if not specs:
            print("sweep: empty grid (no sizes or no seeds)", file=sys.stderr)
            return 2
        store, shards = args.store, args.shards
        manifest = args.manifest
        if manifest is None and store is not None:
            manifest = os.path.join(store, "manifest.jsonl")
        if manifest is not None and store is None:
            print("sweep: --manifest requires --store", file=sys.stderr)
            return 2
    summary_out = sys.stderr if args.out == "-" else sys.stdout
    telemetry = None
    if args.telemetry is not None:
        from .telemetry.sweep import SweepTelemetry

        telemetry = SweepTelemetry(args.telemetry)
    try:
        with Session(pool=args.pool) as session:
            reports = session.run_many(
                specs,
                jobs=args.jobs,
                out=args.out,
                store=store,
                manifest=manifest,
                shards=shards,
                max_rows=args.max_rows,
                telemetry=telemetry,
            )
    except WorkerCrashError as exc:
        # The manifest (if any) journaled every completed row; resuming
        # after fixing the cause recomputes nothing already done.
        print(f"sweep: {exc}", file=sys.stderr)
        return 1
    except ConfigurationError as exc:
        # e.g. an algorithm×scenario pairing the registry rejects — a
        # clean error, not a traceback (`matrix` skips such cells instead).
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    _print_incidents("sweep", session.last_sweep_incidents)
    if telemetry is not None:
        paths = telemetry.finalize()
        print(
            f"sweep: telemetry written to {args.telemetry} "
            f"(summarize with `python -m repro trace {paths['trace']}`)",
            file=sys.stderr,
        )
    if store is not None:
        # Store-backed sweeps are the 10^3..10^4-run path: a per-row table
        # would be unreadable, so print an aggregate status line instead
        # (`repro query` is the drill-down).
        mani_path = manifest.path if isinstance(manifest, Manifest) else manifest
        done, total = len(reports), len(specs)
        failed = sum(1 for r in reports if not r.correct)
        print(
            f"sweep: {done}/{total} runs done ({args.jobs} jobs), "
            f"{failed} incorrect; store {store}",
            file=summary_out,
        )
        if done < total:
            print(
                f"sweep: resume with: python -m repro sweep "
                f"--resume {mani_path}",
                file=summary_out,
            )
    else:
        show_scenario = any(r.spec.scenario for r in reports)
        headers = ["algorithm", "n", "a", "seed", "engine", "rounds",
                   "messages", "correct"]
        if show_scenario:
            headers.insert(1, "scenario")
        print(
            format_table(
                headers,
                [
                    [
                        r.spec.algorithm,
                        *([r.spec.scenario] if show_scenario else []),
                        r.spec.n,
                        r.spec.a,
                        r.spec.seed,
                        r.engine,
                        r.rounds,
                        r.messages,
                        r.correct,
                    ]
                    for r in reports
                ],
                title=f"sweep: {len(reports)} runs ({args.jobs} jobs)",
            ),
            file=summary_out,
        )
    if args.out and args.out != "-":
        print(f"wrote {len(reports)} reports to {args.out}", file=summary_out)
    return 0 if all(r.correct for r in reports) else 1


def cmd_query(args: argparse.Namespace) -> int:
    from .api.store import (
        FIELDS,
        StoreError,
        aggregate,
        field_value,
        filter_reports,
        load_any,
        parse_aggs,
        parse_where,
    )

    try:
        where = parse_where(args.where or [])
        reports = list(filter_reports(load_any(args.path), where))
        if args.jsonl:
            for r in reports:
                print(r.to_json_line())
            return 0
        if args.group_by is not None or args.agg:
            group_by = args.group_by or []
            aggs = parse_aggs(args.agg or ["count"])
            headers, rows = aggregate(reports, group_by, aggs)
            title = f"query: {len(reports)} reports"
        else:
            headers = args.select or [
                "algorithm", "scenario", "n", "seed", "engine",
                "rounds", "messages", "correct",
            ]
            for h in headers:
                if h not in FIELDS:
                    raise StoreError(
                        f"unknown query field {h!r}; known fields: "
                        f"{', '.join(sorted(FIELDS))}"
                    )
            shown = reports if args.limit is None else reports[: args.limit]
            rows = [[field_value(r, h) for h in headers] for r in shown]
            title = f"query: {len(shown)} of {len(reports)} reports"
    except ConfigurationError as exc:
        print(f"query: {exc}", file=sys.stderr)
        return 2
    print(format_table(headers, rows, title=title))
    return 0


def cmd_matrix(args: argparse.Namespace) -> int:
    try:
        if args.algos:
            algos = [_runnable_algorithm(name).name for name in args.algos]
        else:
            algos = list(algorithm_names(runnable_only=True))
    except UnknownAlgorithmError as exc:
        print(f"matrix: {exc}", file=sys.stderr)
        return 2
    scenarios = _resolve_scenarios(args.scenarios or ["all"], "matrix")
    if scenarios is None:
        return 2
    try:
        specs, skipped = matrix_grid(
            algos,
            scenarios,
            n=args.n,
            a=args.a,
            seed=args.seed,
            engine=args.engine,
            enforcement=args.enforcement,
        )
    except ConfigurationError as exc:
        print(f"matrix: {exc}", file=sys.stderr)
        return 2
    if not specs:
        print("matrix: empty grid (every cell incompatible?)", file=sys.stderr)
        return 2
    summary_out = sys.stderr if args.out == "-" else sys.stdout
    reports = Session().run_many(specs, jobs=args.jobs, out=args.out)
    by_cell = {(r.spec.algorithm, r.spec.scenario): r for r in reports}
    rows = []
    for alg in algos:
        cells: list[str] = [alg]
        for scn in scenarios:
            if (alg, scn) in by_cell:
                r = by_cell[(alg, scn)]
                cells.append(str(r.rounds) if r.correct else f"!{r.rounds}")
            else:
                cells.append("-")
        rows.append(cells)
    print(
        format_table(
            ["algorithm \\ scenario", *scenarios],
            rows,
            title=(
                f"matrix: {len(reports)} runs at n={args.n} "
                f"(rounds; '!' = incorrect, '-' = incompatible)"
            ),
        ),
        file=summary_out,
    )
    if skipped:
        print(
            "matrix: skipped incompatible cells: "
            + ", ".join(f"{a}x{s}" for a, s in skipped),
            file=summary_out,
        )
    if args.out and args.out != "-":
        print(f"wrote {len(reports)} reports to {args.out}", file=summary_out)
    return 0 if all(r.correct for r in reports) else 1


def cmd_scenarios(args: argparse.Namespace) -> int:
    from .scenarios import iter_scenarios

    rows = []
    for s in iter_scenarios():
        g = s.guarantees(args.n)
        rows.append([
            s.name,
            g["arboricity"],
            "yes" if g["connected"] else "no",
            "yes" if g["weighted"] else "no",
            g["diameter"],
            g["degrees"],
            s.summary,
        ])
    print(
        format_table(
            ["scenario", f"a<= (n={args.n})", "connected", "weighted",
             "diameter", "degrees", "summary"],
            rows,
            title=f"{len(rows)} registered scenarios",
        )
    )
    return 0


def cmd_separation(args: argparse.Namespace) -> int:
    from .baselines.congested_clique import gossip_congested_clique, gossip_ncc
    from .runtime import NCCRuntime

    rows = []
    for n in args.ns:
        cc = gossip_congested_clique(n)
        rt = NCCRuntime(n, _engine_config(args) or bench_config(args.seed))
        ncc_rounds = gossip_ncc(rt)
        rows.append([n, cc.rounds, int(cc.bits), ncc_rounds, int(rt.net.stats.bits)])
    print(
        format_table(
            ["n", "CC rounds", "CC bits", "NCC rounds", "NCC bits"],
            rows,
            title="Gossip: Congested Clique vs Node-Capacitated Clique",
        )
    )
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    import json

    from .telemetry.export import load_trace, summarize

    try:
        doc = load_trace(args.path)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"trace: {exc}", file=sys.stderr)
        return 2
    print(summarize(doc))
    if args.bounds:
        from .telemetry.bounds import render_bounds

        print()
        print(render_bounds(doc))
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    # Derived at parse time so engines added via register_engine are
    # selectable (the static ENGINE_CHOICES tuple only knows the built-ins).
    engines = sorted(known_engines())

    p = argparse.ArgumentParser(
        prog="repro",
        description="Node-Capacitated Clique reproduction (SPAA 2019)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="print the model parameters for a given n")
    p_info.add_argument("--n", type=int, default=64)
    p_info.set_defaults(fn=cmd_info)

    p_run = sub.add_parser("run", help="run one algorithm and print its row")
    p_run.add_argument("algorithm", help="mst | bfs | mis | matching | coloring | ...")
    p_run.add_argument("--n", type=int, default=48)
    p_run.add_argument("--a", type=int, default=2)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--scenario", default=None,
                       help="workload scenario (see `repro scenarios`), "
                            "e.g. grid, pa-heavy-tail, grid-unique-weights")
    p_run.add_argument("--family", default=None,
                       help="deprecated alias of --scenario "
                            "(BFS-only: forest | grid)")
    p_run.add_argument("--engine", choices=engines, default=None,
                       help="round engine (default: config default)")
    p_run.add_argument("--shards", type=_shards_arg, default=None,
                       help="shard-worker count (implies --engine sharded; "
                            "never changes the run's output — a pure "
                            "performance knob)")
    p_run.add_argument("--trace", default=None, metavar="PATH",
                       help="record a telemetry trace of the run to PATH "
                            "(Chrome trace-event JSON; never changes the "
                            "run's output — view in Perfetto or summarize "
                            "with `repro trace PATH`)")
    p_run.set_defaults(fn=cmd_run)

    p_t1 = sub.add_parser("table1", help="regenerate Table 1 rows")
    p_t1.add_argument("--rows", type=_rows_arg, default=None,
                      help="comma list, e.g. MIS,MM (default all)")
    p_t1.add_argument("--ns", type=_ints_arg, default="32,64",
                      help="comma list of sizes")
    p_t1.add_argument("--a", type=int, default=2)
    p_t1.add_argument("--seed", type=int, default=0)
    p_t1.add_argument("--engine", choices=engines, default=None,
                      help="round engine (default: config default)")
    p_t1.set_defaults(fn=cmd_table1)

    p_sw = sub.add_parser(
        "sweep", help="run a scenario grid in parallel, emit RunReport JSONL"
    )
    p_sw.add_argument("--algos", type=_names_arg("algorithms"), default=None,
                      help="comma list of algorithms, e.g. mst,mis "
                           "(required unless --resume)")
    p_sw.add_argument("--ns", type=_ints_arg, default="32,64",
                      help="comma list of sizes")
    p_sw.add_argument("--a", type=int, default=2)
    p_sw.add_argument("--seeds", type=_seeds_arg, default="0",
                      help="seed range lo:hi (half-open) or comma list")
    p_sw.add_argument("--engine", choices=engines, default=None,
                      help="round engine for every run (default: config default)")
    p_sw.add_argument("--engines", type=_names_arg("engines"), default=None,
                      help="comma list of engines — the grid runs each spec "
                           "under each (overrides --engine)")
    p_sw.add_argument("--scenarios", type=_names_arg("scenarios"), default=None,
                      help="comma list of workload scenarios ('all' = every "
                           "registered family); omit for each algorithm's "
                           "default workload")
    p_sw.add_argument("--engine-shards", type=_shards_arg, default=None,
                      metavar="K",
                      help="shard-worker count for the sharded engine "
                           "(implies --engine sharded for every run; "
                           "distinct from --shards, the store partition "
                           "count)")
    p_sw.add_argument("--enforcement", choices=["strict", "count", "drop"],
                      default=None, help="capacity enforcement (default: count)")
    p_sw.add_argument("--jobs", type=int, default=1,
                      help="worker processes (default 1 = serial)")
    p_sw.add_argument("--pool", choices=["auto", "persistent", "fork"],
                      default="auto",
                      help="parallel backend for --jobs > 1: persistent "
                           "worker service with shared-memory workloads, "
                           "legacy fork-per-sweep pool, or auto-select "
                           "(default: auto)")
    p_sw.add_argument("--out", default=None,
                      help="JSONL output path ('-' = stdout)")
    p_sw.add_argument("--store", default=None, metavar="DIR",
                      help="persist each completed run to a sharded "
                           "append-only result store (durable + resumable; "
                           "query it with `repro query DIR`)")
    p_sw.add_argument("--shards", type=int, default=1,
                      help="store partition count when creating DIR "
                           "(an existing store's count wins; default 1)")
    p_sw.add_argument("--manifest", default=None, metavar="PATH",
                      help="progress journal path (default: "
                           "DIR/manifest.jsonl inside --store)")
    p_sw.add_argument("--resume", default=None, metavar="MANIFEST",
                      help="continue an interrupted sweep: grid, store, and "
                           "completed prefix all come from the manifest")
    p_sw.add_argument("--max-rows", type=int, default=None, metavar="N",
                      help="run at most N rows this invocation, then stop "
                           "(the manifest stays resumable)")
    p_sw.add_argument("--telemetry", default=None, metavar="DIR",
                      help="record per-row telemetry and write a merged "
                           "trace.json / events.jsonl / summary.txt into "
                           "DIR (sidecar only — the canonical JSONL output "
                           "is byte-identical with or without it)")
    p_sw.set_defaults(fn=cmd_sweep)

    p_tr = sub.add_parser(
        "trace",
        help="summarize a telemetry trace (from `run --trace` or "
             "`sweep --telemetry`)",
    )
    p_tr.add_argument("path", help="Chrome trace-event JSON file, e.g. "
                                   "out.json or DIR/trace.json")
    p_tr.add_argument("--bounds", action="store_true",
                      help="compare measured rounds against each "
                           "algorithm's registered Table 1 bound")
    p_tr.set_defaults(fn=cmd_trace)

    p_q = sub.add_parser(
        "query",
        help="filter/aggregate a result store or RunReport JSONL file",
    )
    p_q.add_argument("path", help="store directory (from sweep --store) or "
                                  "flat JSONL file (from sweep --out)")
    p_q.add_argument("--where", action="append", default=None,
                     metavar="FIELD=VALUE",
                     help="keep reports where FIELD equals VALUE (JSON "
                          "scalar or string; repeatable, terms AND)")
    p_q.add_argument("--select", type=_names_arg("fields"), default=None,
                     help="comma list of columns for the per-report table")
    p_q.add_argument("--group-by", type=_names_arg("fields"), default=None,
                     help="comma list of fields to group aggregates by")
    p_q.add_argument("--agg", action="append", default=None,
                     metavar="FN:FIELD",
                     help="aggregate per group: count, or fn:field with fn "
                          "in sum,min,max,mean (repeatable; default count)")
    p_q.add_argument("--limit", type=int, default=None,
                     help="cap the per-report table at N rows")
    p_q.add_argument("--jsonl", action="store_true",
                     help="emit matching reports as canonical JSONL instead "
                          "of a table")
    p_q.set_defaults(fn=cmd_query)

    p_mx = sub.add_parser(
        "matrix",
        help="run an algorithm x scenario grid at one n, emit RunReport JSONL",
    )
    p_mx.add_argument("--algos", type=_names_arg("algorithms"), default=None,
                      help="comma list of algorithms (default: all runnable)")
    p_mx.add_argument("--scenarios", type=_names_arg("scenarios"), default=None,
                      help="comma list of scenarios (default: all registered)")
    p_mx.add_argument("--n", type=int, default=32)
    p_mx.add_argument("--a", type=int, default=2)
    p_mx.add_argument("--seed", type=int, default=0)
    p_mx.add_argument("--engine", choices=engines, default=None,
                      help="round engine for every run (default: config default)")
    p_mx.add_argument("--enforcement", choices=["strict", "count", "drop"],
                      default=None, help="capacity enforcement (default: count)")
    p_mx.add_argument("--jobs", type=int, default=1,
                      help="worker processes (default 1 = serial)")
    p_mx.add_argument("--out", default=None,
                      help="JSONL output path ('-' = stdout)")
    p_mx.set_defaults(fn=cmd_matrix)

    p_sc = sub.add_parser(
        "scenarios", help="list registered scenarios and their guarantees"
    )
    p_sc.add_argument("--n", type=int, default=64,
                      help="reference n for the displayed arboricity bounds")
    p_sc.set_defaults(fn=cmd_scenarios)

    p_lint = sub.add_parser(
        "lint",
        help="reprolint: statically check the repo's determinism, "
             "hot-path, and registry invariants",
    )
    add_lint_arguments(p_lint)
    p_lint.set_defaults(fn=_lint_from_args)

    p_sep = sub.add_parser("separation", help="gossip model-separation table")
    p_sep.add_argument("--ns", type=_ints_arg, default="32,64,128")
    p_sep.add_argument("--seed", type=int, default=0)
    p_sep.add_argument("--engine", choices=engines, default=None,
                       help="round engine (default: config default)")
    p_sep.set_defaults(fn=cmd_separation)

    return p


def main(argv: Sequence[str] | None = None) -> int:
    # argparse runs type= converters on string defaults too, so the
    # "32,64"-style defaults above arrive here already parsed.
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Downstream pager/head closed stdout; this is a normal way to
        # consume table output, not an error.  Point stdout at devnull so
        # the interpreter's exit-time flush doesn't raise a second time.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
