"""Command-line interface: run algorithms and regenerate Table 1 rows.

Usage::

    python -m repro info --n 64
    python -m repro run mst --n 48 --a 2 --seed 1
    python -m repro run mis --n 64 --family grid
    python -m repro run mst --n 48 --engine batched
    python -m repro table1 --rows MIS,MM --ns 32,64 --a 2
    python -m repro separation --ns 32,64,128

Everything prints the same row structure the benchmarks and EXPERIMENTS.md
use, so the CLI is the quickest way to poke at a single configuration.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .analysis import tables
from .analysis.reporting import format_table
from .config import ENGINE_CHOICES, NCCConfig


def _engine_config(args: argparse.Namespace) -> NCCConfig | None:
    """Benchmark-profile config honoring ``--engine`` (None = runner default)."""
    if getattr(args, "engine", None) is None:
        return None
    return tables.bench_config(args.seed, engine=args.engine)


def _parse_ints(text: str) -> list[int]:
    return [int(x) for x in text.split(",") if x.strip()]


def cmd_info(args: argparse.Namespace) -> int:
    cfg = NCCConfig()
    n = args.n
    rows = [
        ["n", n],
        ["capacity (msgs/node/round)", cfg.capacity(n)],
        ["message size (bits)", cfg.message_bits(n)],
        ["injection batch", cfg.batch_size(n)],
        ["butterfly dimension d", (n.bit_length() - 1) if n > 1 else 0],
        ["round engine", cfg.resolve_engine()],
    ]
    print(format_table(["model parameter", "value"], rows, title=f"NCC model at n={n}"))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    key = args.algorithm.upper()
    aliases = {"MATCHING": "MM", "COLORING": "COL"}
    key = aliases.get(key, key)
    runner = tables.TABLE1_RUNNERS.get(key)
    if runner is None:
        print(f"unknown algorithm {args.algorithm!r}; pick one of "
              f"{', '.join(sorted(tables.TABLE1_RUNNERS))}", file=sys.stderr)
        return 2
    kwargs = {}
    if key == "BFS" and args.family:
        kwargs["family"] = args.family
    config = _engine_config(args)
    if config is not None:
        kwargs["config"] = config
    row = runner(args.n, a=args.a, seed=args.seed, **kwargs)
    print(format_table(
        list(row.keys()),
        [list(row.values())],
        title=f"{key} on n={args.n} (bound {tables.TABLE1_BOUNDS[key]})",
    ))
    return 0 if row["correct"] else 1


def cmd_table1(args: argparse.Namespace) -> int:
    rows_req = [r.strip().upper() for r in args.rows.split(",")] if args.rows else sorted(
        tables.TABLE1_RUNNERS
    )
    ns = _parse_ints(args.ns)
    sweep_kwargs = {}
    config = _engine_config(args)
    if config is not None:
        sweep_kwargs["config"] = config
    exit_code = 0
    for name in rows_req:
        runner = tables.TABLE1_RUNNERS.get(name)
        if runner is None:
            print(f"skipping unknown row {name!r}", file=sys.stderr)
            exit_code = 2
            continue
        results = tables.sweep(runner, ns, a=args.a, seeds=[args.seed], **sweep_kwargs)
        headers = sorted({k for r in results for k in r})
        print(
            format_table(
                headers,
                [[r.get(h, "") for h in headers] for r in results],
                title=f"T1-{name}  (bound {tables.TABLE1_BOUNDS[name]})",
            )
        )
        print()
        if not all(r["correct"] for r in results):
            exit_code = 1
    return exit_code


def cmd_separation(args: argparse.Namespace) -> int:
    from .baselines.congested_clique import gossip_congested_clique, gossip_ncc
    from .runtime import NCCRuntime

    rows = []
    for n in _parse_ints(args.ns):
        cc = gossip_congested_clique(n)
        rt = NCCRuntime(n, _engine_config(args) or tables.bench_config(args.seed))
        ncc_rounds = gossip_ncc(rt)
        rows.append([n, cc.rounds, int(cc.bits), ncc_rounds, int(rt.net.stats.bits)])
    print(
        format_table(
            ["n", "CC rounds", "CC bits", "NCC rounds", "NCC bits"],
            rows,
            title="Gossip: Congested Clique vs Node-Capacitated Clique",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Node-Capacitated Clique reproduction (SPAA 2019)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="print the model parameters for a given n")
    p_info.add_argument("--n", type=int, default=64)
    p_info.set_defaults(fn=cmd_info)

    p_run = sub.add_parser("run", help="run one algorithm and print its row")
    p_run.add_argument("algorithm", help="mst | bfs | mis | matching | coloring")
    p_run.add_argument("--n", type=int, default=48)
    p_run.add_argument("--a", type=int, default=2)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--family", default=None, help="BFS workload: forest | grid")
    p_run.add_argument("--engine", choices=list(ENGINE_CHOICES), default=None,
                       help="round engine (default: config default)")
    p_run.set_defaults(fn=cmd_run)

    p_t1 = sub.add_parser("table1", help="regenerate Table 1 rows")
    p_t1.add_argument("--rows", default=None, help="comma list, e.g. MIS,MM (default all)")
    p_t1.add_argument("--ns", default="32,64", help="comma list of sizes")
    p_t1.add_argument("--a", type=int, default=2)
    p_t1.add_argument("--seed", type=int, default=0)
    p_t1.add_argument("--engine", choices=list(ENGINE_CHOICES), default=None,
                      help="round engine (default: config default)")
    p_t1.set_defaults(fn=cmd_table1)

    p_sep = sub.add_parser("separation", help="gossip model-separation table")
    p_sep.add_argument("--ns", default="32,64,128")
    p_sep.add_argument("--seed", type=int, default=0)
    p_sep.add_argument("--engine", choices=list(ENGINE_CHOICES), default=None,
                       help="round engine (default: config default)")
    p_sep.set_defaults(fn=cmd_separation)

    return p


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
