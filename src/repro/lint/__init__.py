"""reprolint — AST-checked invariants for the NCC reproduction repo.

The repo's load-bearing contracts (byte-determinism, zero-construction
hot paths, registry discipline, canonical schemas, engine parity, pool
fork-safety) are enforced dynamically by the test suite — but only on
the inputs the tests happen to exercise.  ``reprolint`` makes them
*statically* checkable: every rule is an AST visitor over a single
shared parse per file, registered the same way algorithms register with
:mod:`repro.registry`, and wired into ``python -m repro lint``.

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue and the
shrink-only baseline workflow.
"""

from .baseline import BaselineError
from .rules import (
    FileContext,
    Finding,
    Rule,
    UnknownRuleError,
    get_rule,
    iter_rules,
    register_rule,
    rule_ids,
)
from .runner import (
    LintResult,
    UsageError,
    add_lint_arguments,
    discover,
    main,
    run_from_args,
    run_paths,
)

__all__ = [
    "BaselineError",
    "FileContext",
    "Finding",
    "LintResult",
    "Rule",
    "UnknownRuleError",
    "UsageError",
    "add_lint_arguments",
    "discover",
    "get_rule",
    "iter_rules",
    "main",
    "register_rule",
    "rule_ids",
    "run_from_args",
    "run_paths",
]
