"""Standalone entry point: ``python -m repro.lint [paths...]``."""

import sys

from .runner import main

sys.exit(main())
