"""NCC003 — registry discipline: one source of truth for algorithms.

Guards the ROADMAP "Experiment surface" invariant: all algorithm
consumers resolve through :mod:`repro.registry`, and the deprecated
``analysis.tables.TABLE1_RUNNERS`` shim is frozen — referenced only by
the shim module itself and the tests that pin its byte-compatibility.
Two checks:

* every module under ``repro/algorithms/`` (and the scenario family
  catalog ``repro/scenarios/families.py``) must self-register via the
  ``@register_algorithm`` / ``register_scenario`` decorators — an
  algorithm module that forgets is silently invisible to the CLI, the
  sweep driver, the parity harness, and the oracle-check suite;
* any new reference to ``TABLE1_RUNNERS`` outside the shim and its
  pinned tests is flagged (resolve through ``repro.registry`` instead).
"""

from __future__ import annotations

import ast
from typing import Iterator

from . import FileContext, Finding, Rule, register_rule

#: files allowed to reference the frozen TABLE1_RUNNERS shim: the shim
#: itself plus the tests pinning its byte-compatibility surface.
SHIM_ALLOWLIST = (
    "repro/analysis/tables.py",
    "tests/test_tables.py",
    "tests/test_registry.py",
    "tests/test_cli.py",
)

#: (path predicate suffix-dir, required registration callable)
SELF_REGISTERING = (
    ("repro/algorithms/", "register_algorithm"),
    ("repro/scenarios/families.py", "register_scenario"),
)


@register_rule
class NCC003RegistryDiscipline(Rule):
    id = "NCC003"
    name = "registry-discipline"
    invariant = (
        "experiment surface: consumers resolve algorithms through "
        "registry.py; TABLE1_RUNNERS stays a frozen deprecation shim"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._check_self_registration(ctx)
        if not ctx.path_is(*SHIM_ALLOWLIST):
            yield from self._check_shim_references(ctx)

    # ------------------------------------------------------------------
    def _check_self_registration(self, ctx: FileContext) -> Iterator[Finding]:
        p = ctx.effective_path
        if p.endswith("__init__.py"):
            return
        for marker, register_fn in SELF_REGISTERING:
            if marker.endswith("/"):
                applies = ("/" + marker) in ("/" + p) and p.endswith(".py")
            else:
                applies = ctx.path_is(marker)
            if not applies:
                continue
            names = {
                node.id for node in ast.walk(ctx.tree)
                if isinstance(node, ast.Name)
            } | {
                node.attr for node in ast.walk(ctx.tree)
                if isinstance(node, ast.Attribute)
            }
            if register_fn not in names:
                yield self.finding(
                    ctx, None,
                    f"module does not self-register via @{register_fn}; "
                    "unregistered entries are invisible to the CLI, sweeps, "
                    "the parity harness, and the oracle-check suite",
                    line=1,
                )
            return

    def _check_shim_references(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "TABLE1_RUNNERS":
                        yield self.finding(
                            ctx, node,
                            "import of the frozen TABLE1_RUNNERS shim; "
                            "resolve through repro.registry.get_algorithm",
                        )
            elif isinstance(node, ast.Attribute) and node.attr == "TABLE1_RUNNERS":
                yield self.finding(
                    ctx, node,
                    "reference to the frozen TABLE1_RUNNERS shim; resolve "
                    "through repro.registry.get_algorithm",
                )
