"""NCC004 — canonical-schema freeze: frozen specs, sorted canonical JSON.

Guards the ROADMAP "Experiment surface" invariant's schema half:
``RunSpec``/``RunReport`` are frozen dataclasses whose canonical JSONL is
byte-deterministic.  Two checks:

* ``object.__setattr__`` — the only way to mutate a frozen dataclass —
  is confined to ``api/schema.py`` (``RunSpec.__post_init__``
  canonicalization) and ``config.py`` (``NCCConfig``'s own
  ``__post_init__``); anywhere else it is someone editing a frozen spec
  after construction, which silently breaks content-hash identity;
* in the canonical-serialization modules (``api/schema.py``,
  ``api/manifest.py``, ``api/store.py``, and the telemetry trace writer
  ``telemetry/export.py`` — trace documents are diffed across runs by
  the determinism tests) every ``json.dumps``/``dump`` call must pass
  ``sort_keys=True`` — Python dict order is insertion order, so an
  unsorted dump bakes incidental construction order into bytes that
  manifests and stores compare and content-hash.
"""

from __future__ import annotations

import ast
from typing import Iterator

from . import FileContext, Finding, Rule, register_rule

#: modules allowed to call object.__setattr__ (their own frozen
#: dataclasses' __post_init__ canonicalization).
SETATTR_ALLOWLIST = ("repro/api/schema.py", "repro/config.py")

#: modules whose JSON output is canonical (compared/hashed as bytes).
CANONICAL_MODULES = (
    "repro/api/schema.py",
    "repro/api/manifest.py",
    "repro/api/store.py",
    "repro/telemetry/export.py",
)


@register_rule
class NCC004SchemaFreeze(Rule):
    id = "NCC004"
    name = "canonical-schema-freeze"
    invariant = (
        "experiment surface: RunSpec/RunReport JSONL is canonical and "
        "byte-deterministic (frozen specs, sorted keys)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        check_dumps = ctx.path_is(*CANONICAL_MODULES)
        check_setattr = not ctx.path_is(*SETATTR_ALLOWLIST)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                check_setattr
                and isinstance(func, ast.Attribute)
                and func.attr == "__setattr__"
                and isinstance(func.value, ast.Name)
                and func.value.id == "object"
            ):
                yield self.finding(
                    ctx, node,
                    "object.__setattr__ mutates a frozen schema object; "
                    "attribute writes are confined to api/schema.py "
                    "(use RunSpec.with_(...) to derive a changed spec)",
                )
            elif check_dumps and (
                ctx.resolves_to(func, "json.dumps")
                or ctx.resolves_to(func, "json.dump")
            ):
                if not self._has_sorted_keys(node):
                    yield self.finding(
                        ctx, node,
                        "json.dump(s) in a canonical-serialization module "
                        "must pass sort_keys=True (dict order is insertion "
                        "order and is not canonical)",
                    )

    @staticmethod
    def _has_sorted_keys(node: ast.Call) -> bool:
        for kw in node.keywords:
            if kw.arg == "sort_keys":
                return (
                    isinstance(kw.value, ast.Constant) and kw.value.value is True
                )
            if kw.arg is None:  # **kwargs — can't see inside; trust it
                return True
        return False
