"""NCC006 — pool fork-safety: no ambient state in the worker surface.

Guards the persistent-pool determinism story (ROADMAP "Experiment
surface"; docs/OPERATIONS.md): ``api/pool.py`` workers are spawned once
per Session and live across ``run_many`` calls, and the fork pool
inherits parent memory at fork time.  A mutable module-level container
in the worker-imported ``repro.api`` surface is state that (a) diverges
between parent and child after fork, and (b) survives across jobs inside
one worker — either way a run stops being a pure function of its spec.
A lazily-opened module-level handle (``open(...)`` at import time) is
worse: after fork, parent and child share one file offset.

Scope: the ``repro/api/`` package (the surface every sweep worker
imports) and the ``repro/ncc/sharded/`` package (the shard-pool
parent/worker surface — the same fork-inheritance hazards apply to the
per-round block workers).  Flags module-level assignments of mutable
containers (list/dict/set
displays and comprehensions, ``list()``/``dict()``/``set()``/
``defaultdict()``/``deque()``/``Counter()``/``OrderedDict()`` calls) and
module-level ``open(...)`` calls.  Scalars and immutable tuples are fine
(``MAX_REQUEUES = 2``, ``POOL_KINDS = (...)``); worker-local *instance*
state lives on objects constructed after fork.  Dunder names
(``__all__``) and ALL_CAPS constant-convention names (``FIELDS = {...}``
lookup tables, written once at import and only ever read) are exempt —
the rule targets *accumulating* state, not frozen tables that merely
lack a frozen spelling.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from . import FileContext, Finding, Rule, register_rule

MUTABLE_CONSTRUCTORS = frozenset({
    "Counter", "OrderedDict", "defaultdict", "deque", "dict", "list", "set",
})

#: constant-convention names: write-once lookup tables, not ambient state.
CONSTANT_NAME = re.compile(r"^_?[A-Z][A-Z0-9_]*$")


@register_rule
class NCC006PoolForkSafety(Rule):
    id = "NCC006"
    name = "pool-fork-safety"
    invariant = (
        "sweep service: a run is a pure function of its spec — worker "
        "processes hold no ambient module-level state or shared handles"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        path = "/" + ctx.effective_path
        if "/repro/api/" not in path and "/repro/ncc/sharded/" not in path:
            return
        yield from self._module_level(ctx, ctx.tree.body)

    # ------------------------------------------------------------------
    def _module_level(
        self, ctx: FileContext, body: list[ast.stmt]
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, (ast.If, ast.Try)):
                for inner in ast.iter_child_nodes(stmt):
                    if isinstance(inner, ast.stmt):
                        yield from self._module_level(ctx, [inner])
                continue
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                if all(self._is_exempt_name(t) for t in targets):
                    continue
                value = stmt.value
                if value is not None and self._is_mutable_container(value):
                    yield self.finding(
                        ctx, stmt,
                        "mutable module-level container in the worker import "
                        "surface; fork/persistent workers would share or "
                        "diverge on it — hold state on per-run objects",
                    )
            if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.Expr)):
                value = getattr(stmt, "value", None)
                if (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id == "open"
                ):
                    yield self.finding(
                        ctx, stmt,
                        "module-level open() in the worker import surface; "
                        "after fork, parent and workers share one file "
                        "offset — open handles per run instead",
                    )

    @staticmethod
    def _is_exempt_name(target: ast.expr) -> bool:
        if not isinstance(target, ast.Name):
            return False
        name = target.id
        is_dunder = name.startswith("__") and name.endswith("__")
        return is_dunder or CONSTANT_NAME.match(name) is not None

    @staticmethod
    def _is_mutable_container(value: ast.expr) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set,
                              ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            func = value.func
            name = (
                func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None
            )
            return name in MUTABLE_CONSTRUCTORS
        return False
