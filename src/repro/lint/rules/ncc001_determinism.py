"""NCC001 — determinism: no ambient entropy in the library.

Guards the repo-wide byte-determinism contract (ROADMAP "Experiment
surface": jobs=1 ≡ jobs=N byte-identical JSONL; canonical output is a
pure function of the spec).  Three families of violation:

* **Unrouted RNG construction** — library code must build its streams
  through the sanctioned constructors (:func:`repro.seeding.seeded_rng` /
  ``derived_rng``, re-exported by :mod:`repro.rng`), never
  ``random.Random`` directly; zero-argument ``random.Random()`` (OS
  entropy) and ``random.SystemRandom`` are flagged everywhere, including
  tests and benchmarks.
* **Global-RNG module calls** — ``random.randrange(...)`` etc. draw from
  the interpreter-global stream, which any import can perturb.
* **Wall-clock / OS entropy** — ``time.time()``, ``datetime.now()``,
  ``os.urandom``, ``uuid.uuid1/4``, ``secrets.*`` outside the allowlist
  (the sweep manifest journals real timestamps; benchmarks measure real
  time).
* **Monotonic-clock containment** — ``time.perf_counter``/``monotonic``
  cannot perturb canonical bytes directly (timings stay out of canonical
  JSONL by schema design), but a reading taken in library code is one
  conditional away from becoming one.  All library timing flows through
  the telemetry subsystem (``repro/telemetry/``) or the ``RunReport``
  wall field stamped in ``api/session.py``; benchmarks and tests time
  freely.
* **Set-literal iteration** — ``for x in {...}`` in library code is
  hash-order dependent (string hashing is salted per process), so any
  set-literal walk feeding canonical output is a reproducibility bug.
"""

from __future__ import annotations

import ast
from typing import Iterator

from . import FileContext, Finding, Rule, register_rule

#: module-level functions of the interpreter-global random stream.
GLOBAL_RANDOM_FNS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate", "weibullvariate",
})

#: wall-clock / entropy calls needing an allowlist entry.
WALLCLOCK_CALLS = ("time.time", "time.time_ns", "os.urandom",
                   "uuid.uuid1", "uuid.uuid4")

#: modules allowed to read the wall clock: the sweep manifest journals
#: real timestamps (events carry ``ts`` keys; canonical RunReport JSONL
#: never does), and benchmarks measure real elapsed time.
WALLCLOCK_ALLOWLIST = ("repro/api/manifest.py",)

#: monotonic/perf-counter readings needing a containment entry.
MONOTONIC_CALLS = ("time.perf_counter", "time.perf_counter_ns",
                   "time.monotonic", "time.monotonic_ns")

#: the one non-telemetry library module allowed to read the monotonic
#: clock: ``Session.run`` stamps the RunReport wall field (a
#: timing-extras key, excluded from canonical JSONL by schema design).
MONOTONIC_ALLOWLIST = ("repro/api/session.py",)

#: the telemetry package owns all other library timing.
TELEMETRY_DIR = "telemetry"

#: the one module allowed to call ``random.Random`` directly.
SEEDING_MODULE = "repro/seeding.py"


@register_rule
class NCC001Determinism(Rule):
    id = "NCC001"
    name = "determinism"
    invariant = (
        "byte-determinism: canonical output is a pure function of the "
        "RunSpec (seeded RNG streams only, no wall clock, no hash-order)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        wallclock_ok = ctx.path_is(*WALLCLOCK_ALLOWLIST) or ctx.under("benchmarks")
        monotonic_ok = (
            not ctx.in_library
            or ctx.path_is(*MONOTONIC_ALLOWLIST)
            or ctx.under(TELEMETRY_DIR)
        )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, wallclock_ok, monotonic_ok)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if isinstance(node.iter, ast.Set) and ctx.in_library:
                    yield self.finding(
                        ctx, node,
                        "iteration over a set literal is hash-order "
                        "dependent; iterate a sorted() or tuple literal",
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                if ctx.in_library:
                    for gen in node.generators:
                        if isinstance(gen.iter, ast.Set):
                            yield self.finding(
                                ctx, gen.iter,
                                "comprehension over a set literal is "
                                "hash-order dependent; use a sorted() or "
                                "tuple literal",
                            )

    # ------------------------------------------------------------------
    def _check_call(
        self, ctx: FileContext, node: ast.Call, wallclock_ok: bool,
        monotonic_ok: bool,
    ) -> Iterator[Finding]:
        func = node.func
        if not monotonic_ok:
            for dotted in MONOTONIC_CALLS:
                if ctx.resolves_to(func, dotted):
                    yield self.finding(
                        ctx, node,
                        f"{dotted}() in library code; timing belongs to the "
                        "telemetry subsystem (repro/telemetry/) or the "
                        "session wall stamp — canonical output must never "
                        "depend on a clock reading",
                    )
                    return
        # random.Random / random.SystemRandom construction
        if ctx.resolves_to(func, "random.Random"):
            if not node.args and not node.keywords:
                yield self.finding(
                    ctx, node,
                    "unseeded random.Random() seeds from OS entropy; "
                    "pass an explicit seed derived from the master seed",
                )
            elif ctx.in_library and not ctx.path_is(SEEDING_MODULE):
                yield self.finding(
                    ctx, node,
                    "construct RNG streams through repro.rng.seeded_rng / "
                    "derived_rng (repro.seeding), not random.Random directly",
                )
            return
        if ctx.resolves_to(func, "random.SystemRandom"):
            yield self.finding(
                ctx, node, "random.SystemRandom is OS entropy; derive a "
                "seeded stream via repro.rng.seeded_rng instead",
            )
            return
        # module-level calls on the interpreter-global random stream
        for fn in GLOBAL_RANDOM_FNS:
            if ctx.resolves_to(func, f"random.{fn}"):
                yield self.finding(
                    ctx, node,
                    f"random.{fn}() draws from the interpreter-global "
                    "stream; use a repro.rng.seeded_rng(...) instance",
                )
                return
        # wall clock / entropy
        if not wallclock_ok:
            for dotted in WALLCLOCK_CALLS:
                if ctx.resolves_to(func, dotted):
                    yield self.finding(
                        ctx, node,
                        f"{dotted}() is nondeterministic wall-clock/entropy; "
                        "allowed only in the manifest journal and benchmarks",
                    )
                    return
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("now", "utcnow", "today")
                and self._mentions_datetime(ctx, func.value)
            ):
                yield self.finding(
                    ctx, node,
                    f"datetime.{func.attr}() is nondeterministic wall clock; "
                    "allowed only in the manifest journal and benchmarks",
                )
            elif isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name
            ) and ctx.imports.get(func.value.id) == "secrets":
                yield self.finding(
                    ctx, node,
                    f"secrets.{func.attr}() is OS entropy; derive a seeded "
                    "stream via repro.rng.seeded_rng instead",
                )

    @staticmethod
    def _mentions_datetime(ctx: FileContext, value: ast.expr) -> bool:
        """True for ``datetime.now(...)`` receivers: the ``datetime`` class
        (from-import) or the ``datetime.datetime`` attribute chain."""
        if isinstance(value, ast.Name):
            origin = ctx.imports.get(value.id, "")
            return origin == "datetime" or origin.endswith("datetime.datetime")
        if isinstance(value, ast.Attribute) and isinstance(value.value, ast.Name):
            return (
                value.attr in ("datetime", "date")
                and ctx.imports.get(value.value.id) == "datetime"
            )
        return False
