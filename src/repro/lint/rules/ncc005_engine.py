"""NCC005 — engine-parity locality: round semantics live in one place.

Guards the ROADMAP "Engine parity" invariant: the engines are observably
indistinguishable because any change to round semantics lands in the
shared canonical walks (``RoundEngine._send_walk`` / ``_recv_walk``) in
``ncc/engine.py`` — never in one engine.  Statically:

* **defining** (or overriding) ``_send_walk``/``_recv_walk`` anywhere but
  ``ncc/engine.py`` is flagged — an engine subclass shadowing a walk
  forks the semantics and the differential parity harness only catches
  it on the inputs it happens to replay;
* **referencing** the walk internals from outside the engine module set
  (``ncc/engine.py`` defines them, ``ncc/batched.py`` and
  ``ncc/sharded/engine.py`` drive them over columns) is flagged —
  primitives and tests must go through the public ``exchange`` surface so
  all three enforcement modes stay equivalent.
"""

from __future__ import annotations

import ast
from typing import Iterator

from . import FileContext, Finding, Rule, register_rule

WALKS = ("_send_walk", "_recv_walk")

#: where the canonical walks may be *defined*.
DEFINING_MODULE = "repro/ncc/engine.py"

#: the engine modules allowed to *call* the walk internals.
ENGINE_MODULES = (
    "repro/ncc/engine.py",
    "repro/ncc/batched.py",
    "repro/ncc/sharded/engine.py",
)


@register_rule
class NCC005EngineParityLocality(Rule):
    id = "NCC005"
    name = "engine-parity-locality"
    invariant = (
        "engine parity: round semantics change only in the shared "
        "canonical walks in ncc/engine.py, never in one engine"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        may_define = ctx.path_is(DEFINING_MODULE)
        may_reference = ctx.path_is(*ENGINE_MODULES)
        if may_define and may_reference:
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in WALKS
                and not may_define
            ):
                yield self.finding(
                    ctx, node,
                    f"defining {node.name} outside ncc/engine.py forks the "
                    "round semantics; change the shared canonical walk "
                    "instead so every engine inherits it",
                )
            elif (
                isinstance(node, ast.Attribute)
                and node.attr in WALKS
                and not may_reference
            ):
                yield self.finding(
                    ctx, node,
                    f"{node.attr} is a walk internal of the engine module "
                    "set; go through the public exchange surface",
                )
