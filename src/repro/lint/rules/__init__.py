"""The reprolint rule registry: plugin AST visitors over one shared parse.

Mirrors :mod:`repro.registry`: every rule module registers itself on
import via the :func:`register_rule` decorator, and every consumer — the
runner, the CLI's ``--select``/``--list-rules``, the docs generator in
``docs/STATIC_ANALYSIS.md`` — resolves rules through :func:`iter_rules` /
:func:`get_rule`.  A rule is a class with

* ``id`` — the stable finding code (``"NCC001"``…), used by baselines and
  ``# reprolint: disable=`` suppressions;
* ``name`` / ``invariant`` — a short slug and the ROADMAP invariant the
  rule guards (printed by ``--list-rules`` and the docs);
* ``check(ctx)`` — yields :class:`Finding`\\ s for one parsed file.

Rules never parse source themselves: the runner parses each file exactly
once into a :class:`FileContext` (AST + source lines + import map) and
hands the same context to every rule.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from importlib import import_module
from typing import Iterator

from ...errors import ConfigurationError

#: Rule modules that self-register on import (registration order fixes the
#: ``--list-rules`` order; finding order is position-sorted regardless).
_RULE_MODULES = (
    "repro.lint.rules.ncc001_determinism",
    "repro.lint.rules.ncc002_hotpath",
    "repro.lint.rules.ncc003_registry",
    "repro.lint.rules.ncc004_schema",
    "repro.lint.rules.ncc005_engine",
    "repro.lint.rules.ncc006_forksafety",
)

_RULES: dict[str, "Rule"] = {}
_loaded = False


class UnknownRuleError(ConfigurationError):
    """Raised when a ``--select`` name resolves to no registered rule."""


# ----------------------------------------------------------------------
# Findings and per-file context
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Finding:
    """One rule violation at a source position."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    @property
    def baseline_key(self) -> str:
        """Baseline bucket: findings are grandfathered per (file, rule),
        not per line, so unrelated edits moving a violation do not churn
        the baseline file."""
        return f"{self.path}::{self.rule}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


#: first-lines directive letting a fixture snippet be linted *as if* it
#: lived at a library path (rule scoping is path-based; the corpus under
#: ``tests/lint_fixtures/`` uses this to exercise path-scoped rules).
PATH_DIRECTIVE = "# reprolint: path="


@dataclass
class FileContext:
    """One parsed file, shared by every rule (single parse per file)."""

    #: path as discovered/given (repo-relative in normal runs).
    path: str
    #: path used for rule scoping — differs from ``path`` only when the
    #: file carries a ``# reprolint: path=`` fixture directive.
    effective_path: str
    tree: ast.Module
    lines: list[str]
    _imports: dict[str, str] | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    @property
    def imports(self) -> dict[str, str]:
        """Local name -> dotted origin, for module aliases and from-imports.

        ``import random`` -> ``{"random": "random"}``;
        ``import numpy as np`` -> ``{"np": "numpy"}``;
        ``from random import Random as R`` -> ``{"R": "random.Random"}``.
        Relative imports keep their leading dots (``from ..rng import x``
        -> ``{"x": "..rng.x"}``), enough for suffix matching.
        """
        if self._imports is None:
            mapping: dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        mapping[alias.asname or alias.name.split(".")[0]] = (
                            alias.name if alias.asname else alias.name.split(".")[0]
                        )
                elif isinstance(node, ast.ImportFrom):
                    prefix = "." * node.level + (node.module or "")
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        mapping[alias.asname or alias.name] = (
                            f"{prefix}.{alias.name}" if prefix else alias.name
                        )
            self._imports = mapping
        return self._imports

    # ------------------------------------------------------------------
    def path_is(self, *suffixes: str) -> bool:
        """True when the effective path ends with any given posix suffix
        (matched at a path-component boundary)."""
        p = self.effective_path
        for suffix in suffixes:
            if p == suffix or p.endswith("/" + suffix):
                return True
        return False

    def under(self, *dirnames: str) -> bool:
        """True when any path component equals one of ``dirnames``."""
        parts = self.effective_path.split("/")
        return any(d in parts for d in dirnames)

    @property
    def in_library(self) -> bool:
        """True for files in the installed library (``src/repro/...``)."""
        return "repro" in self.effective_path.split("/") and not self.under(
            "tests", "benchmarks", "examples"
        )

    def resolves_to(self, node: ast.expr, dotted: str) -> bool:
        """True when ``node`` is a reference to ``dotted`` (alias-aware).

        Handles ``Name`` (from-imports / module aliases) and one-level
        ``Attribute`` chains (``module.attr``), which covers every pattern
        the rules care about (``random.Random``, ``json.dumps``, ...).
        """
        want_module, _, want_attr = dotted.rpartition(".")
        if isinstance(node, ast.Name):
            origin = self.imports.get(node.id)
            return origin is not None and (
                origin == dotted or origin.endswith("." + dotted)
            )
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.attr != want_attr:
                return False
            origin = self.imports.get(node.value.id)
            return origin is not None and (
                origin == want_module or origin.endswith("." + want_module)
            )
        return False


# ----------------------------------------------------------------------
# The rule protocol and registration
# ----------------------------------------------------------------------
class Rule:
    """Base class: subclasses set the metadata and implement :meth:`check`."""

    id: str = ""
    name: str = ""
    #: the ROADMAP invariant this rule makes statically checkable.
    invariant: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    # Convenience for subclasses.
    def finding(
        self, ctx: FileContext, node: ast.AST | None, message: str,
        *, line: int | None = None,
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=ctx.path,
            line=line if line is not None else getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one rule instance to the registry (latest
    registration wins, so rule modules are reload-safe)."""
    if not cls.id or not cls.id.startswith("NCC"):
        raise ConfigurationError(f"rule {cls.__name__} needs a stable NCCxxx id")
    _RULES[cls.id] = cls()
    return cls


def _ensure_loaded() -> None:
    global _loaded
    if _loaded:
        return
    _loaded = True  # set first so a lookup during the imports cannot recurse
    try:
        for module in _RULE_MODULES:
            import_module(module)
    except Exception:
        _loaded = False
        raise


def get_rule(rule_id: str) -> Rule:
    _ensure_loaded()
    rule = _RULES.get(rule_id.strip().upper())
    if rule is None:
        raise UnknownRuleError(
            f"unknown rule {rule_id!r}; known rules: {', '.join(sorted(_RULES))}"
        )
    return rule


def iter_rules() -> Iterator[Rule]:
    """All registered rules in id order."""
    _ensure_loaded()
    for rule_id in sorted(_RULES):
        yield _RULES[rule_id]


def rule_ids() -> tuple[str, ...]:
    _ensure_loaded()
    return tuple(sorted(_RULES))
