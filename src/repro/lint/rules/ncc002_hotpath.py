"""NCC002 — hot-path purity: zero boxing in the columnar fast path.

Guards the ROADMAP "Zero-construction delivery" and "Typed columns never
box" invariants: clean batched rounds construct zero ``Message`` objects
and zero Python payload boxes (gated dynamically by the
``message_construction_count`` / ``payload_box_count`` counters and the
``bench_primitives.py`` speedup gates).  This rule makes the contract
visible at diff time: inside the hot-path module set, constructing a
``Message(...)`` or boxing a whole inbox with ``.payloads()`` is flagged
unless it sits in an annotated fallback — a function whose name contains
``fallback`` or whose ``def`` line carries ``# reprolint: fallback`` —
or carries a per-line ``# reprolint: disable=NCC002`` with justification
(the deliberate reference-engine degradation branches).
"""

from __future__ import annotations

import ast
from typing import Iterator

from . import FileContext, Finding, Rule, register_rule

#: the modules a clean batched round executes end-to-end; everything here
#: must stay on the column path.
HOT_PATH_MODULES = (
    "repro/ncc/batched.py",
    "repro/ncc/sharded/engine.py",
    "repro/ncc/sharded/kernel.py",
    "repro/ncc/sharded/workers.py",
    "repro/butterfly/routing.py",
    "repro/primitives/aggregation.py",
    "repro/primitives/multi_aggregation.py",
    "repro/primitives/multicast.py",
    "repro/primitives/multicast_setup.py",
    "repro/primitives/direct.py",
    "repro/primitives/aggregate_broadcast.py",
)

FALLBACK_MARK = "# reprolint: fallback"


@register_rule
class NCC002HotPathPurity(Rule):
    id = "NCC002"
    name = "hot-path-purity"
    invariant = (
        "zero-construction delivery / typed columns never box: clean "
        "batched rounds build no Message objects and no payload boxes"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.path_is(*HOT_PATH_MODULES):
            return
        yield from self._walk(ctx, ctx.tree)

    # ------------------------------------------------------------------
    def _walk(self, ctx: FileContext, node: ast.AST) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self._is_fallback(ctx, child):
                    continue  # annotated fallback: object path is the point
            if isinstance(child, ast.Call):
                func = child.func
                if (
                    isinstance(func, ast.Name) and func.id == "Message"
                ) or (
                    isinstance(func, ast.Attribute) and func.attr == "Message"
                ):
                    yield self.finding(
                        ctx, child,
                        "Message(...) construction on a hot path; submit "
                        "columns via BatchBuilder (or annotate a fallback)",
                    )
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr == "payloads"
                    and not child.args
                ):
                    yield self.finding(
                        ctx, child,
                        ".payloads() boxes every element of the inbox; read "
                        "payload_array()/columns (or annotate a fallback)",
                    )
            yield from self._walk(ctx, child)

    @staticmethod
    def _is_fallback(ctx: FileContext, fn: ast.FunctionDef) -> bool:
        if "fallback" in fn.name.lower():
            return True
        line = ctx.lines[fn.lineno - 1] if fn.lineno <= len(ctx.lines) else ""
        return FALLBACK_MARK in line
