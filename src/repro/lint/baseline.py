"""Shrink-only baselines: grandfather old findings, fail new ones.

A baseline file is a JSON object mapping ``"<path>::<rule>"`` to a
finding count — the per-(file, rule) budget of grandfathered violations.
The contract:

* a finding inside its budget is **baselined** (reported in the summary,
  does not fail the run);
* a finding beyond its budget is **new** and fails the run — so a file
  with 2 grandfathered NCC001 hits fails the moment a 3rd appears;
* a budget that no longer fires is **stale**: ``--update-baseline``
  shrinks it away, and ``--strict`` (the CI mode) fails until it does —
  this is what makes the baseline monotonically shrinking;
* :func:`shrink` can only lower counts and drop keys, never add or
  raise: new violations have exactly one exit — fixing the code (or an
  explicit reviewed ``# reprolint: disable=`` suppression).  The sole
  exception is bootstrap: updating a baseline *file that does not exist
  yet* adopts the current findings wholesale.

Counts (rather than line numbers) key the budget so unrelated edits that
shift a grandfathered violation up or down a file do not churn the
baseline.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Mapping

from ..errors import ConfigurationError
from .rules import Finding


class BaselineError(ConfigurationError):
    """A malformed baseline file or a growth attempt."""


def load(path: str) -> dict[str, int]:
    """Read a baseline file; a missing file is an empty baseline."""
    if not os.path.exists(path):
        return {}
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"unreadable baseline {path!r}: {exc}") from None
    if not isinstance(data, dict) or not all(
        isinstance(k, str) and isinstance(v, int) and v > 0
        for k, v in data.items()
    ):
        raise BaselineError(
            f"baseline {path!r} must map '<path>::<rule>' keys to positive "
            "finding counts"
        )
    return data


def save(path: str, baseline: Mapping[str, int]) -> None:
    """Write a baseline deterministically (sorted keys, trailing newline)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(dict(sorted(baseline.items())), fh, indent=2, sort_keys=True)
        fh.write("\n")


def partition(
    findings: Iterable[Finding], baseline: Mapping[str, int]
) -> tuple[list[Finding], int, dict[str, int]]:
    """Split findings into (new, baselined_count, stale_budgets).

    Within one (file, rule) bucket the *first* findings in position order
    consume the budget; the overflow is new.  ``stale`` maps baseline
    keys to the unconsumed remainder of their budget.
    """
    used: dict[str, int] = {}
    new: list[Finding] = []
    baselined = 0
    for f in findings:
        key = f.baseline_key
        if used.get(key, 0) < baseline.get(key, 0):
            used[key] = used.get(key, 0) + 1
            baselined += 1
        else:
            new.append(f)
    stale = {
        key: budget - used.get(key, 0)
        for key, budget in baseline.items()
        if used.get(key, 0) < budget
    }
    return new, baselined, stale


def shrink(
    old: Mapping[str, int], findings: Iterable[Finding]
) -> dict[str, int]:
    """The shrink-only update: keep each existing budget clamped down to
    what still fires; never add keys, never raise counts."""
    current: dict[str, int] = {}
    for f in findings:
        current[f.baseline_key] = current.get(f.baseline_key, 0) + 1
    return {
        key: min(budget, current[key])
        for key, budget in old.items()
        if current.get(key, 0) > 0
    }
