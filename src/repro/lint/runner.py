"""The reprolint runner: discover, parse once, run every rule, report.

Drives the whole pipeline behind ``python -m repro lint`` (and the
standalone ``python -m repro.lint``):

1. **discover** ``.py`` files under the given paths (skipping
   ``__pycache__`` and the deliberate-violation corpus under
   ``lint_fixtures/``, which is linted only when named explicitly);
2. **parse each file exactly once** into a
   :class:`~repro.lint.rules.FileContext` shared by every registered
   rule (the ``# reprolint: path=`` directive in a fixture's first lines
   re-scopes it to a library path);
3. **run the rules** (all of them, or a ``--select`` subset), dropping
   findings whose source line carries a matching
   ``# reprolint: disable=NCC00x`` suppression;
4. **apply the baseline** (shrink-only; see :mod:`repro.lint.baseline`)
   and render ``--format text|json`` plus the optional ``--output``
   JSON artifact.

Exit codes (shared with every ``repro`` subcommand): 0 clean, 1
non-baselined findings (or, under ``--strict``, a stale baseline), 2
usage errors (unknown path, unknown rule, malformed baseline).
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import sys
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import ConfigurationError
from . import baseline as baseline_mod
from .rules import (
    PATH_DIRECTIVE,
    FileContext,
    Finding,
    Rule,
    UnknownRuleError,
    get_rule,
    iter_rules,
)

DEFAULT_PATHS = ("src", "tests", "benchmarks")
DEFAULT_BASELINE = "reprolint-baseline.json"
DISABLE_MARK = "# reprolint: disable="

#: directories never walked implicitly: bytecode, and the fixture corpus
#: of deliberate violations (linted only as explicit file arguments).
SKIP_DIRS = frozenset({"__pycache__", "lint_fixtures", ".git"})


class UsageError(ConfigurationError):
    """A bad invocation (unknown path/rule) — exit code 2."""


# ----------------------------------------------------------------------
# Discovery and parsing
# ----------------------------------------------------------------------
def discover(paths: Sequence[str]) -> list[str]:
    """Resolve files/directories to a sorted list of ``.py`` files."""
    files: set[str] = set()
    for path in paths:
        norm = path.rstrip("/")
        if os.path.isfile(norm):
            files.add(norm.replace(os.sep, "/"))
        elif os.path.isdir(norm):
            for dirpath, dirnames, filenames in os.walk(norm):
                dirnames[:] = sorted(d for d in dirnames if d not in SKIP_DIRS)
                for name in filenames:
                    if name.endswith(".py"):
                        files.add(
                            os.path.join(dirpath, name).replace(os.sep, "/")
                        )
        else:
            raise UsageError(f"no such file or directory: {path!r}")
    return sorted(files)


def parse_file(path: str) -> FileContext | Finding:
    """One shared parse per file; a syntax error degrades to a finding
    (rule NCC000) so one broken file cannot hide the rest of the run."""
    try:
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
    except OSError as exc:
        raise UsageError(f"cannot read {path!r}: {exc}") from None
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return Finding(
            rule="NCC000",
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            message=f"file does not parse: {exc.msg}",
        )
    lines = source.splitlines()
    effective = path
    for line in lines[:5]:
        stripped = line.strip()
        if stripped.startswith(PATH_DIRECTIVE):
            effective = stripped[len(PATH_DIRECTIVE):].strip()
            break
    return FileContext(path=path, effective_path=effective, tree=tree, lines=lines)


def _suppressed(finding: Finding, ctx: FileContext) -> bool:
    """Per-line ``# reprolint: disable=NCC001[,NCC002]`` (or ``all``)."""
    if finding.line > len(ctx.lines):
        return False
    line = ctx.lines[finding.line - 1]
    at = line.find(DISABLE_MARK)
    if at < 0:
        return False
    ids = line[at + len(DISABLE_MARK):].split()[0] if (
        line[at + len(DISABLE_MARK):].strip()
    ) else ""
    codes = {c.strip().upper() for c in ids.split(",") if c.strip()}
    return "ALL" in codes or finding.rule.upper() in codes


# ----------------------------------------------------------------------
# The lint pipeline
# ----------------------------------------------------------------------
@dataclass
class LintResult:
    """Everything one lint run observed, before baseline application."""

    findings: list[Finding]
    suppressed: int
    files: int
    rules: tuple[str, ...]


def run_files(
    files: Iterable[str], rules: Sequence[Rule] | None = None
) -> LintResult:
    """Lint already-discovered files and return position-sorted findings."""
    active = list(rules) if rules is not None else list(iter_rules())
    findings: list[Finding] = []
    suppressed = 0
    count = 0
    for path in files:
        count += 1
        parsed = parse_file(path)
        if isinstance(parsed, Finding):
            findings.append(parsed)  # syntax errors are not suppressible
            continue
        for rule in active:
            for finding in rule.check(parsed):
                if _suppressed(finding, parsed):
                    suppressed += 1
                else:
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return LintResult(
        findings=findings,
        suppressed=suppressed,
        files=count,
        rules=tuple(r.id for r in active),
    )


def run_paths(
    paths: Sequence[str], select: Sequence[str] | None = None
) -> LintResult:
    """Discover + lint (the Python-API entry the tests drive)."""
    rules = [get_rule(r) for r in select] if select else None
    return run_files(discover(paths), rules)


# ----------------------------------------------------------------------
# Output
# ----------------------------------------------------------------------
def to_json_doc(
    result: LintResult,
    new: list[Finding],
    baselined: int,
    stale: dict[str, int],
) -> str:
    """The stable JSON findings document (sorted keys, sorted findings —
    byte-identical across runs on identical inputs)."""
    doc = {
        "version": 1,
        "files": result.files,
        "rules": list(result.rules),
        "findings": [f.to_dict() for f in new],
        "baselined": baselined,
        "suppressed": result.suppressed,
        "stale_baseline": dict(sorted(stale.items())),
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def _summary(
    result: LintResult, new: list[Finding], baselined: int, stale: dict[str, int]
) -> str:
    bits = [f"{len(new)} finding(s)"]
    if baselined:
        bits.append(f"{baselined} baselined")
    if result.suppressed:
        bits.append(f"{result.suppressed} suppressed")
    if stale:
        bits.append(f"{len(stale)} stale baseline entr(y/ies)")
    return (
        f"reprolint: {', '.join(bits)} across {result.files} files "
        f"({len(result.rules)} rules)"
    )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def add_lint_arguments(p: argparse.ArgumentParser) -> None:
    """The `lint` argument surface (shared by `repro lint` and
    ``python -m repro.lint``)."""
    p.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS),
                   help="files or directories to lint "
                        f"(default: {' '.join(DEFAULT_PATHS)})")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   help="stdout format (default text)")
    p.add_argument("--baseline", default=DEFAULT_BASELINE, metavar="PATH",
                   help="baseline file of grandfathered findings "
                        f"(default {DEFAULT_BASELINE}; 'none' disables)")
    p.add_argument("--update-baseline", action="store_true",
                   help="shrink the baseline to what still fires (never "
                        "adds entries; bootstraps a missing file)")
    p.add_argument("--strict", action="store_true",
                   help="also fail when baseline entries no longer fire "
                        "(CI mode: forces the baseline to shrink)")
    p.add_argument("--output", default=None, metavar="PATH",
                   help="additionally write the JSON findings document "
                        "to PATH (the CI artifact)")
    p.add_argument("--select", default=None, metavar="RULES",
                   help="comma list of rule ids to run (default: all)")
    p.add_argument("--list-rules", action="store_true",
                   help="list registered rules and exit")


def run_from_args(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.id}  {rule.name}")
            print(f"        guards: {rule.invariant}")
        return 0
    try:
        select = (
            [s for s in args.select.split(",") if s.strip()]
            if args.select else None
        )
        result = run_paths(args.paths, select=select)
        use_baseline = args.baseline != "none"
        old = baseline_mod.load(args.baseline) if use_baseline else {}
    except (UsageError, UnknownRuleError, baseline_mod.BaselineError) as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    new, baselined, stale = baseline_mod.partition(result.findings, old)

    if args.update_baseline and use_baseline:
        if os.path.exists(args.baseline):
            updated = baseline_mod.shrink(old, result.findings)
        else:
            # Bootstrap: adopting a baseline for the first time
            # grandfathers everything currently firing.
            updated = baseline_mod.shrink(
                {f.baseline_key: 10**9 for f in result.findings},
                result.findings,
            )
        baseline_mod.save(args.baseline, updated)
        new, baselined, stale = baseline_mod.partition(result.findings, updated)
        print(
            f"lint: baseline {args.baseline} now has {len(updated)} "
            f"entr(y/ies) covering {sum(updated.values())} finding(s)",
            file=sys.stderr,
        )

    json_doc = to_json_doc(result, new, baselined, stale)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(json_doc)
    if args.format == "json":
        sys.stdout.write(json_doc)
    else:
        for finding in new:
            print(finding.render())
        print(_summary(result, new, baselined, stale))
        if stale:
            keys = ", ".join(sorted(stale))
            print(
                f"lint: stale baseline entries (no longer fire): {keys}; "
                "shrink with --update-baseline",
                file=sys.stderr,
            )
    if new:
        return 1
    if args.strict and stale:
        print(
            "lint: --strict: baseline must shrink to match the code; "
            "run with --update-baseline and commit the result",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    p = argparse.ArgumentParser(
        prog="repro lint",
        description="reprolint: AST-checked repo invariants "
                    "(determinism, hot-path purity, registry discipline)",
    )
    add_lint_arguments(p)
    return run_from_args(p.parse_args(argv))
