"""repro — Distributed Computation in Node-Capacitated Networks (SPAA 2019).

A from-scratch Python reproduction of the Node-Capacitated Clique (NCC)
model, its communication primitives, and the paper's graph algorithms
(MST, O(a)-orientation, BFS, MIS, maximal matching, O(a)-coloring), plus
the comparison substrates (sequential and naive baselines, Congested Clique
separation experiments, the k-machine simulation of Appendix A).

Quickstart::

    from repro import NCCRuntime, InputGraph
    from repro.algorithms import MSTAlgorithm
    from repro.graphs import generators, weights

    g = generators.random_connected(64, extra_edge_prob=0.05, seed=1)
    g = weights.with_random_weights(g, seed=2)
    rt = NCCRuntime(g.n, seed=3)
    mst = MSTAlgorithm(rt, g).run()
    print(len(mst.edges), rt.net.stats.rounds)
"""

from .config import DEFAULT_CONFIG, Enforcement, NCCConfig
from .errors import (
    CapacityError,
    ConfigurationError,
    InputGraphError,
    MessageSizeError,
    ProtocolError,
    ReproError,
    SimulationLimitError,
)
from .ncc.graph_input import InputGraph
from .ncc.network import NCCNetwork
from .runtime import NCCRuntime

__version__ = "1.0.0"

__all__ = [
    "NCCRuntime",
    "NCCNetwork",
    "NCCConfig",
    "DEFAULT_CONFIG",
    "Enforcement",
    "InputGraph",
    "ReproError",
    "ConfigurationError",
    "CapacityError",
    "MessageSizeError",
    "ProtocolError",
    "SimulationLimitError",
    "InputGraphError",
    "__version__",
]
