"""repro — Distributed Computation in Node-Capacitated Networks (SPAA 2019).

A from-scratch Python reproduction of the Node-Capacitated Clique (NCC)
model, its communication primitives, and the paper's graph algorithms
(MST, O(a)-orientation, BFS, MIS, maximal matching, O(a)-coloring), plus
the comparison substrates (sequential and naive baselines, Congested Clique
separation experiments, the k-machine simulation of Appendix A).

Quickstart — the experiment API (registry + RunSpec/RunReport + Session)::

    from repro import RunSpec, Session

    session = Session()
    report = session.run(RunSpec("mst", n=64, seed=3))
    print(report.rounds, report.correct, report.engine)

    # A whole scenario grid, fanned out over worker processes, persisted
    # as deterministic RunReport JSONL (same bytes for any jobs= value):
    from repro.api import sweep_grid
    specs = sweep_grid(["mst", "mis"], [64, 128], seeds=range(5))
    reports = session.run_many(specs, jobs=8, out="results.jsonl")

Every algorithm is discoverable through :mod:`repro.registry`
(:func:`~repro.registry.get_algorithm`, names or aliases like ``"MM"``),
and the same registry drives the CLI (``python -m repro sweep --algos
mst,mis --ns 64,128 --seeds 0:5 --jobs 8 --out results.jsonl``), the
benchmarks, and the engine-parity harness.

The lower-level substrate is unchanged — build a runtime and run an
algorithm object directly when you need the raw result::

    from repro import NCCRuntime, InputGraph
    from repro.algorithms import MSTAlgorithm
    from repro.graphs import generators, weights

    g = generators.random_connected(64, extra_edge_prob=0.05, seed=1)
    g = weights.with_random_weights(g, seed=2)
    rt = NCCRuntime(g.n, seed=3)
    mst = MSTAlgorithm(rt, g).run()
    print(len(mst.edges), rt.net.stats.rounds)
"""

from .config import DEFAULT_CONFIG, Enforcement, NCCConfig
from .errors import (
    CapacityError,
    ConfigurationError,
    InputGraphError,
    MessageSizeError,
    ProtocolError,
    ReproError,
    SimulationLimitError,
)
from .ncc.graph_input import InputGraph
from .ncc.network import NCCNetwork
from .runtime import NCCRuntime

__version__ = "1.1.0"

#: experiment-API symbols re-exported lazily (keeps ``import repro`` light
#: and the algorithm modules unimported until first registry use).
_API_EXPORTS = {
    "AlgorithmSpec": "registry",
    "RunReport": "api",
    "RunSpec": "api",
    "ScenarioSpec": "scenarios",
    "Session": "api",
    "UnknownAlgorithmError": "registry",
    "UnknownScenarioError": "scenarios",
    "algorithm_names": "registry",
    "get_algorithm": "registry",
    "get_scenario": "scenarios",
    "iter_algorithms": "registry",
    "iter_scenarios": "scenarios",
    "register_algorithm": "registry",
    "register_scenario": "scenarios",
    "scenario_names": "scenarios",
}

__all__ = [
    "NCCRuntime",
    "NCCNetwork",
    "NCCConfig",
    "DEFAULT_CONFIG",
    "Enforcement",
    "InputGraph",
    "ReproError",
    "ConfigurationError",
    "CapacityError",
    "MessageSizeError",
    "ProtocolError",
    "SimulationLimitError",
    "InputGraphError",
    "__version__",
    *sorted(_API_EXPORTS),
]


def __getattr__(name: str):
    module = _API_EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(f".{module}", __name__), name)
