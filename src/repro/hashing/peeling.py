"""Trial-table peeling: the decoder of the Identification Algorithm.

Section 4.1 lets a learning node ``u`` recover the identifiers of its *red*
edges (edges to non-playing neighbours) from per-trial aggregates.  For each
trial ``t`` the node knows

* ``X(t)``  — XOR of the identifiers of *all* candidate edges in trial ``t``
  (computable locally), and ``x(t)`` — their count;
* ``X'(t)`` — XOR of the identifiers of the *blue* (playing) edges in trial
  ``t`` and ``x'(t)`` — their count (received via the Aggregation primitive).

Whenever ``x(t) = x'(t) + 1`` exactly one red edge participates in trial
``t`` alone among red edges, so its identifier is ``X(t) ⊕ X'(t)``.  Peeling
it out of every trial it participates in may expose further singleton trials
— the same peeling process that decodes an Invertible Bloom Lookup Table.
Lemma 4.2 bounds the probability that peeling stalls with ≥ k red edges
unrecovered.

This module implements the data structure and the peeling loop once, shared
by the distributed algorithm (which fills it from network aggregates) and by
unit tests (which fill it directly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .kwise import KWiseHash


def trials_of(edge_id: int, hashes: Sequence[KWiseHash]) -> set[int]:
    """The set of trials an edge participates in: {h_j(e) : j} (Section 4.1)."""
    return {h(edge_id) for h in hashes}


@dataclass
class PeelResult:
    """Outcome of a peeling run."""

    identified: list[int] = field(default_factory=list)
    #: True when every trial balanced out exactly (x(t) == x'(t) and the
    #: XORs matched); False means some red edges could not be identified.
    complete: bool = False


class TrialTable:
    """Per-trial (XOR, count) accumulators with IBLT-style peeling.

    The *local* side is filled with every candidate edge of the learning
    node; the *remote* side is filled from the aggregated contributions of
    playing neighbours.  ``peel`` then extracts the difference (the red
    edges).
    """

    __slots__ = ("q", "hashes", "_xor", "_cnt", "_remote_xor", "_remote_cnt")

    def __init__(self, q: int, hashes: Sequence[KWiseHash]):
        if q < 1:
            raise ValueError("q must be >= 1")
        for h in hashes:
            if h.range_size != q:
                raise ValueError("hash range_size must equal q")
        self.q = q
        self.hashes = tuple(hashes)
        self._xor = [0] * q
        self._cnt = [0] * q
        self._remote_xor = [0] * q
        self._remote_cnt = [0] * q

    # ------------------------------------------------------------------
    # Filling
    # ------------------------------------------------------------------
    def add_local(self, edge_id: int) -> None:
        """Register a candidate edge (computed locally by the learner)."""
        for t in trials_of(edge_id, self.hashes):
            self._xor[t] ^= edge_id
            self._cnt[t] += 1

    def add_local_many(self, edge_ids: Iterable[int]) -> None:
        for e in edge_ids:
            self.add_local(e)

    def set_remote(self, trial: int, xor_value: int, count: int) -> None:
        """Install the aggregate (X'(t), x'(t)) received for one trial."""
        if not 0 <= trial < self.q:
            raise IndexError(trial)
        self._remote_xor[trial] = xor_value
        self._remote_cnt[trial] = count

    def accumulate_remote(self, trial: int, xor_value: int, count: int) -> None:
        """Fold one playing neighbour's contribution into trial ``trial``.

        Mirrors the distributive aggregate f((X1,c1),(X2,c2)) =
        (X1⊕X2, c1+c2) used in the in-network aggregation.
        """
        if not 0 <= trial < self.q:
            raise IndexError(trial)
        self._remote_xor[trial] ^= xor_value
        self._remote_cnt[trial] += count

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def peel(self, max_iterations: int | None = None) -> PeelResult:
        """Recover red-edge identifiers by repeated singleton extraction.

        Follows Section 4.1 verbatim: find a trial ``t`` with
        ``x(t) = x'(t) + 1``, output ``X(t) ⊕ X'(t)``, remove that edge from
        every trial it participates in, repeat.  Stops when no singleton
        trial remains.
        """
        xor = list(self._xor)
        cnt = list(self._cnt)
        result = PeelResult()
        limit = max_iterations if max_iterations is not None else self.q * 64 + 64
        # Worklist of candidate singleton trials.
        pending = [t for t in range(self.q) if cnt[t] == self._remote_cnt[t] + 1]
        seen_ids: set[int] = set()
        iterations = 0
        while pending and iterations < limit:
            iterations += 1
            t = pending.pop()
            if cnt[t] != self._remote_cnt[t] + 1:
                continue  # stale entry
            edge_id = xor[t] ^ self._remote_xor[t]
            if edge_id == 0 or edge_id in seen_ids:
                # A zero identifier here means the trial's XOR collapsed —
                # cannot happen with valid (non-zero) edge identifiers unless
                # the table was filled inconsistently.  Treat as stall.
                break
            seen_ids.add(edge_id)
            result.identified.append(edge_id)
            for t2 in trials_of(edge_id, self.hashes):
                xor[t2] ^= edge_id
                cnt[t2] -= 1
                if cnt[t2] == self._remote_cnt[t2] + 1:
                    pending.append(t2)
        result.complete = all(
            cnt[t] == self._remote_cnt[t] and xor[t] == self._remote_xor[t]
            for t in range(self.q)
        )
        return result

    # ------------------------------------------------------------------
    # Introspection (used by tests)
    # ------------------------------------------------------------------
    def local_count(self, trial: int) -> int:
        return self._cnt[trial]

    def remote_count(self, trial: int) -> int:
        return self._remote_cnt[trial]


def simulate_identification(
    candidate_edges: Sequence[int],
    blue_edges: Sequence[int],
    hashes: Sequence[KWiseHash],
    q: int,
) -> PeelResult:
    """Reference (non-distributed) run of the identification decoder.

    ``candidate_edges`` are all edges the learner considers possible;
    ``blue_edges ⊆ candidate_edges`` are those whose other endpoint is
    playing.  Returns the red edges recovered by peeling.  Used by unit and
    property tests as the oracle the distributed path must match.
    """
    table = TrialTable(q, hashes)
    table.add_local_many(candidate_edges)
    for e in blue_edges:
        for t in trials_of(e, hashes):
            table.accumulate_remote(t, e, 1)
    return table.peel()
