"""Shared-randomness hashing substrates.

The paper's primitives assume (pseudo-)random hash functions agreed upon via
shared randomness, and its analysis only needs Θ(log n)-wise independence
(Section 2.2).  This package provides:

* :class:`~repro.hashing.kwise.KWiseHash` — a k-wise independent polynomial
  hash family over the Mersenne prime 2^61 − 1;
* :class:`~repro.hashing.sketches.ParitySketch` — the XOR/parity set-equality
  sketch used by FindMin (Section 3);
* :class:`~repro.hashing.peeling.TrialTable` — the trial-table peeling decoder
  at the heart of the Identification Algorithm (Section 4.1).
"""

from .kwise import KWiseHash, MERSENNE_61
from .peeling import PeelResult, TrialTable
from .sketches import ParitySketch, sketch_differs

__all__ = [
    "KWiseHash",
    "MERSENNE_61",
    "ParitySketch",
    "sketch_differs",
    "TrialTable",
    "PeelResult",
]
