"""Parity (XOR) sketches for distributed set-equality tests.

Section 3's FindMin routine decides "does component C have an outgoing edge
with weight in [a, b]?" by comparing, for a random hash ``h : ids -> {0,1}``,

    h↑(C) = Σ_{u∈C} Σ_{v∈N(u), w(u,v)∈[a,b]} h(id(u,v))   (mod 2)
    h↓(C) = Σ_{u∈C} Σ_{v∈N(u), w(u,v)∈[a,b]} h(id(v,u))   (mod 2)

The two multisets of arc identifiers coincide exactly when every qualifying
edge is internal to C; when they differ, a random parity separates them with
probability 1/2, so Θ(log n) independent trials give a w.h.p. test.

The sketch here packages that logic so that both the distributed algorithm
and its tests share one implementation: a :class:`ParitySketch` is a vector
of ``trials`` single-bit parities that supports the group operation (XOR),
which is exactly the distributive aggregate used in the in-network
aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .kwise import KWiseHash


@dataclass(frozen=True)
class ParitySketch:
    """An immutable vector of parity bits, one per trial.

    Combining sketches with ``^`` mirrors how packets are combined inside the
    butterfly: XOR per trial.  The all-zero sketch is the identity.
    """

    bits: int  # packed little-endian: trial t is bit t
    trials: int

    def __xor__(self, other: "ParitySketch") -> "ParitySketch":
        if self.trials != other.trials:
            raise ValueError("cannot combine sketches with different trial counts")
        return ParitySketch(self.bits ^ other.bits, self.trials)

    def is_zero(self) -> bool:
        return self.bits == 0

    def trial(self, t: int) -> int:
        if not 0 <= t < self.trials:
            raise IndexError(t)
        return (self.bits >> t) & 1

    def as_tuple(self) -> tuple[int, ...]:
        return tuple((self.bits >> t) & 1 for t in range(self.trials))

    def size_bits(self) -> int:
        """Payload size when carried in a message: one bit per trial."""
        return self.trials

    @classmethod
    def zero(cls, trials: int) -> "ParitySketch":
        return cls(0, trials)

    @classmethod
    def of_keys(cls, keys: Iterable[int], hashes: Sequence[KWiseHash]) -> "ParitySketch":
        """Sketch a multiset of integer keys under one hash per trial."""
        bits = 0
        for key in keys:
            for t, h in enumerate(hashes):
                bits ^= h.bit(key) << t
        return cls(bits, len(hashes))


def sketch_differs(a: ParitySketch, b: ParitySketch) -> bool:
    """True when the two sketched multisets are *provably* different.

    A ``False`` answer means "equal in every trial" — equal multisets always
    return ``False``; unequal ones return ``False`` with probability
    ``2^-trials``.
    """
    if a.trials != b.trials:
        raise ValueError("sketches have different trial counts")
    return a.bits != b.bits
