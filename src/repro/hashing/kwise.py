"""k-wise independent hash families over the Mersenne prime 2^61 − 1.

A degree-(k−1) polynomial with uniformly random coefficients over a prime
field is a k-wise independent hash family — the standard construction the
paper appeals to (Section 2.2, citing Celis et al. [10]).  Evaluation uses
Horner's rule with Python integers (exact, no overflow) and the Mersenne
structure of the modulus for a cheap reduction.

Two deployment notes mirror the paper:

* **Shared randomness** — all nodes must evaluate the *same* function, so a
  family is constructed from an explicit seed; the cost of agreeing on that
  seed is charged by :class:`repro.rng.SharedRandomness`, not here.
* **Independence degree** — the paper needs Θ(log n)-wise independence.
  :func:`KWiseHash.for_model` picks ``k = ceil(log2 n) + 1``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

# Imported from the seeding leaf, not repro.rng: rng.py imports this
# module, so the usual `from ..rng import derived_rng` spelling would
# be a circular import.
from ..seeding import derived_rng

MERSENNE_61 = (1 << 61) - 1


def _mod_mersenne61(x: int) -> int:
    """Reduce a non-negative integer modulo 2^61 − 1 without division.

    Valid for ``x < 2^122`` which covers products of two field elements.
    """
    x = (x & MERSENNE_61) + (x >> 61)
    if x >= MERSENNE_61:
        x -= MERSENNE_61
    return x


class KWiseHash:
    """A member of a k-wise independent hash family ``h : N -> [range_size)``.

    Parameters
    ----------
    k:
        Independence degree (number of random coefficients).  ``k >= 1``.
    range_size:
        Size of the output range; outputs lie in ``{0, ..., range_size-1}``.
    seed:
        Seed deriving the coefficients.  Two instances with equal
        ``(k, range_size, seed)`` are the same function — this is how all
        simulated nodes share one hash function.

    Notes
    -----
    The output is ``(poly(x) mod p) mod range_size`` with ``p = 2^61 − 1``.
    The modular bias is at most ``range_size / p`` which is negligible for
    every range used in this repository (≤ 2^40).
    """

    __slots__ = ("k", "range_size", "seed", "_coeffs")

    def __init__(self, k: int, range_size: int, seed: int):
        if k < 1:
            raise ValueError("k must be >= 1")
        if range_size < 1:
            raise ValueError("range_size must be >= 1")
        self.k = int(k)
        self.range_size = int(range_size)
        self.seed = int(seed)
        rng = derived_rng("kwise", k, range_size, seed)
        # Leading coefficient non-zero keeps the polynomial degree exactly
        # k-1; the family stays k-wise independent either way, but this makes
        # distinct seeds collide less in small unit tests.
        coeffs = [rng.randrange(MERSENNE_61) for _ in range(k)]
        if k > 1 and coeffs[0] == 0:
            coeffs[0] = 1 + rng.randrange(MERSENNE_61 - 1)
        self._coeffs = tuple(coeffs)

    # ------------------------------------------------------------------
    def __call__(self, key: int) -> int:
        """Evaluate the hash on a non-negative integer key."""
        x = key % MERSENNE_61
        acc = 0
        for c in self._coeffs:
            acc = _mod_mersenne61(acc * x + c)
        return acc % self.range_size

    def hash_many(self, keys: Iterable[int]) -> list[int]:
        """Evaluate on many keys (convenience; same results as ``__call__``)."""
        return [self(k) for k in keys]

    def bit(self, key: int) -> int:
        """Evaluate as a single-bit function regardless of ``range_size``.

        Uses the low bit of the field value so that ``range_size`` does not
        have to be 2; FindMin's parity sketches use this.
        """
        x = key % MERSENNE_61
        acc = 0
        for c in self._coeffs:
            acc = _mod_mersenne61(acc * x + c)
        return acc & 1

    # ------------------------------------------------------------------
    @classmethod
    def for_model(cls, n: int, range_size: int, seed: int) -> "KWiseHash":
        """Family with the Θ(log n)-wise independence the paper requires."""
        import math

        k = max(2, math.ceil(math.log2(max(2, n))) + 1)
        return cls(k, range_size, seed)

    def random_bits(self) -> int:
        """Number of random bits this function encodes (for agreement cost)."""
        return self.k * 61

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KWiseHash(k={self.k}, range_size={self.range_size}, seed={self.seed})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, KWiseHash)
            and self.k == other.k
            and self.range_size == other.range_size
            and self.seed == other.seed
        )

    def __hash__(self) -> int:
        return hash(("KWiseHash", self.k, self.range_size, self.seed))


def hash_family(count: int, k: int, range_size: int, seed: int) -> Sequence[KWiseHash]:
    """Construct ``count`` independent members of the family.

    The Identification Algorithm (Section 4.1) uses ``s`` functions
    ``h_1..h_s``; deriving them from one seed keeps shared-randomness
    agreement to a single broadcast.
    """
    return tuple(KWiseHash(k, range_size, (seed << 20) ^ i) for i in range(count))
