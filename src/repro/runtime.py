"""The user-facing runtime: one Node-Capacitated Clique ready to compute.

:class:`NCCRuntime` bundles the round engine, the emulated butterfly and the
shared-randomness broker, and exposes every communication primitive as a
method.  Algorithms take a runtime plus an input graph::

    from repro import NCCRuntime, InputGraph
    from repro.algorithms import MSTAlgorithm

    rt = NCCRuntime(64, seed=7)
    g = InputGraph(64, edges, weights)
    result = MSTAlgorithm(rt, g).run()
    print(rt.net.stats.rounds)
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Mapping

from .butterfly.routing import TreeSet
from .butterfly.topology import ButterflyGrid
from .config import DEFAULT_CONFIG, NCCConfig
from .ncc.network import NCCNetwork
from .primitives import (
    Aggregate,
    AggregationProblem,
    aggregate_and_broadcast,
    barrier,
    gather_to_root,
    pipelined_broadcast,
    run_aggregation,
    run_multi_aggregation,
    run_multicast,
    setup_multicast_trees,
)
from .primitives.multicast_setup import setup_multicast_trees_delegated
from .rng import SharedRandomness

GroupT = Hashable


class NCCRuntime:
    """A Node-Capacitated Clique of ``n`` nodes with all primitives wired."""

    def __init__(
        self,
        n: int,
        config: NCCConfig | None = None,
        *,
        seed: int | None = None,
        bf: ButterflyGrid | None = None,
    ):
        cfg = config if config is not None else DEFAULT_CONFIG
        if seed is not None:
            cfg = cfg.with_(seed=seed)
        if bf is not None and bf.n != n:
            raise ValueError(f"butterfly grid is for n={bf.n}, runtime wants n={n}")
        self.config = cfg
        self.net = NCCNetwork(n, cfg)
        # The emulated butterfly is immutable per n, so sweep drivers
        # (repro.api.Session) share one instance across runs of the same size.
        self.bf = bf if bf is not None else ButterflyGrid(n)
        self.shared = SharedRandomness(cfg, n, charge=self._charge_agreement)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.net.n

    @property
    def log2n(self) -> int:
        return self.net.log2n

    def _charge_agreement(self, bits: int) -> None:
        """Charge a shared-randomness agreement: node 0 broadcasts
        ``ceil(bits / B)`` messages pipelined through the butterfly
        (Section 2.2)."""
        import math

        k = max(1, math.ceil(bits / self.net.message_bits))
        with self.net.phase("hash-agreement"):
            # collect=False: only the rounds/messages/bits are the charge;
            # nobody reads the per-node received lists.
            pipelined_broadcast(
                self.net, self.bf, [0] * k, kind="hash-agreement",
                collect=False,
            )

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def aggregate_and_broadcast(
        self, inputs: Mapping[int, Any], fn: Aggregate, *, kind: str = "agg-bcast"
    ) -> Any:
        """Theorem 2.2 — every node learns ``fn`` over the inputs."""
        with self.net.phase(kind):
            return aggregate_and_broadcast(self.net, self.bf, inputs, fn, kind=kind)

    def barrier(self) -> None:
        """Synchronization barrier (Appendix B.1), 2d+2 rounds."""
        barrier(self.net, self.bf)

    def aggregation(self, problem: AggregationProblem, *, tag: object = None, kind: str = "aggregation"):
        """Theorem 2.3 — run the Aggregation Algorithm."""
        return run_aggregation(self.net, self.bf, self.shared, problem, tag=tag, kind=kind)

    def multicast_setup(
        self,
        memberships: Mapping[int, Iterable[GroupT]],
        *,
        tag: object = None,
        kind: str = "multicast-setup",
    ) -> TreeSet:
        """Theorem 2.4 — build multicast trees."""
        return setup_multicast_trees(
            self.net, self.bf, self.shared, memberships, tag=tag, kind=kind
        )

    def multicast_setup_delegated(
        self,
        injections: Mapping[int, Iterable[tuple[GroupT, int]]],
        *,
        tag: object = None,
        kind: str = "multicast-setup",
    ) -> TreeSet:
        """Tree setup with delegated joins (Lemma 5.1's injection trick)."""
        return setup_multicast_trees_delegated(
            self.net, self.bf, self.shared, injections, tag=tag, kind=kind
        )

    def multicast(
        self,
        trees: TreeSet,
        packets: Mapping[GroupT, Any],
        sources: Mapping[GroupT, int],
        *,
        ell_bound: int | None = None,
        tag: object = None,
        kind: str = "multicast",
    ):
        """Theorem 2.5 — multicast packets over pre-built trees."""
        return run_multicast(
            self.net,
            self.bf,
            self.shared,
            trees,
            packets,
            sources,
            ell_bound=ell_bound,
            tag=tag,
            kind=kind,
        )

    def multi_aggregation(
        self,
        trees: TreeSet,
        packets: Mapping[GroupT, Any],
        sources: Mapping[GroupT, int],
        fn: Aggregate,
        *,
        annotate=None,
        result_key=None,
        tag: object = None,
        kind: str = "multi-aggregation",
    ):
        """Theorem 2.6 — multicast + per-target aggregation (pass
        ``result_key`` for the keyed extension of Appendix B.5)."""
        return run_multi_aggregation(
            self.net,
            self.bf,
            self.shared,
            trees,
            packets,
            sources,
            fn,
            annotate=annotate,
            result_key=result_key,
            tag=tag,
            kind=kind,
        )

    def pipelined_broadcast(self, items: Iterable[Any], *, src: int = 0, kind: str = "pipelined-bcast"):
        """Broadcast items from one node to all, pipelined (Section 2.2)."""
        with self.net.phase(kind):
            return pipelined_broadcast(self.net, self.bf, items, src=src, kind=kind)

    def gather_to_root(self, items: Mapping[int, Any], *, kind: str = "gather"):
        """Gather one item per owner at node 0, smallest-first (Section 4.2)."""
        with self.net.phase(kind):
            return gather_to_root(self.net, self.bf, items, kind=kind)

    # ------------------------------------------------------------------
    def stats_summary(self) -> dict[str, object]:
        return self.net.stats.summary()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NCCRuntime(n={self.n}, rounds={self.net.round_index})"
