"""The process-local tracer and its module-global hot slot.

Instrumented sites across the engines, the shard pool, and the sweep
service all follow one pattern::

    tr = tracer.CURRENT
    if tr is not None:
        tr.event("sharded-degraded", reason="no-shared-memory")

``CURRENT`` is a plain module attribute: the disabled path costs one
attribute load and an ``is None`` test, which is what keeps the tracer a
no-op hook when nobody asked for telemetry (the overhead gate in
``benchmarks/bench_primitives.py`` holds it under 3% of a whole typed
aggregation run).  Hooks fire at *round/phase/incident* frequency, never
per message — the per-message hot loops stay untouched.

Determinism contract
--------------------
A tracer records an ordered list of spans and events.  The **structure**
of that list — kinds, names, and field dicts, in order — is a pure
function of the run (``tests/test_telemetry.py`` pins this); only the
``perf_counter`` timestamps vary between runs.  Timestamps never leave
the telemetry sidecar files: canonical ``RunReport`` JSONL is produced
without consulting the tracer at all.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "CURRENT",
    "SPAN",
    "EVENT",
    "Tracer",
    "current_tracer",
    "install_tracer",
    "tracing",
    "uninstall_tracer",
]

#: Record kinds inside :attr:`Tracer.records`.
SPAN = "span"
EVENT = "event"

#: The hot slot.  ``None`` means telemetry is off and every instrumented
#: site short-circuits.  Mutated only via :func:`install_tracer` /
#: :func:`uninstall_tracer` (or the :func:`tracing` context manager).
CURRENT: "Tracer | None" = None


class Tracer:
    """Records spans and events for one process (or one sweep row).

    Records are plain tuples ``(kind, name, ts, dur, fields)`` with
    ``ts``/``dur`` in seconds relative to the tracer's epoch (``dur`` is
    ``None`` for instant events).  Completed spans append at *end* time,
    so the record order is completion order — deterministic whenever the
    traced run is.
    """

    __slots__ = ("epoch", "records", "meta", "_stack")

    def __init__(self, **meta: Any):
        self.epoch = time.perf_counter()
        self.records: list[tuple[str, str, float, float | None, dict[str, Any]]] = []
        self.meta: dict[str, Any] = dict(meta)
        self._stack: list[tuple[str, float, dict[str, Any]]] = []

    # -- clock ---------------------------------------------------------
    def now(self) -> float:
        return time.perf_counter()

    # -- instants ------------------------------------------------------
    def event(self, name: str, **fields: Any) -> None:
        """Record an instant event (violation, degradation, crash, ...)."""
        self.records.append(
            (EVENT, name, time.perf_counter() - self.epoch, None, fields)
        )

    # -- spans ---------------------------------------------------------
    def begin(self, name: str, **fields: Any) -> None:
        """Open a nested span (paired with :meth:`end`)."""
        self._stack.append((name, time.perf_counter(), fields))

    def end(self, **extra: Any) -> None:
        """Close the innermost open span.

        Tolerates an empty stack (a tracer installed mid-phase sees the
        exit without the matching enter) by recording nothing.
        """
        if not self._stack:
            return
        name, t0, fields = self._stack.pop()
        if extra:
            fields = {**fields, **extra}
        t1 = time.perf_counter()
        self.records.append((SPAN, name, t0 - self.epoch, t1 - t0, fields))

    def add_span(self, name: str, t0: float, t1: float, **fields: Any) -> None:
        """Record a completed span from explicit ``perf_counter`` stamps."""
        self.records.append((SPAN, name, t0 - self.epoch, t1 - t0, fields))

    @contextmanager
    def span(self, name: str, **fields: Any) -> Iterator[None]:
        self.begin(name, **fields)
        try:
            yield
        finally:
            self.end()

    # -- export --------------------------------------------------------
    def structure(self) -> list[tuple[str, str, dict[str, Any]]]:
        """The timestamp-free view pinned by the determinism tests."""
        return [(kind, name, fields) for kind, name, _, _, fields in self.records]

    def to_payload(self) -> dict[str, Any]:
        """A picklable snapshot (ships over the worker pool pipes).

        Includes the process-wide counter snapshot so merged sweep
        telemetry can attribute boxes/constructions per row.
        """
        from .metrics import METRICS

        return {
            "meta": dict(self.meta),
            "records": [list(r) for r in self.records],
            "counters": METRICS.snapshot(),
        }


def current_tracer() -> Tracer | None:
    return CURRENT


def install_tracer(tr: Tracer) -> Tracer | None:
    """Install ``tr`` as the process-local tracer; returns the previous one."""
    global CURRENT
    previous = CURRENT
    CURRENT = tr
    return previous


def uninstall_tracer(previous: Tracer | None = None) -> None:
    """Restore ``previous`` (default: disable tracing entirely)."""
    global CURRENT
    CURRENT = previous


@contextmanager
def tracing(**meta: Any) -> Iterator[Tracer]:
    """Install a fresh tracer for the block and restore the old slot after."""
    tr = Tracer(**meta)
    previous = install_tracer(tr)
    try:
        yield tr
    finally:
        uninstall_tracer(previous)
