"""Structured tracing + metrics for the NCC stack.

The telemetry plane is strictly *observational*: installing a tracer or
reading counters never changes what a run computes, sends, or reports.
Canonical ``RunSpec``/``RunReport`` JSONL stays byte-identical with
telemetry on or off — timing lives only in sidecar files produced here
(Chrome trace-event JSON, an events JSONL, and text summaries).

Layout
------
``tracer``
    The process-local :class:`Tracer` and its module-global hot slot
    (``tracer.CURRENT``).  Instrumented sites in the engines/pool read
    that one attribute and skip everything when it is ``None`` — the
    disabled tracer is a no-op hook, gated at <= 3% whole-run overhead
    by ``benchmarks/bench_primitives.py``.
``metrics``
    :class:`MetricRegistry` — named counters plus read-only *sources*
    wrapping the pre-existing module globals
    (``message_construction_count`` / ``payload_box_count``), with a
    sorted ``snapshot()`` API.
``export``
    Chrome trace-event JSON (Perfetto-viewable), events JSONL, and the
    human text summary; also the reader used by ``python -m repro trace``.
``bounds``
    Evaluates each algorithm's registered Table 1 bound string and
    compares measured rounds against the budget.
``sweep``
    :class:`SweepTelemetry` — collects per-row worker traces shipped
    back over the pool pipes and merges them into one trace directory.

Only ``tracer`` and ``metrics`` are imported eagerly (they are on the
engine import path and must stay dependency-free); ``export``, ``bounds``
and ``sweep`` are CLI-side and imported on demand.
"""

from __future__ import annotations

from .metrics import METRICS, MetricRegistry
from .tracer import (
    CURRENT,
    Tracer,
    current_tracer,
    install_tracer,
    tracing,
    uninstall_tracer,
)

__all__ = [
    "CURRENT",
    "METRICS",
    "MetricRegistry",
    "Tracer",
    "current_tracer",
    "install_tracer",
    "tracing",
    "uninstall_tracer",
]
