"""Measured-vs-declared round budgets (the paper's Table 1 accounting).

Each registered algorithm declares its asymptotic round bound as a
string (``AlgorithmSpec.bound``, e.g. ``"O((a + log n) log n)"``).  This
module evaluates those strings for a concrete ``(n, a)`` — giving the
*budget shape* with all constants taken as 1 — and reports the ratio of
measured rounds to that budget.  The ratio is not a pass/fail number
(the bounds are asymptotic, constants and log bases matter), but it is
stable across runs of the same spec and comparable across ``n``: a
ratio that grows with ``n`` means the implementation is outgrowing its
declared bound.

Variable conventions
--------------------
``n``  nodes; ``a``  arboricity; ``log x``  taken base 2, floored at 1;
``D``  diameter (assumed ``log2 n`` when the trace does not carry it);
``W``  maximum edge weight (assumed ``n``).  Qualifiers after the
``O(...)`` term ("per invocation", "setup", "aggregations per pass")
are preserved as a note — those budgets are per-unit, so the whole-run
ratio overstates them and the note says so.
"""

from __future__ import annotations

import math
import re
from typing import Any

__all__ = ["evaluate_bound", "bounds_rows", "render_bounds"]

_TOKEN = re.compile(
    r"""
    (?P<fraclog>log\^\{(?P<fp>\d+)/(?P<fq>\d+)\}\s*n)
  | (?P<powlog>log\^(?P<p>\d+)\s*n)
  | (?P<logw>log\s*W)
  | (?P<logn>log\s*n)
  | (?P<num>\d+)
  | (?P<var>[naDW])
  | (?P<op>[()+*/-])
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)

_SAFE_EXPR = re.compile(r"^[0-9eE().+*/\- ]+$")


def evaluate_bound(
    bound: str,
    *,
    n: int,
    a: int = 2,
    D: float | None = None,
    W: float | None = None,
) -> tuple[float, str] | None:
    """Evaluate a Table 1 bound string for concrete parameters.

    Returns ``(budget, note)`` — the numeric budget with all constants 1,
    plus any trailing qualifier from the bound string ("per invocation",
    ...) — or ``None`` when the string does not parse.
    """
    m = re.match(r"^\s*O\((?P<expr>.*)\)(?P<qual>[^)]*)$", bound.strip(), re.S)
    if m is None:
        return None
    expr_src, note = m.group("expr"), m.group("qual").strip()

    log_n = max(1.0, math.log2(max(2, n)))
    log_w = max(1.0, math.log2(max(2.0, float(W if W is not None else n))))
    values = {
        "n": float(n),
        "a": float(max(1, a)),
        "D": float(D if D is not None else log_n),
        "W": float(W if W is not None else n),
    }

    parts: list[str] = []
    pos = 0
    while pos < len(expr_src):
        tok = _TOKEN.match(expr_src, pos)
        if tok is None:
            return None
        pos = tok.end()
        if tok.lastgroup == "ws":
            continue
        if tok.lastgroup == "fraclog":
            term = f"({log_n} ** ({tok.group('fp')} / {tok.group('fq')}))"
        elif tok.lastgroup == "powlog":
            term = f"({log_n} ** {tok.group('p')})"
        elif tok.lastgroup == "logw":
            term = f"({log_w})"
        elif tok.lastgroup == "logn":
            term = f"({log_n})"
        elif tok.lastgroup == "num":
            term = tok.group("num")
        elif tok.lastgroup == "var":
            term = f"({values[tok.group('var')]})"
        else:  # operator / parenthesis
            op = tok.group("op")
            if op == "(" and parts and (parts[-1][-1].isdigit() or parts[-1][-1] == ")"):
                parts.append("*")  # implicit multiplication: "...) (..." / "2 (..."
            parts.append(op)
            continue
        if parts and (parts[-1][-1].isdigit() or parts[-1][-1] == ")"):
            parts.append("*")  # implicit multiplication between adjacent terms
        parts.append(term)

    expr = " ".join(parts)
    if not _SAFE_EXPR.match(expr):
        return None
    try:
        budget = float(eval(expr, {"__builtins__": {}}))  # noqa: S307 - vetted numeric expr
    except (SyntaxError, ZeroDivisionError, TypeError, NameError):
        return None
    if not math.isfinite(budget) or budget <= 0:
        return None
    return budget, note


def bounds_rows(doc: dict[str, Any]) -> list[dict[str, Any]]:
    """One row per traced run: measured rounds vs the registered budget."""
    from ..registry import UnknownAlgorithmError, get_algorithm
    from .export import run_metas

    rows: list[dict[str, Any]] = []
    for meta in run_metas(doc):
        algo = meta.get("algorithm")
        n = meta.get("n")
        if not algo or not n:
            continue
        row: dict[str, Any] = {
            "algorithm": algo,
            "n": int(n),
            "a": int(meta.get("a") or 2),
            "rounds": int(meta.get("rounds") or 0),
            "bound": None,
            "budget": None,
            "ratio": None,
            "note": "",
        }
        try:
            spec = get_algorithm(str(algo))
        except UnknownAlgorithmError:
            spec = None
        if spec is not None and spec.bound:
            row["bound"] = spec.bound
            evaluated = evaluate_bound(spec.bound, n=row["n"], a=row["a"])
            if evaluated is not None:
                budget, note = evaluated
                row["budget"] = budget
                row["note"] = note
                if row["rounds"]:
                    row["ratio"] = row["rounds"] / budget
        rows.append(row)
    return rows


def render_bounds(doc: dict[str, Any]) -> str:
    rows = bounds_rows(doc)
    if not rows:
        return (
            "bounds: no run spans in this trace (record one with "
            "`repro run ... --trace` or `sweep --telemetry`)"
        )
    lines = [
        f"{'algorithm':<16} {'n':>8} {'a':>4} {'rounds':>8} "
        f"{'budget':>10} {'ratio':>8}  bound"
    ]
    for row in rows:
        budget = f"{row['budget']:.1f}" if row["budget"] else "-"
        ratio = f"{row['ratio']:.3f}" if row["ratio"] else "-"
        bound = row["bound"] or "(unregistered)"
        if row["note"]:
            bound += f"  [{row['note']}]"
        lines.append(
            f"{row['algorithm']:<16} {row['n']:>8} {row['a']:>4} "
            f"{row['rounds']:>8} {budget:>10} {ratio:>8}  {bound}"
        )
    lines.append(
        "(budget = bound evaluated with constants 1, log base 2, "
        "D~log2 n, W~n; ratio = measured rounds / budget)"
    )
    return "\n".join(lines)
