"""Trace exporters: Chrome trace-event JSON, events JSONL, text summary.

The interchange form is the *trace document*: the Chrome trace-event
JSON object produced by :func:`build_chrome_doc` —

``{"traceEvents": [...], "displayTimeUnit": "ms", "otherData": {...}}``

— loadable directly into Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.  Spans become ``ph="X"`` complete events with
microsecond ``ts``/``dur``; instant events become ``ph="i"``.  Each
traced process (the parent, or one sweep row) gets its own ``pid`` so
Perfetto draws it as a separate track, and ``otherData.rows`` carries
the row metadata + counter snapshots the summarizer needs.

Every JSON write here is canonical (``sort_keys=True``) — this module
is on reprolint NCC004's canonical-modules list.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from .tracer import SPAN, Tracer

__all__ = [
    "build_chrome_doc",
    "load_trace",
    "payload_rows",
    "summarize",
    "write_chrome_trace",
    "write_events_jsonl",
]

#: Event names that signal a degraded/abnormal condition; the summary
#: lists these individually (with their reasons) instead of only counting.
INCIDENT_EVENTS = (
    "sharded-degraded",
    "shard-worker-crash",
    "worker-crash",
    "violation",
    "bits-violation",
    "typed-fallback",
)


def payload_rows(
    parent: Tracer | dict[str, Any] | None,
    row_payloads: Iterable[tuple[int, dict[str, Any]]] = (),
) -> list[tuple[int, dict[str, Any]]]:
    """Normalize a parent tracer + per-row payloads into ``(pid, payload)``.

    The parent (if any) is pid 0; sweep row ``i`` becomes pid ``i + 1``
    so each run renders as its own Perfetto process track.
    """
    rows: list[tuple[int, dict[str, Any]]] = []
    if parent is not None:
        payload = parent.to_payload() if isinstance(parent, Tracer) else parent
        rows.append((0, payload))
    for idx, payload in row_payloads:
        if payload:
            rows.append((int(idx) + 1, payload))
    return rows


def build_chrome_doc(rows: list[tuple[int, dict[str, Any]]]) -> dict[str, Any]:
    """Convert ``(pid, payload)`` rows into one Chrome trace document."""
    events: list[dict[str, Any]] = []
    row_meta: list[dict[str, Any]] = []
    for pid, payload in rows:
        meta = dict(payload.get("meta") or {})
        label = meta.get("label") or ("parent" if pid == 0 else f"row-{pid - 1}")
        events.append(
            {"args": {"name": label}, "name": "process_name", "ph": "M", "pid": pid}
        )
        for kind, name, ts, dur, fields in payload.get("records", ()):
            ev: dict[str, Any] = {
                "args": dict(fields),
                "cat": "ncc",
                "name": name,
                "ph": "X" if kind == SPAN else "i",
                "pid": pid,
                "tid": 0,
                "ts": round(ts * 1e6, 3),
            }
            if kind == SPAN:
                ev["dur"] = round((dur or 0.0) * 1e6, 3)
            else:
                ev["s"] = "t"
            events.append(ev)
        row_meta.append(
            {
                "counters": payload.get("counters") or {},
                "meta": meta,
                "pid": pid,
            }
        )
    return {
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro-telemetry", "rows": row_meta},
        "traceEvents": events,
    }


def write_chrome_trace(path: str, doc: dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, sort_keys=True)
        fh.write("\n")


def write_events_jsonl(path: str, doc: dict[str, Any]) -> None:
    """One JSON object per trace event (metadata rows excluded)."""
    with open(path, "w", encoding="utf-8") as fh:
        for ev in doc["traceEvents"]:
            if ev.get("ph") == "M":
                continue
            fh.write(json.dumps(ev, sort_keys=True))
            fh.write("\n")


def load_trace(path: str) -> dict[str, Any]:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError(f"{path}: not a Chrome trace-event document")
    return doc


# ----------------------------------------------------------------------
# Summaries
# ----------------------------------------------------------------------
def _phase_table(doc: dict[str, Any]) -> dict[str, list[float]]:
    """Aggregate round spans: phase path -> [rounds, messages, bits, secs]."""
    table: dict[str, list[float]] = {}
    for ev in doc["traceEvents"]:
        if ev.get("name") != "round" or ev.get("ph") != "X":
            continue
        args = ev.get("args") or {}
        key = args.get("phases") or "(unphased)"
        row = table.setdefault(key, [0, 0, 0, 0.0])
        row[0] += 1
        row[1] += int(args.get("messages", 0))
        row[2] += int(args.get("bits", 0))
        row[3] += float(ev.get("dur", 0.0)) / 1e6
    return table


def _event_counts(doc: dict[str, Any]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for ev in doc["traceEvents"]:
        if ev.get("ph") == "i":
            name = ev.get("name", "?")
            counts[name] = counts.get(name, 0) + 1
    return dict(sorted(counts.items()))


def run_metas(doc: dict[str, Any]) -> list[dict[str, Any]]:
    """The per-run metadata recorded by ``Session.run``'s run spans."""
    metas = []
    for ev in doc["traceEvents"]:
        if ev.get("name") == "run" and ev.get("ph") == "X":
            args = dict(ev.get("args") or {})
            args["pid"] = ev.get("pid", 0)
            metas.append(args)
    return metas


def summarize(doc: dict[str, Any]) -> str:
    """A human-readable digest of one trace document."""
    events = doc["traceEvents"]
    spans = sum(1 for ev in events if ev.get("ph") == "X")
    instants = sum(1 for ev in events if ev.get("ph") == "i")
    rows = (doc.get("otherData") or {}).get("rows") or []
    lines = [
        f"trace: {spans} spans, {instants} events, "
        f"{max(len(rows), 1)} process track(s)"
    ]

    metas = run_metas(doc)
    for meta in metas:
        desc = ", ".join(
            f"{k}={meta[k]}"
            for k in ("algorithm", "n", "a", "seed", "engine", "scenario", "shards")
            if meta.get(k) not in (None, "")
        )
        out = ", ".join(
            f"{k}={meta[k]}"
            for k in ("rounds", "messages", "bits", "incidents")
            if k in meta
        )
        lines.append(f"run[pid {meta['pid']}]: {desc}  ->  {out}")

    table = _phase_table(doc)
    if table:
        lines.append("")
        lines.append(
            f"{'phase':<40} {'rounds':>8} {'messages':>12} {'bits':>14} {'secs':>9}"
        )
        for key in sorted(table):
            rounds, msgs, bits, secs = table[key]
            lines.append(
                f"{key:<40} {int(rounds):>8} {int(msgs):>12} "
                f"{int(bits):>14} {secs:>9.4f}"
            )

    counts = _event_counts(doc)
    if counts:
        lines.append("")
        lines.append("events: " + ", ".join(f"{k}={v}" for k, v in counts.items()))
    incidents = [
        ev
        for ev in events
        if ev.get("ph") == "i" and ev.get("name") in INCIDENT_EVENTS
    ]
    for ev in incidents[:50]:
        args = ev.get("args") or {}
        detail = ", ".join(f"{k}={v}" for k, v in sorted(args.items()))
        lines.append(f"  [pid {ev.get('pid', 0)}] {ev['name']}: {detail}")
    if len(incidents) > 50:
        lines.append(f"  ... {len(incidents) - 50} more incident events")

    merged: dict[str, int] = {}
    for row in rows:
        for key, value in (row.get("counters") or {}).items():
            merged[key] = merged.get(key, 0) + int(value)
    counters = {k: v for k, v in merged.items() if v}
    if counters:
        lines.append("")
        lines.append(
            "counters: " + ", ".join(f"{k}={v}" for k, v in sorted(counters.items()))
        )
    return "\n".join(lines)
