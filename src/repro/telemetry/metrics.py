"""Unified named counters over the stack's scattered module globals.

Two kinds of entries live in the registry:

* **Counters** — registry-owned integers for the rare events the tracer
  also records (violations, sharded degradations, worker crashes, shm
  growths, typed->object fallbacks).  ``Counter.inc`` is one integer add,
  cheap enough to run unconditionally at incident frequency.
* **Sources** — read-only callables wrapping counters that already exist
  as module globals on hot paths (``message_construction_count`` /
  ``payload_box_count`` in :mod:`repro.ncc.message`).  The hot-path
  globals stay exactly where they are — the registry only *reads* them
  at snapshot time, so the zero-construction/never-box accounting keeps
  its single-int-add cost.

``snapshot()`` returns a plain sorted dict, safe to ship over pool pipes
and to embed in telemetry sidecar files.
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["Counter", "MetricRegistry", "METRICS"]


class Counter:
    """A named monotonically-increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, k: int = 1) -> None:
        self.value += k

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class MetricRegistry:
    """Named counters + read-only sources with a sorted snapshot API."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._sources: dict[str, Callable[[], int]] = {}
        self._defaults_installed = False

    def counter(self, name: str) -> Counter:
        """Get-or-create the counter registered under ``name``."""
        c = self._counters.get(name)
        if c is None:
            if name in self._sources:
                raise ValueError(f"{name!r} is already registered as a source")
            c = self._counters[name] = Counter(name)
        return c

    def register_source(self, name: str, fn: Callable[[], int]) -> None:
        """Expose an externally-owned counter read-only under ``name``."""
        if name in self._counters:
            raise ValueError(f"{name!r} is already registered as a counter")
        self._sources[name] = fn

    def _install_default_sources(self) -> None:
        # Imported lazily: metrics sits below the engine modules on the
        # import graph, so pulling ncc.message at module-import time would
        # risk a cycle through the package __init__ chain.
        from ..ncc.message import message_construction_count, payload_box_count

        self._sources.setdefault(
            "ncc.messages_constructed", message_construction_count
        )
        self._sources.setdefault("ncc.payload_boxes", payload_box_count)
        self._defaults_installed = True

    def snapshot(self) -> dict[str, int]:
        """All registered values, keyed by name, sorted for stable output."""
        if not self._defaults_installed:
            self._install_default_sources()
        out = {name: c.value for name, c in self._counters.items()}
        for name, fn in self._sources.items():
            out[name] = int(fn())
        return dict(sorted(out.items()))

    @staticmethod
    def delta(before: dict[str, int], after: dict[str, int]) -> dict[str, int]:
        """Counter movement between two snapshots (new names count from 0)."""
        return dict(
            sorted(
                (name, after[name] - before.get(name, 0))
                for name in after
                if after[name] != before.get(name, 0)
            )
        )

    def describe(self) -> dict[str, Any]:  # pragma: no cover - debugging aid
        return {
            "counters": sorted(self._counters),
            "sources": sorted(self._sources),
        }


#: The process-wide registry every instrumented module shares.
METRICS = MetricRegistry()
