"""Sweep-level telemetry: merge per-row worker traces into one directory.

A :class:`SweepTelemetry` owns the parent-process tracer (pool publish /
dispatch / crash events land there) and collects one trace payload per
sweep row.  Serial rows are traced in-process; pool rows are traced
inside the worker and shipped back over the existing result pipes as a
``"__telemetry__"`` sidecar key that the session strips before the
canonical ``RunReport`` is built — the report JSONL stays byte-identical
with telemetry on or off.

``finalize()`` writes three sidecar artifacts into the output directory:

``trace.json``
    One merged Chrome trace-event document; each row is its own
    Perfetto process track (pid = row index + 1, parent = pid 0).
``events.jsonl``
    The same records flattened to one JSON object per line.
``summary.txt``
    The human digest (:func:`repro.telemetry.export.summarize`).
"""

from __future__ import annotations

import os
from typing import Any

from .export import (
    build_chrome_doc,
    payload_rows,
    summarize,
    write_chrome_trace,
    write_events_jsonl,
)
from .tracer import Tracer

__all__ = ["SweepTelemetry"]


class SweepTelemetry:
    """Collects parent + per-row traces for one ``Session.run_many``."""

    def __init__(self, outdir: str):
        self.outdir = str(outdir)
        self.tracer = Tracer(label="sweep-parent", scope="sweep")
        self.rows: dict[int, dict[str, Any]] = {}

    def add_row(self, idx: int, payload: dict[str, Any] | None) -> None:
        """Attach one row's trace payload (rows may arrive out of order)."""
        if payload:
            self.rows[int(idx)] = payload

    def build_doc(self) -> dict[str, Any]:
        rows = payload_rows(self.tracer, sorted(self.rows.items()))
        return build_chrome_doc(rows)

    def finalize(self) -> dict[str, str]:
        """Write ``trace.json`` / ``events.jsonl`` / ``summary.txt``."""
        os.makedirs(self.outdir, exist_ok=True)
        doc = self.build_doc()
        paths = {
            "trace": os.path.join(self.outdir, "trace.json"),
            "events": os.path.join(self.outdir, "events.jsonl"),
            "summary": os.path.join(self.outdir, "summary.txt"),
        }
        write_chrome_trace(paths["trace"], doc)
        write_events_jsonl(paths["events"], doc)
        with open(paths["summary"], "w", encoding="utf-8") as fh:
            fh.write(summarize(doc))
            fh.write("\n")
        return paths
