"""Aggregate-and-Broadcast (Theorem 2.2), barriers, and pipelined broadcasts.

Appendix B.1: inputs funnel along the unique butterfly paths to the root
``(d, 0)`` (combining en route), then the result floods back up the binary
broadcast tree to every level-0 node and finally to the non-emulating
partner nodes.  Exactly ``2d + 2`` rounds, every round a real exchange.

The same path system gives two more tools used throughout the paper:

* :func:`barrier` — the synchronization pattern of Appendix B.1 ("every node
  delays its participation …"): an Aggregate-and-Broadcast of completion
  tokens.  Algorithms call it between phases, so its rounds are charged.
* :func:`pipelined_broadcast` — node 0 broadcasts ``k`` messages pipelined
  through the broadcast tree in ``d + k + 1`` rounds (used for shared-hash
  agreement and the U_high identifier broadcast of Section 4.2).
* :func:`gather_to_root` — route items from their owners to node 0 with
  smallest-first contention (the U_high gather), ``O(k + log n)`` rounds.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable, Mapping

from ..butterfly.topology import ButterflyGrid
from ..ncc.message import BatchBuilder, payloads_of
from ..ncc.network import NCCNetwork
from .functions import Aggregate


def aggregate_and_broadcast(
    net: NCCNetwork,
    bf: ButterflyGrid,
    inputs: Mapping[int, Any],
    fn: Aggregate,
    *,
    kind: str = "agg-bcast",
) -> Any:
    """All nodes learn ``fn(inputs.values())`` in ``2d + 2`` rounds.

    ``inputs`` maps member nodes of the set ``A`` to their input value;
    nodes outside the mapping contribute nothing.  Returns the aggregate
    (``None`` when ``inputs`` is empty — every node learns "no input").
    """
    d = bf.d
    cols = bf.columns

    # Round 1: non-emulating nodes hand their value to their partner.
    out = BatchBuilder(kind=kind)
    for u, v in inputs.items():
        if not bf.emulates(u):
            out.add(u, u - cols, ("P", v))
    inbox = net.exchange(out)

    # Values now live at level-0 butterfly nodes.
    acc: dict[int, Any] = {}  # column -> partial aggregate (current level)
    for u, v in inputs.items():
        if bf.emulates(u):
            acc[u] = fn(acc[u], v) if u in acc else v
    for host, received in inbox.items():
        for payload in payloads_of(received):
            v = payload[1]
            acc[host] = fn(acc[host], v) if host in acc else v

    # Aggregation phase: d rounds, level i -> i+1, fixing bit i to 0.
    for level in range(d):
        bit = 1 << level
        out = BatchBuilder(kind=kind)
        nxt: dict[int, Any] = {}
        for col, v in acc.items():
            target = col & ~bit
            if target == col:
                nxt[col] = fn(nxt[col], v) if col in nxt else v
            else:
                out.add(col, target, ("A", v))
        inbox = net.exchange(out)
        for host, received in inbox.items():
            for payload in payloads_of(received):
                v = payload[1]
                nxt[host] = fn(nxt[host], v) if host in nxt else v
        acc = nxt

    result = acc.get(0)

    # Broadcast phase: d rounds, level i+1 -> i; holders at level i+1 are
    # the columns with bits 0..i zero.  Broadcast happens even for an empty
    # aggregate: nodes must learn "no input" to stay synchronized (the
    # barrier relies on this).
    holders = [0]
    for level in range(d - 1, -1, -1):
        bit = 1 << level
        out = BatchBuilder(kind=kind)
        for col in holders:
            out.add(col, col | bit, ("B", result))
        net.exchange(out)
        holders = holders + [col | bit for col in holders]

    # Final round: level-0 nodes inform their non-emulating partners.
    out = BatchBuilder(kind=kind)
    for col in range(cols):
        partner = bf.partner_of_column(col)
        if partner is not None:
            out.add(col, partner, ("B", result))
    net.exchange(out)

    return result


def barrier(net: NCCNetwork, bf: ButterflyGrid, *, kind: str = "barrier") -> None:
    """Synchronize all nodes (Appendix B.1's token A&B); ``2d + 2`` rounds.

    With ``lightweight_sync`` set in the config extras the rounds elapse
    without materializing the messages (identical round count).
    """
    if net.config.extras.get("lightweight_sync", False):
        net.idle_rounds(2 * bf.d + 2)
        return
    from .functions import MAX

    aggregate_and_broadcast(
        net, bf, {u: 1 for u in range(net.n)}, MAX, kind=kind
    )


def pipelined_broadcast(
    net: NCCNetwork,
    bf: ButterflyGrid,
    items: Iterable[Any],
    *,
    src: int = 0,
    kind: str = "pipelined-bcast",
    collect: bool = True,
) -> dict[int, list[Any]]:
    """Broadcast ``items`` from node ``src`` to all nodes, pipelined.

    Section 4.2: items are "broadcast … in a pipelined fashion in a binary
    tree, which is implicitly given in the network" — node ``u``'s children
    are ``2u+1`` and ``2u+2``.  Each tree edge carries ``capacity/2`` items
    per round, so every node sends ≤ capacity and receives ≤ capacity/2
    messages per round, and ``k`` items reach everyone in
    ``O(log n + k/log n)`` rounds.

    Returns the items received per node (in order), for caller convenience;
    ``collect=False`` skips building that O(n·k) structure (an empty dict
    is returned) for callers that only broadcast for the rounds/traffic —
    the shared-hash agreement charge.  Network traffic is identical either
    way.
    """
    item_list = list(items)
    n = net.n
    if src == 0 and n > 1 and item_list:
        first = item_list[0]
        if all(it is first for it in item_list):
            # Identical items (the agreement broadcasts send [h] * k): the
            # per-node FIFO schedule collapses to one counter per tree
            # depth — same rounds, same senders in the same order, same
            # per-edge batches, without n deques or per-item inbox scans.
            return _broadcast_uniform(
                net, item_list, kind=kind, collect=collect
            )
    received: dict[int, list[Any]] = {u: [] for u in range(n)} if collect else {}
    if collect:
        received[src] = list(item_list)
    if n == 1 or not item_list:
        return received

    # Stage 0: if src is not node 0, ship the items to the tree root first,
    # batched at the capacity limit.
    if src != 0:
        cap = net.capacity
        idx = 0
        while idx < len(item_list):
            batch = item_list[idx : idx + cap]
            idx += cap
            out = BatchBuilder(kind=kind)
            out.add_many(src, (0,) * len(batch), [("S", it) for it in batch])
            net.exchange(out)
        received[0] = list(item_list)

    rate = max(1, net.capacity // 2)
    fifos: dict[int, deque] = {0: deque(item_list)}
    while fifos:
        out = BatchBuilder(kind=kind)
        for u in list(fifos):
            q = fifos[u]
            take = min(rate, len(q))
            batch = [q.popleft() for _ in range(take)]
            if not q:
                del fifos[u]
            # One wrapped column serves both children (the builder copies
            # nothing — payload refs are shared on the wire model too).
            wrapped = [("B", it) for it in batch]
            for child in (2 * u + 1, 2 * u + 2):
                if child < n:
                    out.add_many(u, (child,) * take, wrapped)
        if not out:
            break
        inbox = net.exchange(out)
        for v, rec in inbox.items():
            for payload in payloads_of(rec):
                item = payload[1]
                if collect and v != src:
                    received[v].append(item)
                if 2 * v + 1 < n:
                    fifos.setdefault(v, deque()).append(item)

    return received


def _broadcast_uniform(
    net: NCCNetwork,
    item_list: list,
    *,
    kind: str,
    collect: bool,
) -> dict[int, list[Any]]:
    """Closed-form pipelined broadcast of ``k`` identical items from node 0.

    Every internal node at binary-tree depth ``d`` has the same queue
    length every round (each parent ships the same batch size to both
    children), and the generic loop's sender order is ascending node id —
    the fifo dict stays sorted because each round's (re)insertions are the
    ascending senders' ascending child pairs, covering disjoint increasing
    id ranges.  So one depth-indexed counter dict replays the exact
    traffic: same rounds, same flat message order, same batch sizes and
    payload values.  Pinned differentially against the generic loop in
    ``tests/test_primitives.py``.
    """
    n = net.n
    k = len(item_list)
    item = item_list[0]
    rate = max(1, net.capacity // 2)
    last_internal = (n - 2) // 2  # deepest node with a child in range
    maxd = (last_internal + 1).bit_length() - 1
    qd: dict[int, int] = {0: k}  # tree depth -> queue length (uniform)
    while qd:
        out = BatchBuilder(kind=kind)
        takes = [(d, min(rate, qd[d])) for d in sorted(qd)]
        for d, take in takes:
            wrapped = [("B", item)] * take
            lo = (1 << d) - 1
            hi = min((1 << (d + 1)) - 2, last_internal)
            for u in range(lo, hi + 1):
                out.add_many(u, (2 * u + 1,) * take, wrapped)
                if 2 * u + 2 < n:
                    out.add_many(u, (2 * u + 2,) * take, wrapped)
        net.exchange(out)
        for d, take in takes:
            qd[d] -= take
            if not qd[d]:
                del qd[d]
            if d + 1 <= maxd:
                qd[d + 1] = qd.get(d + 1, 0) + take
    if not collect:
        return {}
    received = {u: [item] * k for u in range(n)}
    received[0] = list(item_list)
    return received


def gather_to_root(
    net: NCCNetwork,
    bf: ButterflyGrid,
    items: Mapping[int, Any],
    *,
    kind: str = "gather",
) -> list[Any]:
    """Route one item per owning node to node 0, smallest-id first.

    Section 4.2 (U_high): "every node u ∈ U_high sends its identifier to the
    node v with identifier 0; … whenever multiple identifiers contend to use
    the same edge in the same round, the smallest identifier is sent first."
    Items route along the butterfly path system toward column 0 without
    combining.  Returns the items in the order node 0 received them
    (ties broken by owner id).
    """
    from ..butterfly.routing import CombiningRouter

    if net.n == 1:
        return [items[0]] if 0 in items else []

    # Non-emulating owners hand their item to the partner column first.
    cols = bf.columns
    out = BatchBuilder(kind=kind)
    for u, v in items.items():
        if not bf.emulates(u):
            out.add(u, u - cols, ("H", u, v))
    inbox = net.exchange(out)
    injected: list[tuple[int, int, Any]] = [
        (u, u, v) for u, v in items.items() if bf.emulates(u)
    ]
    for host, rec in inbox.items():
        for _tag, owner, v in payloads_of(rec):
            injected.append((host, owner, v))

    router = CombiningRouter(
        net,
        bf,
        rank_of=lambda g: g,  # smallest owner id wins contention
        target_col_of=lambda g: 0,
        combine=lambda a, b: a,  # groups are unique; never fires
        kind=kind,
    )
    for col, owner, v in injected:
        router.inject(col, owner, v)
    res = router.run()
    return [res.results[owner] for owner in sorted(res.results)]
