"""The Multicast Algorithm (Theorem 2.5, Appendix B.4).

Given multicast trees (Theorem 2.4) with congestion ``C``, every source
``sᵢ`` delivers its packet ``pᵢ`` to all members of ``Aᵢ``:

1. ``sᵢ`` sends ``pᵢ`` directly to the host of the tree root ``h(i)``;
2. the *Spreading Phase* floods copies down the recorded tree edges with
   rank-based contention (reverse of the combining protocol);
3. every leaf ``l(i, u)`` forwards ``pᵢ`` to its member ``u`` in a round
   chosen uniformly from ``{1..⌈ℓ̂/log n⌉}``.

Time O(C + ℓ̂/log n + log n) w.h.p.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Hashable, Mapping

try:  # pragma: no cover - exercised only on numpy-free installs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from ..butterfly.routing import MulticastRouter, TreeSet
from ..butterfly.topology import ButterflyGrid
from ..ncc.message import (
    BatchBuilder,
    InboxBatch,
    payloads_of,
    typed_payloads_enabled,
)
from ..ncc.network import NCCNetwork
from ..rng import SharedRandomness
from .aggregate_broadcast import barrier
from .aggregation import _group_key
from .direct import send_chunked

GroupT = Hashable

#: Wire dtype of the root-handoff ("M") and leaf-delivery ("L") packets.
#: Sizes exactly like the object-path ``(tag, g, payload)`` tuples (1-char
#: tag = short string = 4 bits), so typed and object runs account identical
#: wire bits.
MCAST_DTYPE = (
    _np.dtype([("tag", "U1"), ("g", "i8"), ("val", "i8")])
    if _np is not None
    else None
)


@dataclass
class MulticastOutcome:
    """Per-node received payloads: ``received[u][g] = p_g``."""

    received: dict[int, dict[GroupT, Any]] = field(default_factory=dict)
    rounds: int = 0

    def at(self, node: int) -> dict[GroupT, Any]:
        return self.received.get(node, {})


def run_multicast(
    net: NCCNetwork,
    bf: ButterflyGrid,
    shared: SharedRandomness,
    trees: TreeSet,
    packets: Mapping[GroupT, Any],
    sources: Mapping[GroupT, int],
    *,
    ell_bound: int | None = None,
    tag: object = None,
    kind: str = "multicast",
) -> MulticastOutcome:
    """Multicast each group's packet to all tree members.

    ``packets[g]`` is group ``g``'s payload; ``sources[g]`` the node that
    holds it.  ``ell_bound`` is the ℓ̂ the nodes are assumed to know
    (max memberships per node); computed from the trees when omitted.
    Only groups present in ``packets`` are multicast — the trees may serve
    many rounds of an algorithm with shrinking active sets.
    """
    if tag is None:
        tag = shared.fresh_tag("multicast")
    start = net.round_index
    outcome = MulticastOutcome()
    with net.phase(kind):
        nonce = shared.next_nonce()
        _rank = shared.rank_function()
        salt = shared.salted_key

        def rank(key: int) -> int:
            return _rank(salt(nonce, key))

        # ---- Sources hand packets to the tree-root hosts.  The paper's
        # simplified variant has one group per source (a single round); the
        # extension it mentions — nodes sourcing multiple multicasts — just
        # batches these sends at the capacity limit.
        #
        # An instance whose groups and payloads are all plain int64-range
        # ints rides the typed wire through every stage (handoff here,
        # spreading inside the router, leaf delivery below); anything else
        # keeps the object tuples — the fallback contract.
        lim = 1 << 62
        use_typed = (
            MCAST_DTYPE is not None
            and typed_payloads_enabled()
            and all(
                type(g) is int
                and type(p) is int
                and -lim < g < lim
                and -lim < p < lim
                for g, p in packets.items()
            )
        )
        per_source: dict[int, tuple[list[int], list[Any]]] = {}
        for g, payload in packets.items():
            root = trees.root.get(g)
            if root is None:
                raise KeyError(f"no multicast tree for group {g!r}")
            src = sources[g]
            c = per_source.get(src)
            if c is None:
                per_source[src] = c = ([], [])
            c[0].append(bf.host(root))
            c[1].append(("M", g, payload))
        root_packets: dict[GroupT, Any] = {}
        for inbox in send_chunked(
            net,
            per_source,
            net.capacity,
            kind=kind,
            dtype=MCAST_DTYPE if use_typed else None,
        ):
            for received in inbox.values():
                arr = (
                    received.payload_array()
                    if type(received) is InboxBatch
                    else None
                )
                if arr is not None:
                    for g, payload in zip(
                        arr["g"].tolist(), arr["val"].tolist()
                    ):
                        root_packets[g] = payload
                else:
                    for _tag, g, payload in payloads_of(received):
                        root_packets[g] = payload

        # ---- Spreading phase down the recorded trees.
        router = MulticastRouter(
            net, bf, trees, rank_of=lambda g: rank(_group_key(g)), kind=kind
        )
        res = router.run(root_packets)
        barrier(net, bf)

        # ---- Leaf -> member delivery in a random-round window.
        if ell_bound is None:
            ell_bound = trees.member_load()
        window = max(1, math.ceil(max(1, ell_bound) / max(1, net.log2n)))
        if use_typed:
            # Same random round draws as the object flow; the draws simply
            # accumulate into columns instead of per-packet builder adds.
            rows: list[tuple[list, list, list, list]] = [
                ([], [], [], []) for _ in range(window)
            ]
            for col, payloads in res.results.items():
                host = col  # level-0 column col is hosted by NCC node col
                for g, payload in payloads.items():
                    for member in trees.leaf_members.get(g, {}).get(col, ()):
                        r_rng = shared.node_rng(
                            host, (tag, "leaf", _group_key(g), member)
                        )
                        row = rows[r_rng.randrange(window)]
                        row[0].append(host)
                        row[1].append(member)
                        row[2].append(g)
                        row[3].append(payload)
            schedule = []
            for srcs, dsts, gs, vals in rows:
                out = BatchBuilder(kind=kind, dtype=MCAST_DTYPE)
                if srcs:
                    payload_arr = _np.empty(len(srcs), dtype=MCAST_DTYPE)
                    payload_arr["tag"] = "L"
                    payload_arr["g"] = gs
                    payload_arr["val"] = vals
                    out.add_arrays(srcs, dsts, payload_arr)
                schedule.append(out)
        else:
            schedule = [BatchBuilder(kind=kind) for _ in range(window)]
            for col, payloads in res.results.items():
                host = col  # level-0 column col is hosted by NCC node col
                for g, payload in payloads.items():
                    for member in trees.leaf_members.get(g, {}).get(col, ()):
                        r_rng = shared.node_rng(
                            host, (tag, "leaf", _group_key(g), member)
                        )
                        schedule[r_rng.randrange(window)].add(
                            host, member, ("L", g, payload)
                        )
        for r in range(window):
            inbox = net.exchange(schedule[r])
            for u, received in inbox.items():
                arr = (
                    received.payload_array()
                    if type(received) is InboxBatch
                    else None
                )
                if arr is not None:
                    got = outcome.received.setdefault(u, {})
                    for g, payload in zip(
                        arr["g"].tolist(), arr["val"].tolist()
                    ):
                        got[g] = payload
                else:
                    for _tag, g, payload in payloads_of(received):
                        outcome.received.setdefault(u, {})[g] = payload
        barrier(net, bf)

    outcome.rounds = net.round_index - start
    return outcome
