"""The Multi-Aggregation Algorithm (Theorem 2.6, Appendix B.5).

Every source multicasts its packet down its tree; each leaf ``l(i, u)``
re-keys the received packet to its member: ``pᵢ → (id(u), pᵢ)``; the
re-keyed packets are scattered to random level-0 nodes and then aggregated
— with the distributive ``f`` — toward ``h(id(u))``, whence the combined
value ``f({pᵢ : u ∈ Aᵢ})`` is delivered to ``u``.

Time O(C + log n) w.h.p. (Corollary 1 instantiates this with the broadcast
trees: O(Σ_{u∈S} d(u)/n + log n)).

The ``annotate`` hook implements the paper's one modification (Section
5.3): the matching algorithm lets each leaf annotate the re-keyed packet
with a uniform random value so that MIN-combining selects a uniformly
random unmatched neighbour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Mapping

from ..butterfly.routing import CombiningRouter, MulticastRouter, TreeSet
from ..butterfly.topology import ButterflyGrid
from ..ncc.message import BatchBuilder, payloads_of
from ..ncc.network import NCCNetwork
from ..rng import SharedRandomness
from .aggregate_broadcast import barrier
from .aggregation import _group_key
from .direct import send_chunked
from .functions import Aggregate

GroupT = Hashable
AnnotateT = Callable[["object", GroupT, int, Any], Any]


@dataclass
class MultiAggregationOutcome:
    """``values[u] = f({p_i : u ∈ A_i}))`` for every reached node u.

    With a ``result_key`` (the keyed extension of Appendix B.5),
    ``keyed[u][k] = f({p_i : u ∈ A_i, result_key(i) = k})`` instead and
    ``values`` is left empty.
    """

    values: dict[int, Any] = field(default_factory=dict)
    keyed: dict[int, dict[Any, Any]] = field(default_factory=dict)
    rounds: int = 0


def run_multi_aggregation(
    net: NCCNetwork,
    bf: ButterflyGrid,
    shared: SharedRandomness,
    trees: TreeSet,
    packets: Mapping[GroupT, Any],
    sources: Mapping[GroupT, int],
    fn: Aggregate,
    *,
    annotate: AnnotateT | None = None,
    result_key: Callable[[GroupT], Any] | None = None,
    tag: object = None,
    kind: str = "multi-aggregation",
) -> MultiAggregationOutcome:
    """Run Multi-Aggregation over pre-built multicast trees.

    Only sources present in ``packets`` participate (the active set S of
    Corollary 1).  When ``annotate`` is given, each leaf transforms the
    re-keyed value via ``annotate(leaf_rng, group, member, payload)`` before
    aggregation.  When ``result_key`` is given (the keyed extension the
    paper sketches in Appendix B.5: "to receive aggregates corresponding to
    distinct aggregations"), packets of groups with different keys stay
    separate: member ``u`` receives one aggregate per key in
    ``outcome.keyed[u]``, delivered in capacity-respecting batches.
    """
    if tag is None:
        tag = shared.fresh_tag("multi-aggregation")
    start = net.round_index
    outcome = MultiAggregationOutcome()
    with net.phase(kind):
        nonce_spread = shared.next_nonce()
        nonce_agg = shared.next_nonce()
        _rank = shared.rank_function()
        _target = shared.target_function(bf.columns)
        salt = shared.salted_key

        def spread_rank(key: int) -> int:
            return _rank(salt(nonce_spread, key))

        def agg_rank(key: int) -> int:
            return _rank(salt(nonce_agg, key))

        def target_col(key: int) -> int:
            return _target(salt(nonce_agg, key))

        # ---- Sources hand packets to tree-root hosts, batched at the
        # capacity limit (supports the multi-source extension of App. B.5).
        per_source: dict[int, tuple[list[int], list[Any]]] = {}
        for g, payload in packets.items():
            root = trees.root.get(g)
            if root is None:
                raise KeyError(f"no multicast tree for group {g!r}")
            src = sources[g]
            c = per_source.get(src)
            if c is None:
                per_source[src] = c = ([], [])
            c[0].append(bf.host(root))
            c[1].append(("M", g, payload))
        root_packets: dict[GroupT, Any] = {}
        for inbox in send_chunked(net, per_source, net.capacity, kind=kind):
            for received in inbox.values():
                for _tag, g, payload in payloads_of(received):
                    root_packets[g] = payload

        # ---- Spreading phase.
        mrouter = MulticastRouter(
            net, bf, trees, rank_of=lambda g: spread_rank(_group_key(g)), kind=kind
        )
        res = mrouter.run(root_packets)
        barrier(net, bf)

        # ---- Leaf re-keying + scatter to random level-0 nodes.  Router
        # groups are the member id, or (member, key) in keyed mode.
        def group_key_of(rg: Any) -> int:
            if result_key is None:
                return rg
            return _group_key(rg)

        router = CombiningRouter(
            net,
            bf,
            rank_of=lambda rg: agg_rank(group_key_of(rg)),
            target_col_of=lambda rg: target_col(group_key_of(rg)),
            combine=fn.combine,
            kind=kind,
        )
        batch = net.config.batch_size(net.n)
        pending: list[BatchBuilder] = []
        for col, payloads in sorted(res.results.items()):
            host = col
            leaf_rng = shared.node_rng(host, (tag, "leaf"))
            rekeyed: list[tuple[Any, Any]] = []
            for g, payload in sorted(payloads.items(), key=lambda kv: repr(kv[0])):
                for member in trees.leaf_members.get(g, {}).get(col, ()):
                    value = (
                        annotate(leaf_rng, g, member, payload)
                        if annotate is not None
                        else payload
                    )
                    rgroup = member if result_key is None else (member, result_key(g))
                    rekeyed.append((rgroup, value))
            for j, (rgroup, value) in enumerate(rekeyed):
                dest = leaf_rng.randrange(bf.columns)
                r = j // batch
                while len(pending) <= r:
                    pending.append(BatchBuilder(kind=kind))
                pending[r].add(host, dest, ("S", dest, rgroup, value))
        for round_msgs in pending:
            inbox = net.exchange(round_msgs)
            for ms in inbox.values():
                for _tag, col2, rgroup, value in payloads_of(ms):
                    router.inject(col2, rgroup, value)
        barrier(net, bf)

        # ---- Aggregation toward h(·) and final delivery (batched: in
        # keyed mode one member may receive several aggregates).
        agg_res = router.run()
        barrier(net, bf)
        per_root: dict[int, tuple[list[int], list[Any]]] = {}
        for rgroup, value in agg_res.results.items():
            member = rgroup if result_key is None else rgroup[0]
            src = target_col(group_key_of(rgroup))  # host of (d, h(·))
            c = per_root.get(src)
            if c is None:
                per_root[src] = c = ([], [])
            c[0].append(member)
            c[1].append(("R", rgroup, value))
        for inbox in send_chunked(net, per_root, net.capacity, kind=kind):
            for u, ms in inbox.items():
                for _tag, rgroup, value in payloads_of(ms):
                    if result_key is None:
                        outcome.values[u] = value
                    else:
                        outcome.keyed.setdefault(u, {})[rgroup[1]] = value
        barrier(net, bf)

    outcome.rounds = net.round_index - start
    return outcome
