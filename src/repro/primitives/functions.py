"""Distributive aggregate functions (Section 2.1).

An aggregate function ``f`` is *distributive* when some ``g`` satisfies
``f(S) = g(f(S₁), …, f(S_ℓ))`` for every partition of the multiset ``S``.
For all functions used in the paper (MAX, MIN, SUM, XOR and products
thereof) ``g = f``, so an aggregate here is simply an associative,
commutative binary ``combine`` — exactly what butterfly nodes apply when two
packets of one aggregation group collide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

try:  # pragma: no cover - exercised only on numpy-free installs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


@dataclass(frozen=True)
class Aggregate:
    """A distributive aggregate: an associative commutative binary
    ``combine``, optionally paired with the numpy ufunc computing the same
    reduction over int64 columns (``ufunc``).  The ufunc is what lets the
    typed aggregation path collapse a column of colliding packets without
    touching Python per element; aggregates without one simply keep the
    object path."""

    name: str
    combine: Callable[[Any, Any], Any]
    ufunc: Any = field(default=None, compare=False)

    def reduce(self, values: Iterable[Any]) -> Any:
        """Reference reduction (used by oracles/tests); None on empty input."""
        acc = _SENTINEL
        for v in values:
            acc = v if acc is _SENTINEL else self.combine(acc, v)
        return None if acc is _SENTINEL else acc

    def __call__(self, a: Any, b: Any) -> Any:
        return self.combine(a, b)


_SENTINEL = object()

SUM = Aggregate("SUM", lambda a, b: a + b, _np.add if _np is not None else None)
MIN = Aggregate(
    "MIN", lambda a, b: a if a <= b else b, _np.minimum if _np is not None else None
)
MAX = Aggregate(
    "MAX", lambda a, b: a if a >= b else b, _np.maximum if _np is not None else None
)
XOR = Aggregate(
    "XOR", lambda a, b: a ^ b, _np.bitwise_xor if _np is not None else None
)

#: (xor, count) pairs — the aggregate of the Identification Algorithm
#: (Section 4.1): first coordinates XOR, second coordinates add.
xor_count = Aggregate("XOR_COUNT", lambda a, b: (a[0] ^ b[0], a[1] + b[1]))


def min_by_key(name: str = "MIN_BY_KEY") -> Aggregate:
    """Keep the value whose first component (the key) is smallest.

    Ties break on the full tuple, which keeps the combiner deterministic —
    important for reproducibility of e.g. the matching algorithm's
    random-neighbour selection.
    """
    return Aggregate(name, lambda a, b: a if a <= b else b)


def tuple_of(*parts: Aggregate) -> Aggregate:
    """Componentwise product aggregate: combine position i with parts[i]."""
    name = "TUPLE(" + ",".join(p.name for p in parts) + ")"

    def combine(a: Any, b: Any) -> Any:
        if len(a) != len(parts) or len(b) != len(parts):
            raise ValueError("tuple aggregate arity mismatch")
        return tuple(p.combine(x, y) for p, x, y in zip(parts, a, b))

    return Aggregate(name, combine)


def first_wins(name: str = "ANY") -> Aggregate:
    """Arbitrary-choice aggregate (Multicast Tree Setup routes with 'an
    arbitrary aggregate function'); keeps the first operand."""
    return Aggregate(name, lambda a, b: a)
