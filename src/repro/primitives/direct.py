"""Capacity-respecting direct (clique-edge) exchanges.

Several steps of the paper bypass the butterfly and use the clique edges
directly, always spreading the sends over a fixed window of rounds with
randomly (or hash-)chosen round indices so that per-round loads stay at
O(log n) w.h.p. — e.g. Stage 3 of the orientation algorithm, the U_high
red-edge deliveries, and the leaf→member deliveries of the multicast.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, Iterator, Mapping

try:  # pragma: no cover - exercised only on numpy-free installs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from ..ncc.message import BatchBuilder, InboxBatch, Message, merge_round_inboxes
from ..ncc.network import NCCNetwork

SendT = tuple[int, int, Any]  # (src, dst, payload)

#: Per-sender send queue as parallel columns: src -> (dsts, payloads).
ColumnsT = Mapping[int, tuple[list[int], list[Any]]]


def send_direct(
    net: NCCNetwork,
    sends: Iterable[SendT],
    *,
    kind: str = "direct",
    dtype: Any = None,
) -> dict[int, list[Message] | InboxBatch]:
    """One round of direct messages; returns the inboxes.

    Sends are grouped per sender into lazy columnar submissions (the
    builder's deferred mode) so the batched round engine can account and
    deliver them without constructing ``Message`` objects; sender order
    (first occurrence) and per-sender message order match what a flat
    message list would produce, so the round is engine- and
    representation-independent.

    A caller whose payloads all match a declared numpy ``dtype`` (an int64
    scalar or a flat struct of int/str/bool/float fields) may pass it: the
    round then ships as typed columns — no per-payload Python objects on
    the wire, identical accounted bits.  Payloads that do not convert fall
    back to the object path silently (the fallback contract).
    """
    out = BatchBuilder(kind=kind, dtype=dtype)
    if out._dtype is not None:
        srcs: list[int] = []
        dsts: list[int] = []
        pays: list[Any] = []
        for src, dst, payload in sends:
            srcs.append(src)
            dsts.append(dst)
            pays.append(payload)
        if srcs:
            try:
                values = _np.array(pays, dtype=out._dtype)
            except (TypeError, ValueError, OverflowError):
                out = BatchBuilder(kind=kind)
                for src, dst, payload in zip(srcs, dsts, pays):
                    out.add(src, dst, payload)
            else:
                out.add_arrays(srcs, dsts, values)
        return net.exchange(out)
    for src, dst, payload in sends:
        out.add(src, dst, payload)
    return net.exchange(out)


def send_chunked(
    net: NCCNetwork,
    per_source: ColumnsT,
    chunk: int,
    *,
    kind: str = "direct",
    dtype: Any = None,
) -> Iterator[dict[int, list[Message] | InboxBatch]]:
    """Drain per-sender column queues at ``chunk`` messages per round.

    Every sender advances through its queue in lockstep (round ``r`` sends
    slice ``[r*chunk : (r+1)*chunk]``), the pattern the paper uses whenever
    sources hand off more packets than the capacity allows (multicast and
    multi-aggregation root handoffs, final keyed deliveries).  At least one
    round always elapses, even with no traffic.  Yields each round's
    inboxes; rounds are submitted columnar (lazily — the column slices go
    straight into the builder, no ``Message`` objects).

    With a declared ``dtype`` each sender's slice converts to a typed
    column; a slice whose payloads don't fit the dtype degrades that
    round's builder to the object layout (and is charged identical bits).
    """
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    rounds_needed = max(
        (math.ceil(len(dsts) / chunk) for dsts, _ in per_source.values()),
        default=0,
    )
    rounds_needed = max(1, rounds_needed)
    for r in range(rounds_needed):
        lo, hi = r * chunk, (r + 1) * chunk
        out = BatchBuilder(kind=kind, dtype=dtype)
        for src, (dsts, payloads) in per_source.items():
            if lo >= len(dsts):
                continue
            dslice, pslice = dsts[lo:hi], payloads[lo:hi]
            if out._dtype is not None:
                try:
                    values = _np.array(pslice, dtype=out._dtype)
                except (TypeError, ValueError, OverflowError):
                    out.add_many(src, dslice, pslice)  # degrades builder
                else:
                    out.add_array(src, dslice, values)
            else:
                out.add_many(src, dslice, pslice)
        yield net.exchange(out)


def spread_exchange(
    net: NCCNetwork,
    sends: Iterable[SendT],
    window: int,
    *,
    round_of: Callable[[int, SendT], int] | None = None,
    rng=None,
    kind: str = "direct-spread",
) -> dict[int, list[Message] | InboxBatch]:
    """Send messages spread over ``window`` rounds; merge all inboxes.

    ``round_of(index, send)`` may pin a message to a specific round in
    ``[0, window)`` (the paper's hash-selected rounds, e.g. ``r(id(e))`` in
    Stage 3); otherwise rounds are chosen uniformly via ``rng`` (falling
    back to a deterministic stripe).  The window always elapses fully —
    these are fixed-length protocol sub-phases.  The merged inboxes stay
    lazy when the engine delivered column views (concatenating columns,
    not messages).
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    schedule = [BatchBuilder(kind=kind) for _ in range(window)]
    for idx, send in enumerate(sends):
        src, dst, payload = send
        if round_of is not None:
            r = round_of(idx, send) % window
        elif rng is not None:
            r = rng.randrange(window)
        else:
            r = idx % window
        schedule[r].add(src, dst, payload)
    merged: dict[int, list[Message] | InboxBatch] = {}
    for r in range(window):
        merge_round_inboxes(merged, net.exchange(schedule[r]))
    return merged


def batched_window(count: int, batch: int) -> int:
    """Rounds needed to send ``count`` messages at ``batch`` per round."""
    return max(1, math.ceil(count / max(1, batch)))
