"""Capacity-respecting direct (clique-edge) exchanges.

Several steps of the paper bypass the butterfly and use the clique edges
directly, always spreading the sends over a fixed window of rounds with
randomly (or hash-)chosen round indices so that per-round loads stay at
O(log n) w.h.p. — e.g. Stage 3 of the orientation algorithm, the U_high
red-edge deliveries, and the leaf→member deliveries of the multicast.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable

from ..ncc.message import Message, MessageBatch
from ..ncc.network import NCCNetwork

SendT = tuple[int, int, Any]  # (src, dst, payload)


def send_direct(
    net: NCCNetwork, sends: Iterable[SendT], *, kind: str = "direct"
) -> dict[int, list[Message]]:
    """One round of direct messages; returns the inboxes.

    Sends are grouped per sender into columnar
    :class:`~repro.ncc.message.MessageBatch` submissions so the batched
    round engine can account them without per-message walks; sender order
    (first occurrence) and per-sender message order match what a flat
    message list would produce, so the round is engine- and
    representation-independent.
    """
    cols: dict[int, tuple[list[int], list[Any]]] = {}
    for src, dst, payload in sends:
        c = cols.get(src)
        if c is None:
            cols[src] = c = ([], [])
        c[0].append(dst)
        c[1].append(payload)
    return net.exchange(
        {
            src: MessageBatch.from_columns(src, dsts, payloads, kind=kind)
            for src, (dsts, payloads) in cols.items()
        }
    )


def spread_exchange(
    net: NCCNetwork,
    sends: Iterable[SendT],
    window: int,
    *,
    round_of: Callable[[int, SendT], int] | None = None,
    rng=None,
    kind: str = "direct-spread",
) -> dict[int, list[Message]]:
    """Send messages spread over ``window`` rounds; merge all inboxes.

    ``round_of(index, send)`` may pin a message to a specific round in
    ``[0, window)`` (the paper's hash-selected rounds, e.g. ``r(id(e))`` in
    Stage 3); otherwise rounds are chosen uniformly via ``rng`` (falling
    back to a deterministic stripe).  The window always elapses fully —
    these are fixed-length protocol sub-phases.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    schedule: dict[int, list[Message]] = {r: [] for r in range(window)}
    for idx, send in enumerate(sends):
        src, dst, payload = send
        if round_of is not None:
            r = round_of(idx, send) % window
        elif rng is not None:
            r = rng.randrange(window)
        else:
            r = idx % window
        schedule[r].append(Message(src, dst, payload, kind=kind))
    merged: dict[int, list[Message]] = {}
    for r in range(window):
        inbox = net.exchange(schedule[r])
        for dst, msgs in inbox.items():
            merged.setdefault(dst, []).extend(msgs)
    return merged


def batched_window(count: int, batch: int) -> int:
    """Rounds needed to send ``count`` messages at ``batch`` per round."""
    return max(1, math.ceil(count / max(1, batch)))
