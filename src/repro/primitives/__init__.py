"""Communication primitives of Section 2.2 / Appendix B.

Five primitives, matching the paper's theorems:

* :func:`~repro.primitives.aggregate_broadcast.aggregate_and_broadcast`
  (Theorem 2.2) plus the synchronization barrier built from it;
* :func:`~repro.primitives.aggregation.run_aggregation` (Theorem 2.3);
* :func:`~repro.primitives.multicast_setup.setup_multicast_trees`
  (Theorem 2.4);
* :func:`~repro.primitives.multicast.run_multicast` (Theorem 2.5);
* :func:`~repro.primitives.multi_aggregation.run_multi_aggregation`
  (Theorem 2.6).

All primitives run every message through the NCC round engine and charge
the synchronization rounds the paper charges.
"""

from .functions import (
    Aggregate,
    MAX,
    MIN,
    SUM,
    XOR,
    min_by_key,
    xor_count,
)
from .aggregate_broadcast import (
    aggregate_and_broadcast,
    barrier,
    gather_to_root,
    pipelined_broadcast,
)
from .aggregation import AggregationProblem, run_aggregation
from .multicast import run_multicast
from .multicast_setup import setup_multicast_trees
from .multi_aggregation import run_multi_aggregation
from .direct import send_direct, spread_exchange

__all__ = [
    "Aggregate",
    "SUM",
    "MIN",
    "MAX",
    "XOR",
    "min_by_key",
    "xor_count",
    "aggregate_and_broadcast",
    "barrier",
    "pipelined_broadcast",
    "gather_to_root",
    "AggregationProblem",
    "run_aggregation",
    "setup_multicast_trees",
    "run_multicast",
    "run_multi_aggregation",
    "send_direct",
    "spread_exchange",
]
