"""The Aggregation Algorithm (Theorem 2.3, Appendix B.2).

Problem: aggregation groups ``A₁..A_N ⊆ V`` with targets ``t₁..t_N``; every
member ``u ∈ Aᵢ`` holds an input ``s_{u,i}``; target ``tᵢ`` must learn
``f({s_{u,i} : u ∈ Aᵢ})`` for a distributive ``f``.

Three phases, each ended by a synchronization barrier:

1. *Preprocessing* — every node turns its inputs into packets ``(i, s)``
   and sends them, in batches of ``⌈log n⌉`` per round, to uniformly random
   level-0 butterfly nodes (Lemma B.1).
2. *Combining* — the random-rank protocol routes all packets of group ``i``
   to the intermediate target ``h(i)`` on level ``d``, merging colliding
   same-group packets with ``f`` (Theorem B.2 / Lemma B.6).
3. *Postprocessing* — each intermediate target forwards its result to the
   real target ``tᵢ`` in a round chosen uniformly from
   ``{1..⌈ℓ̂₂/log n⌉}`` (Lemma B.7).

Running time O(L/n + (ℓ₁+ℓ̂₂)/log n + log n) w.h.p.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Hashable, Mapping

from ..butterfly.routing import CombiningRouter
from ..butterfly.topology import ButterflyGrid
from ..ncc.message import BatchBuilder, payloads_of
from ..ncc.network import NCCNetwork
from ..rng import SharedRandomness
from .aggregate_broadcast import barrier
from .functions import Aggregate

GroupT = Hashable


@dataclass
class AggregationProblem:
    """One instance of the Aggregation Problem.

    ``memberships[u]`` maps each group ``u`` belongs to, to ``u``'s input
    value for that group; ``targets[g]`` is the node that must learn the
    aggregate of group ``g``.  Every group with a member must have a target.
    """

    memberships: Mapping[int, Mapping[GroupT, Any]]
    targets: Mapping[GroupT, int]
    fn: Aggregate
    #: ℓ̂₂ — upper bound on groups-per-target known to all nodes; computed
    #: from the instance when omitted.
    ell2_bound: int | None = None

    def global_load(self) -> int:
        """L = Σ|Aᵢ| — the total number of packets."""
        return sum(len(m) for m in self.memberships.values())

    def ell1(self) -> int:
        """ℓ₁ — max groups one node is a member of."""
        return max((len(m) for m in self.memberships.values()), default=0)

    def ell2(self) -> int:
        """ℓ₂ — max groups one node is the target of."""
        per_target: dict[int, int] = {}
        for g, t in self.targets.items():
            per_target[t] = per_target.get(t, 0) + 1
        return max(per_target.values(), default=0)

    def validate(self) -> None:
        for u, groups in self.memberships.items():
            for g in groups:
                if g not in self.targets:
                    raise ValueError(f"group {g!r} (member {u}) has no target")


@dataclass
class AggregationOutcome:
    """Result of one aggregation run."""

    #: Aggregate per group, as delivered to the group's target.
    values: dict[GroupT, Any]
    #: Per-target view: target node -> {group: value}.
    by_target: dict[int, dict[GroupT, Any]] = field(default_factory=dict)
    rounds: int = 0


def run_aggregation(
    net: NCCNetwork,
    bf: ButterflyGrid,
    shared: SharedRandomness,
    problem: AggregationProblem,
    *,
    tag: object = None,
    kind: str = "aggregation",
) -> AggregationOutcome:
    """Execute the Aggregation Algorithm; see module docstring."""
    problem.validate()
    start = net.round_index
    if tag is None:
        tag = shared.fresh_tag("aggregation")
    with net.phase(kind):
        # One globally agreed rank/target function, salted per invocation
        # (the paper's hash functions are set up once, beforehand).
        nonce = shared.next_nonce()
        rank = shared.rank_function()
        target_col = shared.target_function(bf.columns)
        salt = shared.salted_key

        def key_of(g: GroupT, _cache: dict = {}) -> int:
            k = _cache.get(g)
            if k is None:
                k = _cache[g] = salt(nonce, _group_key(g))
            return k

        router = CombiningRouter(
            net,
            bf,
            rank_of=lambda g: rank(key_of(g)),
            target_col_of=lambda g: target_col(key_of(g)),
            combine=problem.fn.combine,
            kind=kind,
        )

        # ----- Preprocessing: batched injection to random level-0 nodes,
        # submitted columnar (one BatchBuilder per injection round).
        batch = net.config.batch_size(net.n)
        pending: list[BatchBuilder] = []
        for u, groups in problem.memberships.items():
            u_rng = shared.node_rng(u, (tag, "inject"))
            ordered = sorted(groups.items(), key=lambda kv: repr(kv[0]))
            for j, (g, value) in enumerate(ordered):
                col = u_rng.randrange(bf.columns)
                r = j // batch
                while len(pending) <= r:
                    pending.append(BatchBuilder(kind=kind))
                # The host of level-0 column ``col`` is NCC node ``col``.
                pending[r].add(u, col, ("I", col, g, value))
        for round_msgs in pending:
            inbox = net.exchange(round_msgs)
            for msgs in inbox.values():
                for _tag, col, g, value in payloads_of(msgs):
                    router.inject(col, g, value)
        barrier(net, bf)

        # ----- Combining.
        res = router.run()
        barrier(net, bf)

        # ----- Postprocessing: deliver to real targets in random rounds.
        ell2 = problem.ell2_bound if problem.ell2_bound is not None else problem.ell2()
        window = max(1, math.ceil(ell2 / max(1, net.log2n)))
        schedule = [BatchBuilder(kind=kind) for _ in range(window)]
        for g, value in res.results.items():
            t = problem.targets[g]
            src = target_col(key_of(g))  # host of (d, h(g))
            r_rng = shared.node_rng(src, (tag, "deliver", _group_key(g)))
            schedule[r_rng.randrange(window)].add(src, t, ("R", g, value))
        outcome = AggregationOutcome(values={}, rounds=0)
        for r in range(window):
            inbox = net.exchange(schedule[r])
            for t, msgs in inbox.items():
                for _tag, g, value in payloads_of(msgs):
                    outcome.values[g] = value
                    outcome.by_target.setdefault(t, {})[g] = value
        barrier(net, bf)

    outcome.rounds = net.round_index - start
    return outcome


def _group_key(g: GroupT) -> int:
    """Stable integer key for hashing structured group identifiers."""
    if isinstance(g, int):
        return g
    if isinstance(g, tuple):
        key = 0
        for part in g:
            key = key * 1_000_003 + (_group_key(part) + 1)
        return key
    if isinstance(g, str):
        acc = 0
        for ch in g:
            acc = acc * 131 + ord(ch)
        return acc
    raise TypeError(f"unsupported group identifier type {type(g).__name__}")
