"""The Aggregation Algorithm (Theorem 2.3, Appendix B.2).

Problem: aggregation groups ``A₁..A_N ⊆ V`` with targets ``t₁..t_N``; every
member ``u ∈ Aᵢ`` holds an input ``s_{u,i}``; target ``tᵢ`` must learn
``f({s_{u,i} : u ∈ Aᵢ})`` for a distributive ``f``.

Three phases, each ended by a synchronization barrier:

1. *Preprocessing* — every node turns its inputs into packets ``(i, s)``
   and sends them, in batches of ``⌈log n⌉`` per round, to uniformly random
   level-0 butterfly nodes (Lemma B.1).
2. *Combining* — the random-rank protocol routes all packets of group ``i``
   to the intermediate target ``h(i)`` on level ``d``, merging colliding
   same-group packets with ``f`` (Theorem B.2 / Lemma B.6).
3. *Postprocessing* — each intermediate target forwards its result to the
   real target ``tᵢ`` in a round chosen uniformly from
   ``{1..⌈ℓ̂₂/log n⌉}`` (Lemma B.7).

Running time O(L/n + (ℓ₁+ℓ̂₂)/log n + log n) w.h.p.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Hashable, Mapping

try:  # pragma: no cover - exercised only on numpy-free installs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from ..butterfly.routing import CombiningRouter
from ..butterfly.topology import ButterflyGrid
from ..ncc.message import (
    BatchBuilder,
    InboxBatch,
    payloads_of,
    typed_payloads_enabled,
)
from ..ncc.network import NCCNetwork
from ..rng import SharedRandomness
from .aggregate_broadcast import barrier
from .functions import Aggregate

GroupT = Hashable

#: Wire dtypes of the typed aggregation flow.  Each sizes exactly like its
#: object-path tuple counterpart (1-char tag = short string = 4 bits; int
#: fields size by binary length), so typed and object runs account
#: identical bits.
INJECT_DTYPE = (
    _np.dtype([("tag", "U1"), ("col", "i8"), ("g", "i8"), ("val", "i8")])
    if _np is not None
    else None
)
RESULT_DTYPE = (
    _np.dtype([("tag", "U1"), ("g", "i8"), ("val", "i8")])
    if _np is not None
    else None
)


def _typed_applicable(
    net: NCCNetwork, bf: ButterflyGrid, problem: AggregationProblem
) -> bool:
    """Whether this instance can run the fully typed flow.

    Requires numpy, the process-wide typed default, a ufunc-backed
    aggregate, lightweight sync (token traffic would mix object messages
    into the typed builders), a non-degenerate butterfly, and an instance
    whose groups/values are plain ints safely inside int64 (for SUM the
    whole run's worst-case partial sum must fit, so the check bounds the
    total absolute mass).  Anything else keeps the object path — the
    documented fallback contract.
    """
    if (
        INJECT_DTYPE is None
        or not typed_payloads_enabled()
        or problem.fn.ufunc is None
        or bf.d <= 0
        or not net.config.extras.get("lightweight_sync", False)
    ):
        return False
    lo, hi = -(1 << 62), 1 << 62
    abs_sum = 0
    for groups in problem.memberships.values():
        for g, value in groups.items():
            if type(g) is not int or type(value) is not int:
                return False
            if not (lo < g < hi) or not (lo < value < hi):
                return False
            abs_sum += value if value >= 0 else -value
    if problem.fn.ufunc is _np.add and abs_sum >= hi:
        return False
    return True


@dataclass
class AggregationProblem:
    """One instance of the Aggregation Problem.

    ``memberships[u]`` maps each group ``u`` belongs to, to ``u``'s input
    value for that group; ``targets[g]`` is the node that must learn the
    aggregate of group ``g``.  Every group with a member must have a target.
    """

    memberships: Mapping[int, Mapping[GroupT, Any]]
    targets: Mapping[GroupT, int]
    fn: Aggregate
    #: ℓ̂₂ — upper bound on groups-per-target known to all nodes; computed
    #: from the instance when omitted.
    ell2_bound: int | None = None

    def global_load(self) -> int:
        """L = Σ|Aᵢ| — the total number of packets."""
        return sum(len(m) for m in self.memberships.values())

    def ell1(self) -> int:
        """ℓ₁ — max groups one node is a member of."""
        return max((len(m) for m in self.memberships.values()), default=0)

    def ell2(self) -> int:
        """ℓ₂ — max groups one node is the target of."""
        per_target: dict[int, int] = {}
        for g, t in self.targets.items():
            per_target[t] = per_target.get(t, 0) + 1
        return max(per_target.values(), default=0)

    def validate(self) -> None:
        for u, groups in self.memberships.items():
            for g in groups:
                if g not in self.targets:
                    raise ValueError(f"group {g!r} (member {u}) has no target")


@dataclass
class AggregationOutcome:
    """Result of one aggregation run."""

    #: Aggregate per group, as delivered to the group's target.
    values: dict[GroupT, Any]
    #: Per-target view: target node -> {group: value}.
    by_target: dict[int, dict[GroupT, Any]] = field(default_factory=dict)
    rounds: int = 0


def run_aggregation(
    net: NCCNetwork,
    bf: ButterflyGrid,
    shared: SharedRandomness,
    problem: AggregationProblem,
    *,
    tag: object = None,
    kind: str = "aggregation",
) -> AggregationOutcome:
    """Execute the Aggregation Algorithm; see module docstring."""
    problem.validate()
    start = net.round_index
    if tag is None:
        tag = shared.fresh_tag("aggregation")
    with net.phase(kind):
        # One globally agreed rank/target function, salted per invocation
        # (the paper's hash functions are set up once, beforehand).
        nonce = shared.next_nonce()
        rank = shared.rank_function()
        target_col = shared.target_function(bf.columns)
        salt = shared.salted_key

        def key_of(g: GroupT, _cache: dict = {}) -> int:
            k = _cache.get(g)
            if k is None:
                k = _cache[g] = salt(nonce, _group_key(g))
            return k

        use_typed = _typed_applicable(net, bf, problem)
        router = CombiningRouter(
            net,
            bf,
            rank_of=lambda g: rank(key_of(g)),
            target_col_of=lambda g: target_col(key_of(g)),
            combine=problem.fn.combine,
            ufunc=problem.fn.ufunc,
            kind=kind,
        )

        # ----- Preprocessing: batched injection to random level-0 nodes,
        # submitted columnar (one BatchBuilder per injection round).  The
        # random placement draws are identical in both flows; the typed
        # flow merely accumulates the draws into columns instead of
        # building per-packet tuples.
        batch = net.config.batch_size(net.n)
        if use_typed:
            pend_cols: list[tuple[list, list, list, list]] = []
            for u, groups in problem.memberships.items():
                u_rng = shared.node_rng(u, (tag, "inject"))
                ordered = sorted(groups.items(), key=lambda kv: repr(kv[0]))
                for j, (g, value) in enumerate(ordered):
                    col = u_rng.randrange(bf.columns)
                    r = j // batch
                    while len(pend_cols) <= r:
                        pend_cols.append(([], [], [], []))
                    row = pend_cols[r]
                    row[0].append(u)
                    # The host of level-0 column ``col`` is NCC node
                    # ``col``: the destination column doubles as the
                    # payload's ``col`` field.
                    row[1].append(col)
                    row[2].append(g)
                    row[3].append(value)
            for srcs, cols, gs, vals in pend_cols:
                out = BatchBuilder(kind=kind, dtype=INJECT_DTYPE)
                payload = _np.empty(len(srcs), dtype=INJECT_DTYPE)
                payload["tag"] = "I"
                payload["col"] = cols
                payload["g"] = gs
                payload["val"] = vals
                out.add_arrays(srcs, cols, payload)
                inbox = net.exchange(out)
                for msgs in inbox.values():
                    arr = (
                        msgs.payload_array()
                        if type(msgs) is InboxBatch
                        else None
                    )
                    if arr is not None:
                        router.inject_array(arr["col"], arr["g"], arr["val"])
                    else:
                        # Reference engine (or a degraded round) delivered
                        # boxed tuples; lower them back to columns so both
                        # engines drive the identical typed kernel.
                        pls = payloads_of(msgs)
                        router.inject_array(
                            [p[1] for p in pls],
                            [p[2] for p in pls],
                            [p[3] for p in pls],
                        )
        else:
            pending: list[BatchBuilder] = []
            for u, groups in problem.memberships.items():
                u_rng = shared.node_rng(u, (tag, "inject"))
                ordered = sorted(groups.items(), key=lambda kv: repr(kv[0]))
                for j, (g, value) in enumerate(ordered):
                    col = u_rng.randrange(bf.columns)
                    r = j // batch
                    while len(pending) <= r:
                        pending.append(BatchBuilder(kind=kind))
                    # The host of level-0 column ``col`` is NCC node ``col``.
                    pending[r].add(u, col, ("I", col, g, value))
            for round_msgs in pending:
                inbox = net.exchange(round_msgs)
                for msgs in inbox.values():
                    for _tag, col, g, value in payloads_of(msgs):
                        router.inject(col, g, value)
        barrier(net, bf)

        # ----- Combining.
        res = router.run()
        barrier(net, bf)

        # ----- Postprocessing: deliver to real targets in random rounds.
        ell2 = problem.ell2_bound if problem.ell2_bound is not None else problem.ell2()
        window = max(1, math.ceil(ell2 / max(1, net.log2n)))
        if use_typed:
            rows: list[tuple[list, list, list, list]] = [
                ([], [], [], []) for _ in range(window)
            ]
            for g, value in res.results.items():
                t = problem.targets[g]
                src = target_col(key_of(g))  # host of (d, h(g))
                r_rng = shared.node_rng(src, (tag, "deliver", _group_key(g)))
                row = rows[r_rng.randrange(window)]
                row[0].append(src)
                row[1].append(t)
                row[2].append(g)
                row[3].append(value)
            schedule = []
            for srcs, dsts, gs, vals in rows:
                out = BatchBuilder(kind=kind, dtype=RESULT_DTYPE)
                if srcs:
                    payload = _np.empty(len(srcs), dtype=RESULT_DTYPE)
                    payload["tag"] = "R"
                    payload["g"] = gs
                    payload["val"] = vals
                    out.add_arrays(srcs, dsts, payload)
                schedule.append(out)
        else:
            schedule = [BatchBuilder(kind=kind) for _ in range(window)]
            for g, value in res.results.items():
                t = problem.targets[g]
                src = target_col(key_of(g))  # host of (d, h(g))
                r_rng = shared.node_rng(src, (tag, "deliver", _group_key(g)))
                schedule[r_rng.randrange(window)].add(src, t, ("R", g, value))
        outcome = AggregationOutcome(values={}, rounds=0)
        for r in range(window):
            inbox = net.exchange(schedule[r])
            for t, msgs in inbox.items():
                arr = msgs.payload_array() if type(msgs) is InboxBatch else None
                if arr is not None:
                    by_t = outcome.by_target.setdefault(t, {})
                    for g, value in zip(arr["g"].tolist(), arr["val"].tolist()):
                        outcome.values[g] = value
                        by_t[g] = value
                else:
                    for _tag, g, value in payloads_of(msgs):
                        outcome.values[g] = value
                        outcome.by_target.setdefault(t, {})[g] = value
        barrier(net, bf)

    outcome.rounds = net.round_index - start
    return outcome


def _group_key(g: GroupT) -> int:
    """Stable integer key for hashing structured group identifiers."""
    if isinstance(g, int):
        return g
    if isinstance(g, tuple):
        key = 0
        for part in g:
            key = key * 1_000_003 + (_group_key(part) + 1)
        return key
    if isinstance(g, str):
        acc = 0
        for ch in g:
            acc = acc * 131 + ord(ch)
        return acc
    raise TypeError(f"unsupported group identifier type {type(g).__name__}")
