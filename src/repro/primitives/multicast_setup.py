"""The Multicast Tree Setup Algorithm (Theorem 2.4, Appendix B.3).

Multicast groups ``A₁..A_N`` with sources ``s₁..s_N`` (each node source of
at most one group).  Every member ``u ∈ Aᵢ`` injects an empty packet at a
uniformly random level-0 butterfly node — that node becomes ``u``'s leaf
``l(i, u)`` — and the packets of group ``i`` are aggregated toward the root
``h(i)`` on level ``d`` with an arbitrary aggregate.  The edges the packets
traverse *are* the multicast tree ``Tᵢ``.

Time O(L/n + ℓ/log n + log n); tree congestion O(L/n + log n), w.h.p.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from ..butterfly.routing import CombiningRouter, TreeSet
from ..butterfly.topology import BFNode, ButterflyGrid
from ..ncc.message import BatchBuilder, payloads_of
from ..ncc.network import NCCNetwork
from ..rng import SharedRandomness
from .aggregate_broadcast import barrier
from .aggregation import _group_key

GroupT = Hashable


def setup_multicast_trees(
    net: NCCNetwork,
    bf: ButterflyGrid,
    shared: SharedRandomness,
    memberships: Mapping[int, Iterable[GroupT]],
    *,
    tag: object = None,
    kind: str = "multicast-setup",
) -> TreeSet:
    """Build multicast trees for the given group memberships.

    ``memberships[u]`` lists the groups node ``u`` joins.  The injected
    packets carry the member identifier so leaves record whom they serve
    (the final-delivery map of the Multicast Algorithm).

    A node may join a group on *behalf of a neighbour* (Section 5's
    broadcast-tree construction); pass entries ``(group, member)`` via
    :func:`setup_multicast_trees_delegated` in that case.
    """
    delegated = {
        u: [(g, u) for g in groups] for u, groups in memberships.items()
    }
    return setup_multicast_trees_delegated(
        net, bf, shared, delegated, tag=tag, kind=kind
    )


def setup_multicast_trees_delegated(
    net: NCCNetwork,
    bf: ButterflyGrid,
    shared: SharedRandomness,
    injections: Mapping[int, Iterable[tuple[GroupT, int]]],
    *,
    tag: object = None,
    kind: str = "multicast-setup",
) -> TreeSet:
    """Tree setup where node ``u`` may inject ``(group, member)`` packets
    for members other than itself.

    This is exactly the trick of Lemma 5.1: with an O(a)-orientation, the
    tail of each edge injects *both* endpoint memberships, so every node
    injects O(a) packets regardless of its degree.
    """
    if tag is None:
        tag = shared.fresh_tag("multicast-setup")
    start = net.round_index
    with net.phase(kind):
        nonce = shared.next_nonce()
        rank = shared.rank_function()
        target_col = shared.target_function(bf.columns)
        salt = shared.salted_key

        def key_of(g: GroupT, _cache: dict = {}) -> int:
            k = _cache.get(g)
            if k is None:
                k = _cache[g] = salt(nonce, _group_key(g))
            return k

        router = CombiningRouter(
            net,
            bf,
            rank_of=lambda g: rank(key_of(g)),
            target_col_of=lambda g: target_col(key_of(g)),
            combine=lambda a, b: a,  # arbitrary aggregate (Appendix B.3)
            record_trees=True,
            kind=kind,
        )
        trees = router.trees
        assert trees is not None

        batch = net.config.batch_size(net.n)
        pending: list[BatchBuilder] = []
        for u, pairs in injections.items():
            u_rng = shared.node_rng(u, (tag, "inject"))
            for j, (g, member) in enumerate(
                sorted(pairs, key=lambda p: (repr(p[0]), p[1]))
            ):
                col = u_rng.randrange(bf.columns)
                r = j // batch
                while len(pending) <= r:
                    pending.append(BatchBuilder(kind=kind))
                pending[r].add(u, col, ("J", col, g, member))
        for round_msgs in pending:
            inbox = net.exchange(round_msgs)
            for msgs in inbox.values():
                for _tag, col, g, member in payloads_of(msgs):
                    router.inject(col, g, member)
                    trees.add_leaf_member(g, col, member)
        barrier(net, bf)

        res = router.run()
        # Roots: ensure every group's root is set even if the group is a
        # singleton whose packet started at its root column.
        for g in res.results:
            trees.set_root(g, BFNode(bf.d, target_col(key_of(g))))
        barrier(net, bf)

    trees.setup_rounds = net.round_index - start  # type: ignore[attr-defined]
    return trees
