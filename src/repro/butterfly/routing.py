"""Random-rank routing on the emulated butterfly (Appendix B.2).

Two engines:

* :class:`CombiningRouter` — the *Combining Phase* of the Aggregation
  Algorithm: packets injected at level-0 nodes travel the unique butterfly
  path toward their group's target ``(d, h(group))``; packets of one group
  that meet at a butterfly node are merged with the distributive aggregate;
  when packets of different groups contend for one edge, the smallest
  ``(rank, group)`` wins and the rest are delayed (Theorem B.2's protocol).
  Optionally records the traversed edges per group — those edge sets *are*
  the multicast trees of Theorem 2.4.

* :class:`MulticastRouter` — the *Spreading Phase* of the Multicast
  Algorithm: packets start at tree roots on level ``d`` and flow toward
  level 0 along recorded tree edges, copied at branching nodes, with the
  same rank-based contention rule.

Termination is detected exactly as in the paper: once a node has forwarded
everything and received a token over each inbound edge it emits tokens on
its outbound edges; the run is complete when the far level holds all tokens.
With ``NCCConfig.extras['lightweight_sync'] = True`` the token wave is
charged as idle rounds instead of materializing token messages (identical
round counts, fewer simulated message objects — used by large benchmarks).

Straight butterfly edges connect nodes of one column and therefore stay
inside one NCC node: they elapse a butterfly round but send no NCC message.
Cross edges become real messages through :class:`~repro.ncc.network.NCCNetwork`,
submitted columnar per host via :class:`~repro.ncc.message.BatchBuilder` so
routed rounds stay on the batched engine's array path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

from ..errors import ProtocolError
from ..ncc.message import BatchBuilder
from ..ncc.network import NCCNetwork
from .topology import BFNode, ButterflyGrid

GroupT = Hashable  # must additionally be orderable; ints / tuples of ints


def _group_bits(group: Any) -> int:
    from ..ncc.message import payload_bits

    return payload_bits(group)


@dataclass
class TreeSet:
    """Multicast trees recorded by a combining run (Theorem 2.4).

    ``children[g][b]`` lists the level-(b.level − 1) nodes that node ``b``
    forwards group ``g``'s packets to during a multicast; ``root[g]`` is the
    level-d tree root ``(d, h(g))``; ``leaf_members[g][column]`` lists the
    group members whose packets were injected at level-0 ``column`` (their
    designated leaves ``l(g, u)``).
    """

    children: dict[GroupT, dict[BFNode, list[BFNode]]] = field(default_factory=dict)
    root: dict[GroupT, BFNode] = field(default_factory=dict)
    leaf_members: dict[GroupT, dict[int, list[int]]] = field(default_factory=dict)
    nodes_touched: dict[GroupT, set[BFNode]] = field(default_factory=dict)

    def add_edge(self, group: GroupT, parent: BFNode, child: BFNode) -> None:
        kids = self.children.setdefault(group, {}).setdefault(parent, [])
        if child not in kids:
            kids.append(child)
        touched = self.nodes_touched.setdefault(group, set())
        touched.add(parent)
        touched.add(child)

    def set_root(self, group: GroupT, root: BFNode) -> None:
        self.root[group] = root
        self.nodes_touched.setdefault(group, set()).add(root)

    def add_leaf_member(self, group: GroupT, column: int, member: int) -> None:
        self.leaf_members.setdefault(group, {}).setdefault(column, []).append(member)
        self.nodes_touched.setdefault(group, set()).add(BFNode(0, column))

    def congestion(self) -> int:
        """Max number of trees sharing one butterfly node (Theorem 2.4)."""
        load: dict[BFNode, int] = {}
        for touched in self.nodes_touched.values():
            for b in touched:
                load[b] = load.get(b, 0) + 1
        return max(load.values(), default=0)

    def groups(self) -> list[GroupT]:
        return list(self.root)

    def member_load(self) -> int:
        """ℓ = max members of one tree mapped to one leaf-serving node."""
        per_member: dict[int, int] = {}
        for leafmap in self.leaf_members.values():
            for members in leafmap.values():
                for u in members:
                    per_member[u] = per_member.get(u, 0) + 1
        return max(per_member.values(), default=0)


@dataclass
class RoutingResult:
    """Outcome of one routing run."""

    rounds: int
    results: dict[GroupT, Any]
    trees: TreeSet | None = None


def _lightweight(net: NCCNetwork) -> bool:
    return bool(net.config.extras.get("lightweight_sync", False))


class CombiningRouter:
    """Downward (level 0 → level d) combining router.

    Parameters
    ----------
    rank_of:
        ``ρ(group)`` — the packet rank; same-group packets always share a
        rank, and contention prefers smaller ``(rank, group)``.
    target_col_of:
        ``h(group)`` — the column of the level-d intermediate target.
    combine:
        The distributive aggregate: merges two packet values of one group.
    record_trees:
        Record traversed edges into a :class:`TreeSet` (Multicast Tree Setup).
    kind:
        Label stamped on the NCC messages (statistics only).
    """

    def __init__(
        self,
        net: NCCNetwork,
        bf: ButterflyGrid,
        *,
        rank_of: Callable[[GroupT], int],
        target_col_of: Callable[[GroupT], int],
        combine: Callable[[Any, Any], Any],
        record_trees: bool = False,
        kind: str = "combining",
    ):
        self.net = net
        self.bf = bf
        self.rank_of = rank_of
        self.target_col_of = target_col_of
        self.combine = combine
        self.kind = kind
        self._token_kind = kind + ":token"
        self.trees = TreeSet() if record_trees else None
        self._queues: dict[BFNode, dict[GroupT, Any]] = {}
        self._ran = False

    # ------------------------------------------------------------------
    def inject(self, column: int, group: GroupT, value: Any) -> None:
        """Place a packet at level-0 node ``(0, column)`` (pre-run)."""
        if self._ran:
            raise ProtocolError("router already ran")
        if not 0 <= column < self.bf.columns:
            raise ValueError(f"column {column} outside [0,{self.bf.columns})")
        node = BFNode(0, column)
        q = self._queues.setdefault(node, {})
        if group in q:
            q[group] = self.combine(q[group], value)
        else:
            q[group] = value
        if self.trees is not None:
            self.trees.set_root(group, BFNode(self.bf.d, self.target_col_of(group)))
            self.trees.nodes_touched.setdefault(group, set()).add(node)

    # ------------------------------------------------------------------
    def run(self) -> RoutingResult:
        """Route everything; returns per-group combined values at targets."""
        if self._ran:
            raise ProtocolError("router already ran")
        self._ran = True
        start_round = self.net.round_index
        results: dict[GroupT, Any] = {}
        bf, net = self.bf, self.net
        d = bf.d

        if d == 0:
            # Degenerate butterfly: level 0 == level d.
            for node, pend in self._queues.items():
                for g, v in pend.items():
                    results[g] = self.combine(results[g], v) if g in results else v
            self._queues.clear()
            return RoutingResult(net.round_index - start_round, results, self.trees)

        lightweight = _lightweight(net)

        # Per-run caches: rank/target hashes are pure per group, and the
        # contention loop consults them once per pending packet per round.
        rank_cache: dict[GroupT, int] = {}
        target_cache: dict[GroupT, int] = {}

        def rank_of(g: GroupT) -> int:
            r = rank_cache.get(g)
            if r is None:
                r = rank_cache[g] = self.rank_of(g)
            return r

        def target_of(g: GroupT) -> int:
            t = target_cache.get(g)
            if t is None:
                t = target_cache[g] = self.target_col_of(g)
            return t

        # Token state: number of tokens received over up-edges.  Level-0
        # nodes are born ready (injection finished before run()).
        tokens: dict[BFNode, int] = {}
        token_sent: set[BFNode] = set()
        # Nodes that may be ready to emit tokens; refilled by events.
        token_candidates: list[BFNode] = (
            [] if lightweight else [BFNode(0, c) for c in range(bf.columns)]
        )
        done_at_bottom = 0
        bottom_needed = bf.columns  # every (d, col) must receive 2 tokens

        def node_ready(node: BFNode) -> bool:
            if node.level >= d or node in token_sent:
                return False
            if node in self._queues:
                return False
            if node.level == 0:
                return True
            return tokens.get(node, 0) >= 2

        while True:
            # --- select token emissions (candidates from prior rounds;
            # a token never shares a round with the edge's last data) ---
            token_sends: list[BFNode] = []
            if not lightweight:
                fresh: list[BFNode] = []
                for node in token_candidates:
                    if node_ready(node):
                        fresh.append(node)
                token_candidates = []
                for node in fresh:
                    token_sent.add(node)
                    token_sends.append(node)

            transmissions: list[tuple[BFNode, BFNode, GroupT, Any]] = []
            # --- select one data packet per (node, edge) --------------
            for node in list(self._queues):
                pend = self._queues[node]
                best: dict[BFNode, tuple[int, GroupT]] = {}
                for g in pend:
                    nxt = bf.down_next(node, target_of(g))
                    cand = (rank_of(g), g)
                    if nxt not in best or cand < best[nxt]:
                        best[nxt] = cand
                for nxt, (_, g) in best.items():
                    transmissions.append((node, nxt, g, pend.pop(g)))
                if not pend:
                    del self._queues[node]
                    if not lightweight and node_ready(node):
                        token_candidates.append(node)

            if not transmissions and not token_sends:
                if lightweight:
                    if not self._queues:
                        break
                    raise ProtocolError("combining router deadlocked")
                if done_at_bottom >= bottom_needed:
                    break
                raise ProtocolError("combining router deadlocked (tokens)")

            # --- build NCC messages for cross edges (columnar) --------
            out = BatchBuilder(kind=self.kind)
            local_data: list[tuple[BFNode, BFNode, GroupT, Any]] = []
            local_tokens: list[BFNode] = []
            for src, dst, g, val in transmissions:
                if bf.is_local_edge(src, dst):
                    local_data.append((src, dst, g, val))
                else:
                    out.add(
                        bf.host(src), bf.host(dst), ("D", dst.level, g, val)
                    )
            for node in token_sends:
                straight, cross = bf.down_neighbors(node)
                local_tokens.append(straight)
                out.add(
                    bf.host(node),
                    bf.host(cross),
                    ("T", cross.level),
                    kind=self._token_kind,
                )

            inboxes = net.exchange(out)

            # --- apply arrivals ---------------------------------------
            def arrive_data(dst: BFNode, g: GroupT, val: Any, src: BFNode) -> None:
                nonlocal results
                if self.trees is not None:
                    self.trees.add_edge(g, dst, src)
                if dst.level == d:
                    results[g] = self.combine(results[g], val) if g in results else val
                else:
                    q = self._queues.setdefault(dst, {})
                    q[g] = self.combine(q[g], val) if g in q else val

            def arrive_token(dst: BFNode) -> None:
                nonlocal done_at_bottom
                tokens[dst] = tokens.get(dst, 0) + 1
                if dst.level == d:
                    if tokens[dst] == 2:
                        done_at_bottom += 1
                elif tokens[dst] >= 2 and node_ready(dst):
                    token_candidates.append(dst)

            for src, dst, g, val in local_data:
                arrive_data(dst, g, val, src)
            for dst in local_tokens:
                arrive_token(dst)
            for host, received in inboxes.items():
                for m in received:
                    tag = m.payload[0]
                    if tag == "D":
                        _, lvl, g, val = m.payload
                        # Reconstruct source from edge structure: the cross
                        # up-neighbour of (lvl, host) is (lvl-1, host^bit).
                        dst = BFNode(lvl, host)
                        src = BFNode(lvl - 1, host ^ (1 << (lvl - 1)))
                        arrive_data(dst, g, val, src)
                    else:
                        _, lvl = m.payload
                        arrive_token(BFNode(lvl, host))

        if lightweight:
            # Token wave duration: one hop per level.
            net.idle_rounds(d + 1)

        return RoutingResult(net.round_index - start_round, results, self.trees)


class MulticastRouter:
    """Upward (level d → level 0) copying router over recorded trees."""

    def __init__(
        self,
        net: NCCNetwork,
        bf: ButterflyGrid,
        trees: TreeSet,
        *,
        rank_of: Callable[[GroupT], int],
        kind: str = "multicast",
    ):
        self.net = net
        self.bf = bf
        self.trees = trees
        self.rank_of = rank_of
        self.kind = kind
        self._token_kind = kind + ":token"

    def run(self, root_packets: dict[GroupT, Any]) -> RoutingResult:
        """Spread each group's packet from its tree root to all tree leaves.

        Returns ``results[column] = {group: value}`` for every level-0
        column that is a leaf of some group's tree; the caller maps leaves
        to group members (the paper's ``l(i, u) → u`` delivery).
        """
        net, bf = self.net, self.bf
        d = bf.d
        start_round = net.round_index
        leaf_payloads: dict[int, dict[GroupT, Any]] = {}
        out_queues: dict[tuple[BFNode, BFNode], dict[GroupT, Any]] = {}
        pending_nodes: dict[BFNode, int] = {}  # node -> # nonempty out-edges

        def process_arrival(node: BFNode, g: GroupT, val: Any) -> None:
            if node.level == 0 and g in self.trees.leaf_members and (
                node.column in self.trees.leaf_members[g]
            ):
                leaf_payloads.setdefault(node.column, {})[g] = val
            for child in self.trees.children.get(g, {}).get(node, ()):  # copies
                edge = (node, child)
                q = out_queues.get(edge)
                if q is None:
                    q = out_queues[edge] = {}
                    pending_nodes[node] = pending_nodes.get(node, 0) + 1
                q[g] = val

        for g, val in root_packets.items():
            root = self.trees.root.get(g)
            if root is None:
                raise ProtocolError(f"no multicast tree for group {g!r}")
            process_arrival(root, g, val)

        if d == 0:
            return RoutingResult(
                net.round_index - start_round,
                {c: dict(m) for c, m in leaf_payloads.items()},
            )

        lightweight = _lightweight(net)
        rank_cache: dict[GroupT, int] = {}

        def rank_of(g: GroupT) -> int:
            r = rank_cache.get(g)
            if r is None:
                r = rank_cache[g] = self.rank_of(g)
            return r

        tokens: dict[BFNode, int] = {}
        token_sent: set[BFNode] = set()
        token_candidates: list[BFNode] = (
            [] if lightweight else [BFNode(d, c) for c in range(bf.columns)]
        )
        done_at_top = 0
        top_needed = bf.columns

        def node_ready(node: BFNode) -> bool:
            if node.level <= 0 or node in token_sent:
                return False
            if pending_nodes.get(node, 0) > 0:
                return False
            if node.level == d:
                return True
            return tokens.get(node, 0) >= 2

        while True:
            token_sends: list[BFNode] = []
            if not lightweight:
                fresh = [nd for nd in token_candidates if node_ready(nd)]
                token_candidates = []
                for node in fresh:
                    token_sent.add(node)
                    token_sends.append(node)

            sends: list[tuple[BFNode, BFNode, GroupT, Any]] = []
            for edge in list(out_queues):
                q = out_queues[edge]
                g = min(q, key=lambda gg: (rank_of(gg), gg))
                val = q.pop(g)
                sends.append((edge[0], edge[1], g, val))
                if not q:
                    del out_queues[edge]
                    node = edge[0]
                    pending_nodes[node] -= 1
                    if pending_nodes[node] == 0:
                        del pending_nodes[node]
                        if not lightweight and node_ready(node):
                            token_candidates.append(node)

            if not sends and not token_sends:
                if lightweight:
                    if not out_queues:
                        break
                    raise ProtocolError("multicast router deadlocked")
                if done_at_top >= top_needed:
                    break
                raise ProtocolError("multicast router deadlocked (tokens)")

            out = BatchBuilder(kind=self.kind)
            local_data: list[tuple[BFNode, GroupT, Any]] = []
            local_tokens: list[BFNode] = []
            for src, dst, g, val in sends:
                if bf.is_local_edge(src, dst):
                    local_data.append((dst, g, val))
                else:
                    out.add(
                        bf.host(src), bf.host(dst), ("D", dst.level, g, val)
                    )
            for node in token_sends:
                straight, cross = bf.up_neighbors(node)
                local_tokens.append(straight)
                out.add(
                    bf.host(node),
                    bf.host(cross),
                    ("T", cross.level),
                    kind=self._token_kind,
                )

            inboxes = net.exchange(out)

            def arrive_token(dst: BFNode) -> None:
                nonlocal done_at_top
                tokens[dst] = tokens.get(dst, 0) + 1
                if dst.level == 0:
                    if tokens[dst] == 2:
                        done_at_top += 1
                elif tokens[dst] >= 2 and node_ready(dst):
                    token_candidates.append(dst)

            for dst, g, val in local_data:
                process_arrival(dst, g, val)
            for dst in local_tokens:
                arrive_token(dst)
            for host, received in inboxes.items():
                for m in received:
                    tag = m.payload[0]
                    if tag == "D":
                        _, lvl, g, val = m.payload
                        process_arrival(BFNode(lvl, host), g, val)
                    else:
                        _, lvl = m.payload
                        arrive_token(BFNode(lvl, host))

        if lightweight:
            net.idle_rounds(d + 1)

        return RoutingResult(
            net.round_index - start_round,
            {c: dict(m) for c, m in leaf_payloads.items()},
        )
