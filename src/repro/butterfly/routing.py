"""Random-rank routing on the emulated butterfly (Appendix B.2).

Two engines:

* :class:`CombiningRouter` — the *Combining Phase* of the Aggregation
  Algorithm: packets injected at level-0 nodes travel the unique butterfly
  path toward their group's target ``(d, h(group))``; packets of one group
  that meet at a butterfly node are merged with the distributive aggregate;
  when packets of different groups contend for one edge, the smallest
  ``(rank, group)`` wins and the rest are delayed (Theorem B.2's protocol).
  Optionally records the traversed edges per group — those edge sets *are*
  the multicast trees of Theorem 2.4.

* :class:`MulticastRouter` — the *Spreading Phase* of the Multicast
  Algorithm: packets start at tree roots on level ``d`` and flow toward
  level 0 along recorded tree edges, copied at branching nodes, with the
  same rank-based contention rule.

Termination is detected exactly as in the paper: once a node has forwarded
everything and received a token over each inbound edge it emits tokens on
its outbound edges; the run is complete when the far level holds all tokens.
With ``NCCConfig.extras['lightweight_sync'] = True`` the token wave is
charged as idle rounds instead of materializing token messages (identical
round counts, fewer simulated message objects — used by large benchmarks).

Straight butterfly edges connect nodes of one column and therefore stay
inside one NCC node: they elapse a butterfly round but send no NCC message.
Cross edges become real messages through :class:`~repro.ncc.network.NCCNetwork`,
submitted columnar per host via :class:`~repro.ncc.message.BatchBuilder` so
routed rounds stay on the batched engine's array path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

try:  # pragma: no cover - exercised only on numpy-free installs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from ..errors import ProtocolError
from ..ncc.message import (
    BatchBuilder,
    InboxBatch,
    gather_typed_spans,
    typed_payloads_enabled,
)
from ..ncc.network import NCCNetwork
from .topology import BFNode, ButterflyGrid

GroupT = Hashable  # must additionally be orderable; ints / tuples of ints

#: The wire dtype of routed data packets.  Field-for-field it sizes exactly
#: like the object path's ``("D", level, group, value)`` tuples (the 1-char
#: tag is a short string: 4 bits), so typed and object runs account
#: identical wire bits.
DATA_DTYPE = (
    _np.dtype([("tag", "U1"), ("lvl", "i8"), ("g", "i8"), ("val", "i8")])
    if _np is not None
    else None
)


def _group_bits(group: Any) -> int:
    from ..ncc.message import payload_bits

    return payload_bits(group)


@dataclass
class TreeSet:
    """Multicast trees recorded by a combining run (Theorem 2.4).

    ``children[g][b]`` lists the level-(b.level − 1) nodes that node ``b``
    forwards group ``g``'s packets to during a multicast; ``root[g]`` is the
    level-d tree root ``(d, h(g))``; ``leaf_members[g][column]`` lists the
    group members whose packets were injected at level-0 ``column`` (their
    designated leaves ``l(g, u)``).
    """

    children: dict[GroupT, dict[BFNode, list[BFNode]]] = field(default_factory=dict)
    root: dict[GroupT, BFNode] = field(default_factory=dict)
    leaf_members: dict[GroupT, dict[int, list[int]]] = field(default_factory=dict)
    nodes_touched: dict[GroupT, set[BFNode]] = field(default_factory=dict)

    def add_edge(self, group: GroupT, parent: BFNode, child: BFNode) -> None:
        kids = self.children.setdefault(group, {}).setdefault(parent, [])
        if child not in kids:
            kids.append(child)
        touched = self.nodes_touched.setdefault(group, set())
        touched.add(parent)
        touched.add(child)

    def set_root(self, group: GroupT, root: BFNode) -> None:
        self.root[group] = root
        self.nodes_touched.setdefault(group, set()).add(root)

    def add_leaf_member(self, group: GroupT, column: int, member: int) -> None:
        self.leaf_members.setdefault(group, {}).setdefault(column, []).append(member)
        self.nodes_touched.setdefault(group, set()).add(BFNode(0, column))

    def congestion(self) -> int:
        """Max number of trees sharing one butterfly node (Theorem 2.4)."""
        load: dict[BFNode, int] = {}
        for touched in self.nodes_touched.values():
            for b in touched:
                load[b] = load.get(b, 0) + 1
        return max(load.values(), default=0)

    def groups(self) -> list[GroupT]:
        return list(self.root)

    def member_load(self) -> int:
        """ℓ = max members of one tree mapped to one leaf-serving node."""
        per_member: dict[int, int] = {}
        for leafmap in self.leaf_members.values():
            for members in leafmap.values():
                for u in members:
                    per_member[u] = per_member.get(u, 0) + 1
        return max(per_member.values(), default=0)


@dataclass
class RoutingResult:
    """Outcome of one routing run."""

    rounds: int
    results: dict[GroupT, Any]
    trees: TreeSet | None = None


def _lightweight(net: NCCNetwork) -> bool:
    return bool(net.config.extras.get("lightweight_sync", False))


class CombiningRouter:
    """Downward (level 0 → level d) combining router.

    Parameters
    ----------
    rank_of:
        ``ρ(group)`` — the packet rank; same-group packets always share a
        rank, and contention prefers smaller ``(rank, group)``.
    target_col_of:
        ``h(group)`` — the column of the level-d intermediate target.
    combine:
        The distributive aggregate: merges two packet values of one group.
    ufunc:
        Optional numpy ufunc computing the same reduction as ``combine``
        over int64 columns.  With it, packets injected through
        :meth:`inject_array` route on the fully typed kernel
        (:meth:`_run_typed`): pending packets live in parallel
        ``(key, group, value)`` int64 arrays, collisions collapse via
        sort-and-``reduceat``, and wire traffic is a structured-dtype
        column — a clean round touches no Python per packet.
    record_trees:
        Record traversed edges into a :class:`TreeSet` (Multicast Tree Setup).
    kind:
        Label stamped on the NCC messages (statistics only).
    """

    def __init__(
        self,
        net: NCCNetwork,
        bf: ButterflyGrid,
        *,
        rank_of: Callable[[GroupT], int],
        target_col_of: Callable[[GroupT], int],
        combine: Callable[[Any, Any], Any],
        ufunc: Any = None,
        record_trees: bool = False,
        kind: str = "combining",
    ):
        self.net = net
        self.bf = bf
        self.rank_of = rank_of
        self.target_col_of = target_col_of
        self.combine = combine
        self.ufunc = ufunc
        self.kind = kind
        self._token_kind = kind + ":token"
        self.trees = TreeSet() if record_trees else None
        self._queues: dict[BFNode, dict[GroupT, Any]] = {}
        self._typed_cols: tuple[list, list, list] | None = None
        self._ran = False

    # ------------------------------------------------------------------
    def inject(self, column: int, group: GroupT, value: Any) -> None:
        """Place a packet at level-0 node ``(0, column)`` (pre-run)."""
        if self._ran:
            raise ProtocolError("router already ran")
        if not 0 <= column < self.bf.columns:
            raise ValueError(f"column {column} outside [0,{self.bf.columns})")
        node = BFNode(0, column)
        q = self._queues.setdefault(node, {})
        if group in q:
            q[group] = self.combine(q[group], value)
        else:
            q[group] = value
        if self.trees is not None:
            self.trees.set_root(group, BFNode(self.bf.d, self.target_col_of(group)))
            self.trees.nodes_touched.setdefault(group, set()).add(node)

    def inject_array(self, columns: Any, groups: Any, values: Any) -> None:
        """Place typed packets at level-0 nodes (pre-run, column form).

        ``columns``/``groups``/``values`` are parallel int columns (int64
        groups and values).  Packets stay in arrays end-to-end when the
        typed kernel applies; otherwise they are boxed into the object
        queues at :meth:`run` — the object-fallback contract.
        """
        if self._ran:
            raise ProtocolError("router already ran")
        if _np is None:
            for c, g, v in zip(list(columns), list(groups), list(values), strict=True):
                self.inject(int(c), g, v)
            return
        carr = _np.asarray(columns, dtype=_np.int64)
        garr = _np.asarray(groups, dtype=_np.int64)
        varr = _np.asarray(values, dtype=_np.int64)
        if not (len(carr) == len(garr) == len(varr)):
            raise ValueError("inject_array requires parallel columns of equal length")
        if len(carr) == 0:
            return
        if int(carr.min()) < 0 or int(carr.max()) >= self.bf.columns:
            raise ValueError(
                f"column outside [0,{self.bf.columns}) in typed injection"
            )
        if self._typed_cols is None:
            self._typed_cols = ([carr], [garr], [varr])
        else:
            self._typed_cols[0].append(carr)
            self._typed_cols[1].append(garr)
            self._typed_cols[2].append(varr)

    def _box_typed_injections(self) -> None:
        """Replay the typed stash through :meth:`inject` (object fallback:
        numpy-free runs, tree recording, token-mode sync, no ufunc)."""
        stash = self._typed_cols
        self._typed_cols = None
        if stash is None:
            return
        for carr, garr, varr in zip(*stash):
            for c, g, v in zip(carr.tolist(), garr.tolist(), varr.tolist()):
                self.inject(c, g, v)

    # ------------------------------------------------------------------
    def run(self) -> RoutingResult:
        """Route everything; returns per-group combined values at targets."""
        if self._ran:
            raise ProtocolError("router already ran")
        if self._typed_cols is not None:
            if (
                _np is not None
                and self.ufunc is not None
                and self.trees is None
                and self.bf.d > 0
                and _lightweight(self.net)
                and not self._queues
            ):
                return self._run_typed()
            self._box_typed_injections()
        self._ran = True
        start_round = self.net.round_index
        results: dict[GroupT, Any] = {}
        bf, net = self.bf, self.net
        d = bf.d

        if d == 0:
            # Degenerate butterfly: level 0 == level d.
            for node, pend in self._queues.items():
                for g, v in pend.items():
                    results[g] = self.combine(results[g], v) if g in results else v
            self._queues.clear()
            return RoutingResult(net.round_index - start_round, results, self.trees)

        lightweight = _lightweight(net)
        columns = bf.columns
        mask = columns - 1
        bottom = d << d  # key of (d, 0); level-d keys are >= bottom

        # Hot-state encoding: a butterfly node (level, column) becomes the
        # int key ``(level << d) | column`` so the per-packet loops hash
        # machine ints instead of NamedTuples and never allocate a BFNode.
        # The unique-path hop is pure arithmetic on the key: toward target
        # column t, the next hop fixes bit ``level`` of the column —
        # ``((key + columns) & ~bit) | (t & bit)`` — and the hop is local
        # (straight, same NCC host) iff ``t & bit == column & bit``.
        queues: dict[int, dict[GroupT, Any]] = {
            (node.level << d) | node.column: pend
            for node, pend in self._queues.items()
        }
        self._queues.clear()

        # Per-run cache: rank/target hashes are pure per group, and the
        # contention loop consults them once per pending packet per round —
        # ``ginfo[g] = (target_col, (rank, g))`` folds both lookups and the
        # contention tuple into one dict probe.
        ginfo: dict[GroupT, tuple[int, tuple[int, GroupT]]] = {}

        # Token state: number of tokens received over up-edges.  Level-0
        # nodes are born ready (injection finished before run()).
        tokens: dict[int, int] = {}
        token_sent: set[int] = set()
        # Nodes that may be ready to emit tokens; refilled by events.
        token_candidates: list[int] = (
            [] if lightweight else list(range(columns))  # level-0 keys
        )
        done_at_bottom = 0
        bottom_needed = columns  # every (d, col) must receive 2 tokens

        def node_ready(key: int) -> bool:
            if key >= bottom or key in token_sent:
                return False
            if key in queues:
                return False
            if key < columns:  # level 0
                return True
            return tokens.get(key, 0) >= 2

        def arrive_token(key: int) -> None:
            nonlocal done_at_bottom
            tokens[key] = tokens.get(key, 0) + 1
            if key >= bottom:
                if tokens[key] == 2:
                    done_at_bottom += 1
            elif tokens[key] >= 2 and node_ready(key):
                token_candidates.append(key)

        # Hot-loop locals: attribute loads once per run, not per packet.
        combine = self.combine
        trees = self.trees

        while True:
            # --- select token emissions (candidates from prior rounds;
            # a token never shares a round with the edge's last data) ---
            token_sends: list[int] = []
            if not lightweight:
                fresh = [key for key in token_candidates if node_ready(key)]
                token_candidates = []
                for key in fresh:
                    token_sent.add(key)
                    token_sends.append(key)

            # --- select one data packet per (node, edge) and emit it
            # straight into the round's builder / local list (one pass per
            # packet; straight edges stay in-column = in one NCC host) ---
            out = BatchBuilder(kind=self.kind)
            out_add = out.add
            local_data: list[tuple[int, GroupT, Any]] = []  # (dst key, g, val)
            local_tokens: list[int] = []
            sent_data = False
            for key in list(queues):
                pend = queues[key]
                level = key >> d
                bit = 1 << level
                col = key & mask
                col_bit = col & bit
                lvl1 = level + 1
                base = (key + columns) & ~bit  # the bit-cleared down-hop
                sent_data = True
                if len(pend) == 1:
                    # Single pending group: it wins its edge unopposed.
                    g = next(iter(pend))
                    gi = ginfo.get(g)
                    if gi is None:
                        gi = ginfo[g] = (
                            self.target_col_of(g),
                            (self.rank_of(g), g),
                        )
                    tbit = gi[0] & bit
                    val = pend.pop(g)
                    if tbit == col_bit:
                        local_data.append((base | tbit, g, val))
                    else:
                        out_add(col, col ^ bit, ("D", lvl1, g, val))
                else:
                    best: dict[int, tuple[int, GroupT]] = {}
                    best_get = best.get
                    for g in pend:
                        gi = ginfo.get(g)
                        if gi is None:
                            gi = ginfo[g] = (
                                self.target_col_of(g),
                                (self.rank_of(g), g),
                            )
                        nxt = base | (gi[0] & bit)
                        cand = gi[1]
                        cur = best_get(nxt)
                        if cur is None or cand < cur:
                            best[nxt] = cand
                    for nxt, (_, g) in best.items():
                        val = pend.pop(g)
                        ncol = nxt & mask
                        if ncol == col:
                            local_data.append((nxt, g, val))
                        else:
                            out_add(col, ncol, ("D", lvl1, g, val))
                if not pend:
                    del queues[key]
                    if not lightweight and node_ready(key):
                        token_candidates.append(key)

            if not sent_data and not token_sends:
                if lightweight:
                    if not queues:
                        break
                    raise ProtocolError("combining router deadlocked")
                if done_at_bottom >= bottom_needed:
                    break
                raise ProtocolError("combining router deadlocked (tokens)")

            for key in token_sends:
                level = key >> d
                col = key & mask
                local_tokens.append(key + columns)  # straight down-neighbour
                out.add(
                    col,
                    col ^ (1 << level),
                    ("T", level + 1),
                    kind=self._token_kind,
                )

            inboxes = net.exchange(out)

            # --- apply arrivals (inlined: this runs once per packet) ---
            for dst_key, g, val in local_data:
                if trees is not None:
                    # A local hop is a straight edge: the source sits one
                    # level up in the same column.
                    lvl = dst_key >> d
                    c = dst_key & mask
                    trees.add_edge(g, BFNode(lvl, c), BFNode(lvl - 1, c))
                if dst_key >= bottom:
                    results[g] = combine(results[g], val) if g in results else val
                else:
                    q = queues.get(dst_key)
                    if q is None:
                        queues[dst_key] = q = {}
                    q[g] = combine(q[g], val) if g in q else val
            for dst_key in local_tokens:
                arrive_token(dst_key)
            # Column read: the payloads are all the routing logic needs, so
            # a clean batched round stays free of Message objects here
            # (payloads_of, inlined — this is the hottest loop in the repo).
            for host, received in inboxes.items():
                payloads = (
                    received.payloads()  # reprolint: disable=NCC002 — token rounds are tiny and mixed-type
                    if type(received) is InboxBatch
                    else [m.payload for m in received]
                )
                for payload in payloads:
                    if payload[0] == "D":
                        _, lvl, g, val = payload
                        if trees is not None:
                            # Reconstruct the source from edge structure:
                            # the cross up-neighbour of (lvl, host) is
                            # (lvl-1, host^bit).
                            trees.add_edge(
                                g,
                                BFNode(lvl, host),
                                BFNode(lvl - 1, host ^ (1 << (lvl - 1))),
                            )
                        if lvl == d:
                            results[g] = (
                                combine(results[g], val) if g in results else val
                            )
                        else:
                            dst_key = (lvl << d) | host
                            q = queues.get(dst_key)
                            if q is None:
                                queues[dst_key] = q = {}
                            q[g] = combine(q[g], val) if g in q else val
                    else:
                        arrive_token((payload[1] << d) | host)

        if lightweight:
            # Token wave duration: one hop per level.
            net.idle_rounds(d + 1)

        return RoutingResult(net.round_index - start_round, results, self.trees)

    def _run_typed(self) -> RoutingResult:
        """Array-resident combining kernel (lightweight sync, no trees).

        Observably equivalent to the object loop of :meth:`run`: the same
        per-edge winners are selected each round (identical ``(rank,
        group)`` ordering over identical contenders), the same messages
        cross the same edges with identical wire bits (``DATA_DTYPE`` sizes
        exactly like the ``("D", ...)`` tuples), and the exact commutative
        int64 reductions make the collision-combine order irrelevant.
        Python cost per round is O(groups + NCC hosts), not O(packets).
        """
        self._ran = True
        np = _np
        net, bf = self.net, self.bf
        d = bf.d
        start_round = net.round_index
        columns = bf.columns
        mask = columns - 1
        bottom = d << d
        ufunc = self.ufunc
        kind = self.kind
        one = np.int64(1)

        ccols, gcols, vcols = self._typed_cols
        self._typed_cols = None
        # Level-0 keys are the columns themselves ((0 << d) | column).
        key = ccols[0] if len(ccols) == 1 else np.concatenate(ccols)
        g = gcols[0] if len(gcols) == 1 else np.concatenate(gcols)
        v = vcols[0] if len(vcols) == 1 else np.concatenate(vcols)

        # Group tables: rank/target are pure per group — one Python call
        # per distinct group for the whole run, never per packet.
        uniq = np.unique(g)
        glist = uniq.tolist()
        k_groups = len(glist)
        tcol_by = np.fromiter(
            (self.target_col_of(x) for x in glist), np.int64, k_groups
        )
        rank_by = np.fromiter((self.rank_of(x) for x in glist), np.int64, k_groups)

        res_g: list = []
        res_v: list = []

        while len(key):
            # --- collapse colliding packets per (node, group) ---
            order = np.lexsort((g, key))
            key = key.take(order)
            g = g.take(order)
            v = v.take(order)
            if len(key) > 1:
                seg = np.empty(len(key), dtype=bool)
                seg[0] = True
                np.not_equal(key[1:], key[:-1], out=seg[1:])
                seg[1:] |= g[1:] != g[:-1]
                starts = np.flatnonzero(seg)
                if len(starts) != len(key):
                    v = ufunc.reduceat(v, starts)
                    key = key.take(starts)
                    g = g.take(starts)

            # --- one down-hop per packet, one winner per (node, edge) ---
            level = key >> d
            bit = np.left_shift(one, level)
            col = key & mask
            gi = np.searchsorted(uniq, g)
            tcol = tcol_by.take(gi)
            rank = rank_by.take(gi)
            base = (key + columns) & ~bit
            tbit = tcol & bit
            nxt = base | tbit
            cross = tbit != (col & bit)
            eid = (key << 1) | cross.astype(np.int64)
            sel = np.lexsort((g, rank, eid))
            es = eid.take(sel)
            first = np.empty(len(es), dtype=bool)
            first[0] = True
            np.not_equal(es[1:], es[:-1], out=first[1:])
            win = np.zeros(len(key), dtype=bool)
            win[sel[first]] = True

            # --- emit cross winners as one typed submission ---
            out = BatchBuilder(kind=kind, dtype=DATA_DTYPE)
            cw = np.flatnonzero(win & cross)
            if len(cw):
                payload = np.empty(len(cw), dtype=DATA_DTYPE)
                payload["tag"] = "D"
                payload["lvl"] = level.take(cw) + 1
                payload["g"] = g.take(cw)
                payload["val"] = v.take(cw)
                out.add_arrays(col.take(cw), nxt.take(cw) & mask, payload)
            inboxes = net.exchange(out)

            # --- straight winners move locally; losers wait in place ---
            sw = np.flatnonzero(win & ~cross)
            skey = nxt.take(sw)
            sg = g.take(sw)
            sv = v.take(sw)
            done = skey >= bottom
            res_g.append(sg[done])
            res_v.append(sv[done])
            lose = ~win
            parts_k = [key[lose], skey[~done]]
            parts_g = [g[lose], sg[~done]]
            parts_v = [v[lose], sv[~done]]

            # --- apply network arrivals ---
            gathered = gather_typed_spans(inboxes)
            if gathered is not None:
                # The whole round as two columns: no per-host iteration.
                ahost, arr = gathered
                akey = (arr["lvl"].astype(np.int64) << d) | ahost
                ag = arr["g"]
                av = arr["val"]
                ab = akey >= bottom
                res_g.append(ag[ab])
                res_v.append(av[ab])
                parts_k.append(akey[~ab])
                parts_g.append(ag[~ab])
                parts_v.append(av[~ab])
                inboxes = {}
            for host, received in inboxes.items():
                arr = (
                    received.payload_array()
                    if type(received) is InboxBatch
                    else None
                )
                if arr is not None:
                    lvl = arr["lvl"]
                    ag = arr["g"]
                    av = arr["val"]
                else:
                    # Reference engine (or a degraded round) delivered
                    # boxed payloads; lower them back to columns.
                    pls = (
                        received.payloads()  # reprolint: disable=NCC002 — degraded-round fallback path
                        if isinstance(received, InboxBatch)
                        else [m.payload for m in received]
                    )
                    c = len(pls)
                    lvl = np.fromiter((p[1] for p in pls), np.int64, c)
                    ag = np.fromiter((p[2] for p in pls), np.int64, c)
                    av = np.fromiter((p[3] for p in pls), np.int64, c)
                akey = (lvl.astype(np.int64) << d) | host
                ab = akey >= bottom
                res_g.append(ag[ab])
                res_v.append(av[ab])
                parts_k.append(akey[~ab])
                parts_g.append(ag[~ab])
                parts_v.append(av[~ab])
            key = np.concatenate(parts_k)
            g = np.concatenate(parts_g)
            v = np.concatenate(parts_v)

        # Token wave duration (lightweight sync): one hop per level.
        net.idle_rounds(d + 1)

        # --- fold the per-round result chunks, boxing only at the very
        # end (one Python object per group, not per packet) ---
        results: dict[GroupT, Any] = {}
        if res_g:
            rg = np.concatenate(res_g)
            rv = np.concatenate(res_v)
            if len(rg):
                order = np.argsort(rg, kind="stable")
                rg = rg.take(order)
                rv = rv.take(order)
                seg = np.empty(len(rg), dtype=bool)
                seg[0] = True
                np.not_equal(rg[1:], rg[:-1], out=seg[1:])
                starts = np.flatnonzero(seg)
                vals = ufunc.reduceat(rv, starts)
                results = dict(
                    zip(rg.take(starts).tolist(), vals.tolist(), strict=True)
                )
        return RoutingResult(net.round_index - start_round, results, None)


class MulticastRouter:
    """Upward (level d → level 0) copying router over recorded trees."""

    def __init__(
        self,
        net: NCCNetwork,
        bf: ButterflyGrid,
        trees: TreeSet,
        *,
        rank_of: Callable[[GroupT], int],
        kind: str = "multicast",
    ):
        self.net = net
        self.bf = bf
        self.trees = trees
        self.rank_of = rank_of
        self.kind = kind
        self._token_kind = kind + ":token"

    def run(self, root_packets: dict[GroupT, Any]) -> RoutingResult:
        """Spread each group's packet from its tree root to all tree leaves.

        Returns ``results[column] = {group: value}`` for every level-0
        column that is a leaf of some group's tree; the caller maps leaves
        to group members (the paper's ``l(i, u) → u`` delivery).
        """
        net, bf = self.net, self.bf
        d = bf.d
        start_round = net.round_index
        leaf_payloads: dict[int, dict[GroupT, Any]] = {}
        out_queues: dict[tuple[BFNode, BFNode], dict[GroupT, Any]] = {}
        pending_nodes: dict[BFNode, int] = {}  # node -> # nonempty out-edges

        def process_arrival(node: BFNode, g: GroupT, val: Any) -> None:
            if node.level == 0 and g in self.trees.leaf_members and (
                node.column in self.trees.leaf_members[g]
            ):
                leaf_payloads.setdefault(node.column, {})[g] = val
            for child in self.trees.children.get(g, {}).get(node, ()):  # copies
                edge = (node, child)
                q = out_queues.get(edge)
                if q is None:
                    q = out_queues[edge] = {}
                    pending_nodes[node] = pending_nodes.get(node, 0) + 1
                q[g] = val

        for g, val in root_packets.items():
            root = self.trees.root.get(g)
            if root is None:
                raise ProtocolError(f"no multicast tree for group {g!r}")
            process_arrival(root, g, val)

        if d == 0:
            return RoutingResult(
                net.round_index - start_round,
                {c: dict(m) for c, m in leaf_payloads.items()},
            )

        lightweight = _lightweight(net)
        # Typed wire applies per round: under lightweight sync (no token
        # messages to mix in) a round whose cross traffic is all plain-int
        # (group, value) pairs ships as one DATA_DTYPE column instead of
        # per-packet tuples; any other round keeps the object builder.
        typed_wire = (
            DATA_DTYPE is not None and lightweight and typed_payloads_enabled()
        )
        # Contention key (rank, group) per group, cached across rounds: the
        # per-edge minimum consults it once per queued packet per round.
        cand_cache: dict[GroupT, tuple[int, GroupT]] = {}

        def cand_of(g: GroupT) -> tuple[int, GroupT]:
            c = cand_cache.get(g)
            if c is None:
                c = cand_cache[g] = (self.rank_of(g), g)
            return c

        tokens: dict[BFNode, int] = {}
        token_sent: set[BFNode] = set()
        token_candidates: list[BFNode] = (
            [] if lightweight else [BFNode(d, c) for c in range(bf.columns)]
        )
        done_at_top = 0
        top_needed = bf.columns

        def node_ready(node: BFNode) -> bool:
            if node.level <= 0 or node in token_sent:
                return False
            if pending_nodes.get(node, 0) > 0:
                return False
            if node.level == d:
                return True
            return tokens.get(node, 0) >= 2

        while True:
            token_sends: list[BFNode] = []
            if not lightweight:
                fresh = [nd for nd in token_candidates if node_ready(nd)]
                token_candidates = []
                for node in fresh:
                    token_sent.add(node)
                    token_sends.append(node)

            sends: list[tuple[BFNode, BFNode, GroupT, Any]] = []
            for edge in list(out_queues):
                q = out_queues[edge]
                g = min(q, key=cand_of) if len(q) > 1 else next(iter(q))
                val = q.pop(g)
                sends.append((edge[0], edge[1], g, val))
                if not q:
                    del out_queues[edge]
                    node = edge[0]
                    pending_nodes[node] -= 1
                    if pending_nodes[node] == 0:
                        del pending_nodes[node]
                        if not lightweight and node_ready(node):
                            token_candidates.append(node)

            if not sends and not token_sends:
                if lightweight:
                    if not out_queues:
                        break
                    raise ProtocolError("multicast router deadlocked")
                if done_at_top >= top_needed:
                    break
                raise ProtocolError("multicast router deadlocked (tokens)")

            local_data: list[tuple[BFNode, GroupT, Any]] = []
            local_tokens: list[BFNode] = []
            cross_sends: list[tuple[int, int, int, GroupT, Any]] = []
            for src, dst, g, val in sends:
                if src.column == dst.column:
                    local_data.append((dst, g, val))
                else:
                    cross_sends.append(
                        (src.column, dst.column, dst.level, g, val)
                    )
            out = None
            if (
                typed_wire
                and cross_sends
                and not token_sends
                and all(
                    type(c[3]) is int and type(c[4]) is int
                    for c in cross_sends
                )
            ):
                try:
                    payload = _np.empty(len(cross_sends), dtype=DATA_DTYPE)
                    payload["lvl"] = [c[2] for c in cross_sends]
                    payload["g"] = [c[3] for c in cross_sends]
                    payload["val"] = [c[4] for c in cross_sends]
                except OverflowError:
                    out = None  # value outside int64: object round
                else:
                    payload["tag"] = "D"
                    out = BatchBuilder(kind=self.kind, dtype=DATA_DTYPE)
                    out.add_arrays(
                        [c[0] for c in cross_sends],
                        [c[1] for c in cross_sends],
                        payload,
                    )
            if out is None:
                out = BatchBuilder(kind=self.kind)
                out_add = out.add
                for scol, dcol, lvl, g, val in cross_sends:
                    out_add(scol, dcol, ("D", lvl, g, val))
            for node in token_sends:
                straight, cross = bf.up_neighbors(node)
                local_tokens.append(straight)
                out.add(
                    bf.host(node),
                    bf.host(cross),
                    ("T", cross.level),
                    kind=self._token_kind,
                )

            inboxes = net.exchange(out)

            def arrive_token(dst: BFNode) -> None:
                nonlocal done_at_top
                tokens[dst] = tokens.get(dst, 0) + 1
                if dst.level == 0:
                    if tokens[dst] == 2:
                        done_at_top += 1
                elif tokens[dst] >= 2 and node_ready(dst):
                    token_candidates.append(dst)

            for dst, g, val in local_data:
                process_arrival(dst, g, val)
            for dst in local_tokens:
                arrive_token(dst)
            for host, received in inboxes.items():
                arr = (
                    received.payload_array()
                    if type(received) is InboxBatch
                    else None
                )
                if arr is not None:
                    # Typed span: all data packets (tokens never share a
                    # typed round); field reads stay columnar.
                    for lvl, g, val in zip(
                        arr["lvl"].tolist(),
                        arr["g"].tolist(),
                        arr["val"].tolist(),
                    ):
                        process_arrival(BFNode(lvl, host), g, val)
                    continue
                payloads = (
                    received.payloads()  # reprolint: disable=NCC002 — mixed token/data round fallback
                    if type(received) is InboxBatch
                    else [m.payload for m in received]
                )
                for payload in payloads:
                    if payload[0] == "D":
                        _, lvl, g, val = payload
                        process_arrival(BFNode(lvl, host), g, val)
                    else:
                        arrive_token(BFNode(payload[1], host))

        if lightweight:
            net.idle_rounds(d + 1)

        return RoutingResult(
            net.round_index - start_round,
            {c: dict(m) for c, m in leaf_payloads.items()},
        )
