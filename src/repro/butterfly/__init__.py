"""Butterfly overlay emulation (Section 2.2, "Butterfly Simulation").

Every NCC node with identifier ``i < 2^d`` (``d = ⌊log2 n⌋``) emulates the
complete column ``i`` of the d-dimensional butterfly.  Straight edges stay
inside one column — hence inside one NCC node — and cost no NCC message;
cross edges connect different columns and are realized as real NCC messages.
Since the butterfly has constant degree, one butterfly communication round
fits into one NCC round.

:mod:`~repro.butterfly.topology` defines the graph and hosting map;
:mod:`~repro.butterfly.routing` implements the random-rank combining router
(Appendix B.2) used by the Aggregation / Multicast-Tree-Setup / Multicast /
Multi-Aggregation primitives, including token-based termination detection.
"""

from .topology import BFNode, ButterflyGrid
from .routing import CombiningRouter, MulticastRouter, RoutingResult, TreeSet

__all__ = [
    "BFNode",
    "ButterflyGrid",
    "CombiningRouter",
    "MulticastRouter",
    "RoutingResult",
    "TreeSet",
]
