"""The d-dimensional butterfly and its hosting on NCC nodes.

Definitions follow Section 2.2 verbatim.  For ``d ∈ N`` the butterfly has
node set ``[d+1] × [2^d]`` and edges

* straight: ``{(i, α), (i+1, α)}`` for ``i ∈ [d]``,
* cross:    ``{(i, α), (i+1, β)}`` for ``α, β`` differing exactly at bit
  ``i``.

Level 0 is the *topmost* level (packet injection), level ``d`` the
*bottommost* (aggregation targets / multicast roots).  NCC node ``i < 2^d``
emulates column ``i``; nodes ``i ≥ 2^d`` (when n is not a power of two) own
no column and take part through their *partner* — the level-0 node of column
``i − 2^d`` ("identifier differs only in the most significant bit",
Appendix B.1).

Bit convention: the bit fixed between level ``i`` and ``i+1`` is bit ``i``
of the column index, so the unique path from ``(0, α)`` to ``(d, β)``
adjusts bits ``0, 1, …, d−1`` in that order.
"""

from __future__ import annotations

import math
from typing import Iterator, NamedTuple


class BFNode(NamedTuple):
    """A butterfly node (level, column).

    A NamedTuple rather than a dataclass: butterfly nodes key the routers'
    hot dictionaries, and tuple hashing is C-level.
    """

    level: int
    column: int


class ButterflyGrid:
    """Topology + hosting map for the butterfly emulated by ``n`` NCC nodes."""

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = int(n)
        # d = ⌊log2 n⌋ (Section 2.2); n = 1 gives the degenerate d = 0
        # butterfly with a single node.
        self.d = int(math.floor(math.log2(self.n))) if self.n > 1 else 0
        self.columns = 1 << self.d
        self.levels = self.d + 1

    # ------------------------------------------------------------------
    # Hosting
    # ------------------------------------------------------------------
    def host(self, node: BFNode) -> int:
        """NCC node emulating this butterfly node (= its column)."""
        self._check(node)
        return node.column

    def emulates(self, ncc_node: int) -> bool:
        """Does this NCC node emulate a butterfly column?"""
        return 0 <= ncc_node < self.columns

    def partner(self, ncc_node: int) -> BFNode | None:
        """Level-0 node serving a non-emulating NCC node, else ``None``."""
        if self.emulates(ncc_node):
            return None
        return BFNode(0, ncc_node - self.columns)

    def partner_of_column(self, column: int) -> int | None:
        """The non-emulating NCC node attached to level-0 column, if any."""
        cand = column + self.columns
        return cand if cand < self.n else None

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def down_neighbors(self, node: BFNode) -> tuple[BFNode, BFNode]:
        """(straight, cross) neighbours one level down; only for level < d."""
        self._check(node)
        if node.level >= self.d:
            raise ValueError(f"{node} has no down-neighbours")
        bit = 1 << node.level
        return (
            BFNode(node.level + 1, node.column),
            BFNode(node.level + 1, node.column ^ bit),
        )

    def up_neighbors(self, node: BFNode) -> tuple[BFNode, BFNode]:
        """(straight, cross) neighbours one level up; only for level > 0."""
        self._check(node)
        if node.level <= 0:
            raise ValueError(f"{node} has no up-neighbours")
        bit = 1 << (node.level - 1)
        return (
            BFNode(node.level - 1, node.column),
            BFNode(node.level - 1, node.column ^ bit),
        )

    def down_next(self, node: BFNode, target_column: int) -> BFNode:
        """Next hop on the unique path from ``node`` toward
        ``(d, target_column)``: fix bit ``node.level``."""
        self._check(node)
        if node.level >= self.d:
            raise ValueError(f"{node} is already at the bottom level")
        bit = 1 << node.level
        next_col = (node.column & ~bit) | (target_column & bit)
        return BFNode(node.level + 1, next_col)

    def is_local_edge(self, a: BFNode, b: BFNode) -> bool:
        """True when the edge stays inside one NCC node (straight edge)."""
        return a.column == b.column

    def path_down(self, start_column: int, target_column: int) -> list[BFNode]:
        """The unique level-0 → level-d path (used by tests/congestion)."""
        node = BFNode(0, start_column)
        path = [node]
        while node.level < self.d:
            node = self.down_next(node, target_column)
            path.append(node)
        return path

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def all_nodes(self) -> Iterator[BFNode]:
        for level in range(self.levels):
            for col in range(self.columns):
                yield BFNode(level, col)

    def level_nodes(self, level: int) -> Iterator[BFNode]:
        if not 0 <= level <= self.d:
            raise ValueError(f"level {level} outside [0, {self.d}]")
        for col in range(self.columns):
            yield BFNode(level, col)

    def node_count(self) -> int:
        return self.levels * self.columns

    def edge_count(self) -> int:
        # Each of the d inter-level layers has 2^d straight + 2^d cross edges.
        return self.d * self.columns * 2

    # ------------------------------------------------------------------
    def _check(self, node: BFNode) -> None:
        if not (0 <= node.level <= self.d and 0 <= node.column < self.columns):
            raise ValueError(f"{node} outside butterfly (d={self.d})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ButterflyGrid(n={self.n}, d={self.d})"
