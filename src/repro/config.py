"""Model configuration for the Node-Capacitated Clique simulator.

The NCC model (Section 1.1 of the paper) lets every node send and receive up
to ``O(log n)`` messages of ``O(log n)`` bits per synchronous round.  The
hidden constants matter for a concrete simulation, so they are explicit
parameters here:

* ``capacity_multiplier`` — a node may send/receive up to
  ``ceil(capacity_multiplier * log2(n))`` messages per round.
* ``bits_multiplier`` — each message may carry up to
  ``ceil(bits_multiplier * log2(n))`` payload bits.
* ``enforcement`` — what happens when a bound is exceeded (see
  :class:`Enforcement`).

The defaults are tuned so that, at the experiment scales used in this
repository (n ≤ 1024), the with-high-probability load bounds of the paper
hold and the violation ledger stays empty; the test-suite asserts this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any

from .errors import ConfigurationError


#: Built-in round-engine implementations (see :mod:`repro.ncc.engine`).
ENGINE_CHOICES = ("reference", "batched")

#: Engines that register themselves on first import (see
#: :func:`repro.ncc.engine.build_engine`); selectable by name without an
#: eager import of their (heavier) modules.
LAZY_ENGINES = ("sharded",)

_DEFAULT_ENGINE = "reference"


def known_engines() -> tuple[str, ...]:
    """Built-in engines plus anything added via
    :func:`repro.ncc.engine.register_engine` (imported lazily — the
    registry lives above this module in the import graph)."""
    names = set(ENGINE_CHOICES)
    names.update(LAZY_ENGINES)
    try:
        from .ncc.engine import engine_names

        names.update(engine_names())
    except ImportError:  # pragma: no cover - only during partial installs
        pass
    return tuple(sorted(names))


def default_engine() -> str:
    """The process-wide round engine used when a config leaves ``engine``
    unset.  The test-suite's ``--engine`` option swaps this to replay the
    whole suite against another engine without touching any test."""
    return _DEFAULT_ENGINE


def set_default_engine(name: str) -> str:
    """Set the process-wide default round engine; returns the previous one."""
    global _DEFAULT_ENGINE
    if name not in known_engines():
        raise ConfigurationError(
            f"unknown round engine {name!r}; choose from {known_engines()}"
        )
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = name
    return previous


class Enforcement(str, Enum):
    """Receive/send-capacity enforcement semantics.

    ``STRICT``
        Raise :class:`~repro.errors.CapacityError` on any violation.  Used by
        the test-suite to certify that the chosen constants satisfy the
        paper's w.h.p. bounds on concrete instances.
    ``COUNT``
        Deliver every message but record violations in the statistics ledger.
        The default for experiments: round counts stay meaningful and the
        ledger shows whether the run stayed inside the model.
    ``DROP``
        Faithful model semantics (Section 1.1): if more messages arrive at a
        node than its capacity, a uniformly random subset of capacity-many
        messages is delivered and the rest are dropped by the network.
    """

    STRICT = "strict"
    COUNT = "count"
    DROP = "drop"


@dataclass(frozen=True)
class NCCConfig:
    """Parameters of a simulated Node-Capacitated Clique.

    Parameters
    ----------
    capacity_multiplier:
        Per-round message budget is ``ceil(capacity_multiplier * log2 n)``.
        The paper's algorithms need a small constant > 1 because a node
        simultaneously forwards butterfly traffic on up to ``log2 n`` cross
        edges per direction and exchanges a handful of direct messages.
    bits_multiplier:
        Per-message payload budget is ``ceil(bits_multiplier * log2 n)`` bits.
        Edge identifiers are ``2 log2 n`` bits and FindMin sketches carry
        Θ(log n) single-bit trials, hence the default of 8.
    enforcement:
        See :class:`Enforcement`.
    seed:
        Master seed for all randomness (shared hash functions, random
        destinations, coin flips).  Same seed ⇒ identical simulation.
    max_rounds:
        Safety valve: simulations abort with
        :class:`~repro.errors.SimulationLimitError` beyond this many rounds.
    identification_s_constant / identification_q_constant:
        The ``s = c`` hash-function count and ``q = 4 e c d* log n`` trial
        count constants of Section 4.2 (first Identification step).
    coloring_epsilon:
        Palette slack ε of Section 5.4; palettes have ``2(1+ε)â`` colors.
    charge_hash_agreement:
        If True (default), agreeing on each shared hash family costs a real
        pipelined broadcast (Section 2.2); if False the agreement is free
        (useful for unit tests that probe a single primitive's rounds).
    engine:
        Round-engine implementation: ``"reference"`` (per-message walk) or
        ``"batched"`` (columnar fast path; see :mod:`repro.ncc.batched`).
        The empty string (default) defers to :func:`default_engine`, which
        lets the test-suite replay everything under another engine.  All
        engines are certified observably identical by
        ``tests/test_engine_parity.py``.  ``"sharded"`` distributes the
        columnar delivery kernel across worker processes (see
        :mod:`repro.ncc.sharded`).
    shards:
        Worker-process count for the ``"sharded"`` engine (node IDs are
        partitioned into this many contiguous ranges).  ``0`` (default)
        lets the engine pick from the machine's core count.  The value
        never changes observable output — a sharded run is byte-identical
        to the single-process batched run for every ``shards`` value —
        so it is a performance knob, not part of the experiment identity.
    """

    capacity_multiplier: float = 4.0
    bits_multiplier: float = 8.0
    enforcement: Enforcement = Enforcement.COUNT
    seed: int = 0
    max_rounds: int = 2_000_000
    identification_s_constant: int = 7
    identification_q_constant: int = 7
    coloring_epsilon: float = 0.5
    charge_hash_agreement: bool = True
    engine: str = ""
    shards: int = 0
    extras: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity_multiplier <= 0:
            raise ConfigurationError("capacity_multiplier must be positive")
        if self.bits_multiplier <= 0:
            raise ConfigurationError("bits_multiplier must be positive")
        if self.max_rounds <= 0:
            raise ConfigurationError("max_rounds must be positive")
        if self.identification_s_constant < 4:
            # Lemma 4.2 requires s >= 4.
            raise ConfigurationError("identification_s_constant must be >= 4 (Lemma 4.2)")
        if self.identification_q_constant < 1:
            raise ConfigurationError("identification_q_constant must be >= 1")
        if self.coloring_epsilon <= 0:
            raise ConfigurationError("coloring_epsilon must be positive")
        if not isinstance(self.enforcement, Enforcement):
            object.__setattr__(self, "enforcement", Enforcement(self.enforcement))
        if self.engine and self.engine not in known_engines():
            raise ConfigurationError(
                f"unknown round engine {self.engine!r}; choose from {known_engines()}"
            )
        if not isinstance(self.shards, int) or isinstance(self.shards, bool):
            raise ConfigurationError("shards must be an integer")
        if self.shards < 0:
            raise ConfigurationError("shards must be >= 0 (0 = auto)")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def log2n(self, n: int) -> int:
        """``ceil(log2 n)``, at least 1 — the model's fundamental unit."""
        if n < 2:
            return 1
        return max(1, math.ceil(math.log2(n)))

    def capacity(self, n: int) -> int:
        """Per-round per-node message budget (send and receive each)."""
        return max(1, math.ceil(self.capacity_multiplier * self.log2n(n)))

    def message_bits(self, n: int) -> int:
        """Per-message payload budget in bits.

        Floored at 32: the model's O(log n) hides constants that dominate
        at tiny n, and every protocol envelope needs a few dozen bits.
        """
        return max(32, math.ceil(self.bits_multiplier * self.log2n(n)))

    def batch_size(self, n: int) -> int:
        """``ceil(log n)`` — the paper's injection batch size."""
        return max(1, self.log2n(n))

    def resolve_engine(self) -> str:
        """The round engine this config selects (deferring to the
        process-wide default when ``engine`` is unset)."""
        return self.engine or default_engine()

    def with_(self, **changes: Any) -> "NCCConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


DEFAULT_CONFIG = NCCConfig()
