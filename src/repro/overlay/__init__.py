"""Overlay bootstrap from Θ(log n) random contacts (Section 6's remark).

The paper closes with: "all of our algorithms still achieve the presented
runtimes if, in addition to knowing their neighbors in the input graph,
they initially only know Θ(log n) random nodes" — the full-knowledge
assumption only feeds the butterfly construction, which overlay-building
algorithms (e.g. [2]) can replace.

This package implements the substrate that remark rests on, in the
*introduction* formalism of Section 1 ("overlay edges can be established by
introducing nodes to each other"): a knowledge-gated network wrapper where
a node may only address identifiers it has learned, plus a bootstrap
protocol that, starting from random contact lists, elects the minimum
identifier and leaves behind a low-depth aggregation tree — giving
Aggregate-and-Broadcast (Theorem 2.2) in O(log n) rounds with no global
knowledge.
"""

from .bootstrap import (
    BootstrapResult,
    KnowledgeTracker,
    bootstrap_aggregation_tree,
    random_contact_lists,
    tree_aggregate_broadcast,
)

__all__ = [
    "random_contact_lists",
    "KnowledgeTracker",
    "BootstrapResult",
    "bootstrap_aggregation_tree",
    "tree_aggregate_broadcast",
]
