"""Bootstrap an aggregation backbone from Θ(log n) random contacts.

Protocol (classic minimum flooding on the contact digraph):

1. every node starts knowing ``c·⌈log₂ n⌉`` uniformly random contacts (and
   nothing else — enforced by :class:`KnowledgeTracker`);
2. in each round, every node whose known minimum identifier improved sends
   the new minimum to all its contacts — at most ``c·log n`` messages of
   one identifier each, within the model budget;
3. a node adopts the sender that first lowered its minimum to the final
   value as its *parent*.  Since the contact digraph is a random graph with
   Θ(log n) out-degree, flooding from the true minimum reaches everyone in
   O(log n) rounds w.h.p., and the parent pointers form a tree of depth
   O(log n) rooted at the minimum.

The resulting tree supports Aggregate-and-Broadcast in O(depth + …) rounds
(:func:`tree_aggregate_broadcast`): aggregation waves climb level by level
(children before parents), then the result floods back down.  Per round a
tree node exchanges messages only with its parent and children; children
counts are ≤ in-contact counts = O(log n) w.h.p., so capacity holds.

This realizes the backbone that Section 6's closing remark relies on: the
synchronization and aggregation primitives never needed full identifier
knowledge, only the input-graph neighbourhoods plus random contacts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import ProtocolError
from ..ncc.message import Message
from ..rng import seeded_rng
from ..runtime import NCCRuntime
from ..primitives.functions import Aggregate


def random_contact_lists(
    n: int, multiplier: float = 1.0, seed: int = 0
) -> list[list[int]]:
    """Per-node lists of ``⌈multiplier · log₂ n⌉`` distinct random contacts."""
    rng = seeded_rng(f"contacts|{seed}|{n}|{multiplier}")
    k = max(1, math.ceil(multiplier * math.log2(max(2, n))))
    contacts: list[list[int]] = []
    for u in range(n):
        pool = [v for v in range(n) if v != u]
        contacts.append(sorted(rng.sample(pool, min(k, len(pool)))))
    return contacts


class KnowledgeTracker:
    """Enforces the introduction rule: send only to identifiers you know.

    Knowledge grows by receiving a message (you learn the sender) or by
    reading identifiers out of a payload.  The bootstrap protocol registers
    every id it puts on the wire, so a violation here means the protocol
    assumed knowledge it never obtained.
    """

    def __init__(self, n: int, initial: list[list[int]]):
        self.known: list[set[int]] = [set(c) | {u} for u, c in enumerate(initial)]
        self.n = n

    def check_send(self, src: int, dst: int) -> None:
        if dst not in self.known[src]:
            raise ProtocolError(
                f"node {src} addressed unknown identifier {dst} "
                "(introduction rule violated)"
            )

    def learn(self, node: int, *ids: int) -> None:
        self.known[node].update(ids)


@dataclass
class BootstrapResult:
    """Outcome of the contact bootstrap."""

    leader: int
    parent: list[int | None]  # parent[u] on the aggregation tree; None = root
    depth: int
    converged_round: int
    rounds: int
    children: dict[int, list[int]] = field(default_factory=dict)

    def tree_levels(self) -> list[list[int]]:
        """Nodes grouped by tree depth (level 0 = root)."""
        depth_of = {self.leader: 0}
        levels = [[self.leader]]
        frontier = [self.leader]
        while frontier:
            nxt = []
            for u in frontier:
                for ch in self.children.get(u, ()):
                    depth_of[ch] = depth_of[u] + 1
                    nxt.append(ch)
            if nxt:
                levels.append(sorted(nxt))
            frontier = nxt
        return levels


def bootstrap_aggregation_tree(
    rt: NCCRuntime,
    contacts: list[list[int]],
    *,
    window_multiplier: int = 6,
    kind: str = "overlay-bootstrap",
) -> BootstrapResult:
    """Elect the minimum identifier and build the flooding tree.

    Runs for a fixed window of ``window_multiplier · ⌈log₂ n⌉`` rounds (the
    nodes cannot detect global termination without the very backbone being
    built; the window is the standard w.h.p. bound).  Raises
    :class:`ProtocolError` if flooding has not converged by then — which
    happens exactly when the contact digraph is not connected (too few
    contacts).
    """
    n = rt.n
    if len(contacts) != n:
        raise ValueError("need one contact list per node")
    tracker = KnowledgeTracker(n, contacts)
    start = rt.net.round_index
    window = max(4, window_multiplier * rt.log2n)

    best = list(range(n))  # current known minimum per node
    parent: list[int | None] = [None] * n
    improved = set(range(n))  # nodes that must (re)announce
    converged_round = 0

    with rt.net.phase(kind):
        for r in range(window):
            msgs = []
            for u in improved:
                for v in contacts[u]:
                    tracker.check_send(u, v)
                    msgs.append(Message(u, v, ("MIN", best[u]), kind=kind))
            inbox = rt.net.exchange(msgs)
            improved = set()
            for v, received in inbox.items():
                lowest = min(m.payload[1] for m in received)
                tracker.learn(v, lowest, *(m.src for m in received))
                if lowest < best[v]:
                    best[v] = lowest
                    # parent = the (smallest-id) sender that delivered it
                    parent[v] = min(
                        m.src for m in received if m.payload[1] == lowest
                    )
                    improved.add(v)
            if improved:
                converged_round = r + 1

    leader = min(range(n))
    if any(b != leader for b in best):
        raise ProtocolError(
            "bootstrap flooding did not converge: contact digraph is "
            "not connected (increase the contact multiplier)"
        )

    children: dict[int, list[int]] = {}
    for u in range(n):
        p = parent[u]
        if p is not None:
            children.setdefault(p, []).append(u)
    for kids in children.values():
        kids.sort()

    # depth via BFS from the root
    depth = 0
    frontier = [leader]
    seen = {leader}
    while frontier:
        nxt = [ch for u in frontier for ch in children.get(u, ()) if ch not in seen]
        seen.update(nxt)
        if nxt:
            depth += 1
        frontier = nxt
    if len(seen) != n:
        raise ProtocolError("parent pointers do not form a spanning tree")

    return BootstrapResult(
        leader=leader,
        parent=parent,
        depth=depth,
        converged_round=converged_round,
        rounds=rt.net.round_index - start,
        children=children,
    )


def tree_aggregate_broadcast(
    rt: NCCRuntime,
    tree: BootstrapResult,
    inputs: dict[int, object],
    fn: Aggregate,
    *,
    kind: str = "overlay-agg",
) -> object:
    """Aggregate-and-Broadcast over the bootstrap tree in O(depth) waves.

    Level-synchronous convergecast (deepest level first; a node sends its
    partial aggregate to its parent once per wave) followed by a broadcast
    down the same edges.  Per round each node sends at most one message up
    or forwards one value to ≤ O(log n) children — within capacity w.h.p.

    Functionally equivalent to Theorem 2.2's butterfly A&B, but requires
    no identifier knowledge beyond the bootstrap contacts.
    """
    levels = tree.tree_levels()
    start = rt.net.round_index
    acc: dict[int, object] = dict(inputs)

    with rt.net.phase(kind):
        # Convergecast: deepest level first.
        for level in reversed(levels[1:]):
            msgs = []
            for u in level:
                if u in acc:
                    p = tree.parent[u]
                    assert p is not None
                    msgs.append(Message(u, p, ("AGG", acc.pop(u)), kind=kind))
            inbox = rt.net.exchange(msgs)
            for p, received in inbox.items():
                for m in received:
                    v = m.payload[1]
                    acc[p] = fn(acc[p], v) if p in acc else v
        result = acc.get(tree.leader)

        # Broadcast down, level by level.
        for level in levels[:-1]:
            msgs = []
            for u in level:
                for ch in tree.children.get(u, ()):
                    msgs.append(Message(u, ch, ("RES", result), kind=kind))
            rt.net.exchange(msgs)

    return result
