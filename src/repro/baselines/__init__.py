"""Comparison substrates: sequential oracles, naive NCC algorithms, and the
Congested Clique separation experiments."""

from . import congested_clique, naive, sequential

__all__ = ["sequential", "naive", "congested_clique"]
