"""Sequential (centralized) baseline algorithms.

These are the correctness oracles the distributed algorithms are tested
against, and the "who wins" reference points in EXPERIMENTS.md.  All are
classical textbook algorithms implemented directly on
:class:`~repro.ncc.graph_input.InputGraph`.
"""

from __future__ import annotations

from typing import Iterable

from ..ncc.graph_input import InputGraph, canonical_edge


# ----------------------------------------------------------------------
# MST (Kruskal with the same (weight, edge-id) tie-breaking as FindMin)
# ----------------------------------------------------------------------
class _UnionFind:
    def __init__(self, n: int):
        self.parent = list(range(n))
        self.rank = [0] * n

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        return True


def kruskal_msf(g: InputGraph) -> set[tuple[int, int]]:
    """Minimum spanning forest with (weight, id) tie-breaking.

    With this tie-breaking the MSF is *unique*, so the distributed MST's
    edge set must match it exactly (not only by total weight).
    """
    uf = _UnionFind(g.n)
    edges = sorted(g.edges(), key=lambda e: (g.weight(*e), g.edge_id(*e)))
    out: set[tuple[int, int]] = set()
    for u, v in edges:
        if uf.union(u, v):
            out.add(canonical_edge(u, v))
    return out


def msf_weight(g: InputGraph) -> int:
    return sum(g.weight(u, v) for u, v in kruskal_msf(g))


# ----------------------------------------------------------------------
# BFS
# ----------------------------------------------------------------------
def bfs_tree(g: InputGraph, source: int) -> tuple[list[int | None], list[int | None]]:
    """(distances, parents); the parent is the smallest-id predecessor on a
    shortest path, matching the distributed algorithm's tie-breaking."""
    dist: list[int | None] = [None] * g.n
    parent: list[int | None] = [None] * g.n
    dist[source] = 0
    frontier = [source]
    while frontier:
        nxt: dict[int, int] = {}
        for u in sorted(frontier):
            for v in g.neighbors(u):
                if dist[v] is None and v not in nxt:
                    nxt[v] = u
                elif dist[v] is None:
                    nxt[v] = min(nxt[v], u)
        for v, p in nxt.items():
            dist[v] = dist[p] + 1  # type: ignore[operator]
            parent[v] = p
        frontier = list(nxt)
    return dist, parent


# ----------------------------------------------------------------------
# Symmetry-breaking problems: validity checkers + greedy constructions
# ----------------------------------------------------------------------
def greedy_mis(g: InputGraph, order: Iterable[int] | None = None) -> set[int]:
    """Greedy MIS in the given (default: id) order."""
    chosen: set[int] = set()
    blocked = [False] * g.n
    for u in order if order is not None else range(g.n):
        if not blocked[u]:
            chosen.add(u)
            for v in g.neighbors(u):
                blocked[v] = True
    return chosen


def is_independent_set(g: InputGraph, s: set[int]) -> bool:
    return all(v not in s for u in s for v in g.neighbors(u))


def is_maximal_independent_set(g: InputGraph, s: set[int]) -> bool:
    if not is_independent_set(g, s):
        return False
    for u in range(g.n):
        if u not in s and not any(v in s for v in g.neighbors(u)):
            return False
    return True


def greedy_matching(g: InputGraph) -> set[tuple[int, int]]:
    matched = [False] * g.n
    out: set[tuple[int, int]] = set()
    for u, v in g.edges():
        if not matched[u] and not matched[v]:
            matched[u] = matched[v] = True
            out.add((u, v))
    return out


def is_matching(g: InputGraph, m: set[tuple[int, int]]) -> bool:
    used: set[int] = set()
    edge_set = set(g.edges())
    for u, v in m:
        if canonical_edge(u, v) not in edge_set:
            return False
        if u in used or v in used:
            return False
        used.add(u)
        used.add(v)
    return True


def is_maximal_matching(g: InputGraph, m: set[tuple[int, int]]) -> bool:
    if not is_matching(g, m):
        return False
    used = {x for e in m for x in e}
    return all(u in used or v in used for u, v in g.edges())


def greedy_coloring(g: InputGraph, order: Iterable[int] | None = None) -> dict[int, int]:
    """First-fit coloring; in degeneracy order it uses ≤ degeneracy+1
    colors ≤ 2a colors."""
    colors: dict[int, int] = {}
    for u in order if order is not None else range(g.n):
        taken = {colors[v] for v in g.neighbors(u) if v in colors}
        c = 0
        while c in taken:
            c += 1
        colors[u] = c
    return colors


def degeneracy_coloring(g: InputGraph) -> dict[int, int]:
    from ..graphs.arboricity import degeneracy_order

    order, _ = degeneracy_order(g)
    return greedy_coloring(g, reversed(order))


def is_proper_coloring(g: InputGraph, colors: dict[int, int]) -> bool:
    if set(colors) != set(range(g.n)):
        return False
    return all(colors[u] != colors[v] for u, v in g.edges())
