"""A minimal Congested Clique simulator for the model-separation claims.

The introduction separates the models by per-round bandwidth: the Congested
Clique moves Θ̃(n²) bits per round (every node exchanges one O(log n)-bit
message with every other node), the NCC only Θ̃(n).  Consequently:

* *gossip* (all-to-all token dissemination) takes 1 round in the Congested
  Clique but Ω(n / log n) rounds in the NCC;
* *broadcast* (one token to all) takes 1 round in the Congested Clique and
  Ω(log n / log log n) — Θ(log n) with the butterfly — in the NCC.

This simulator implements exactly enough of the Congested Clique to run
those two experiments with real message counting, mirroring the NCC
engine's bookkeeping so the benchmark prints comparable rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

from ..errors import CapacityError
from ..ncc.message import payload_bits


@dataclass
class CCStats:
    rounds: int = 0
    messages: int = 0
    bits: int = 0


class CongestedClique:
    """n nodes; per round each ordered pair may exchange one
    O(log n)-bit message."""

    def __init__(self, n: int, *, bits_multiplier: float = 8.0):
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = n
        self.message_bits = max(8, math.ceil(bits_multiplier * math.log2(max(2, n))))
        self.stats = CCStats()

    def exchange(
        self, outgoing: Mapping[int, Mapping[int, Any]]
    ) -> dict[int, dict[int, Any]]:
        """One round: ``outgoing[u][v]`` is u's message to v (≤ 1 per pair)."""
        inboxes: dict[int, dict[int, Any]] = {}
        msgs = 0
        bits = 0
        for u, per_dst in outgoing.items():
            for v, payload in per_dst.items():
                if not 0 <= v < self.n:
                    raise ValueError(f"bad destination {v}")
                b = payload_bits(payload)
                if b > self.message_bits:
                    raise CapacityError(
                        f"payload too large: {b} > {self.message_bits}",
                        node=u,
                        round_index=self.stats.rounds,
                        count=b,
                        capacity=self.message_bits,
                    )
                inboxes.setdefault(v, {})[u] = payload
                msgs += 1
                bits += b
        self.stats.rounds += 1
        self.stats.messages += msgs
        self.stats.bits += bits
        return inboxes


def gossip_congested_clique(n: int) -> CCStats:
    """All-to-all gossip: a single round (the intro's headline example)."""
    cc = CongestedClique(n)
    tokens = {u: ("tok", u) for u in range(n)}
    out = {u: {v: tokens[u] for v in range(n) if v != u} for u in range(n)}
    inbox = cc.exchange(out)
    for v in range(n):
        got = set(inbox.get(v, {}).values()) | {tokens[v]}
        assert len(got) == n, "gossip must deliver every token"
    return cc.stats


def broadcast_congested_clique(n: int, src: int = 0) -> CCStats:
    """One-to-all broadcast: also a single round."""
    cc = CongestedClique(n)
    out = {src: {v: ("b", src) for v in range(n) if v != src}}
    inbox = cc.exchange(out)
    assert all(v in inbox or v == src for v in range(n))
    return cc.stats


def gossip_ncc(rt) -> int:
    """All-to-all gossip in the NCC: every node must *receive* n−1 distinct
    tokens at O(log n) per round, so ⌈(n−1)/capacity⌉ rounds are both
    necessary (the Ω(n / log n) bound) and sufficient via a round-robin
    schedule.  Executes the schedule for real; returns rounds used."""
    from ..ncc.message import Message

    n = rt.n
    start = rt.net.round_index
    cap = rt.net.capacity
    with rt.net.phase("gossip"):
        # Round-robin: in round r, node u sends its token to nodes
        # u+r*cap+1 .. u+(r+1)*cap (mod n) — every node receives exactly
        # `cap` tokens per round.
        received: dict[int, set[int]] = {u: {u} for u in range(n)}
        r = 0
        while any(len(s) < n for s in received.values()):
            msgs = []
            for u in range(n):
                for j in range(r * cap + 1, min((r + 1) * cap + 1, n)):
                    msgs.append(Message(u, (u + j) % n, ("tok", u), kind="gossip"))
            inbox = rt.net.exchange(msgs)
            for v, ms in inbox.items():
                for m in ms:
                    received[v].add(m.payload[1])
            r += 1
    return rt.net.round_index - start


def broadcast_ncc(rt, src: int = 0) -> int:
    """One-to-all broadcast in the NCC via the butterfly's pipelined
    broadcast: Θ(log n) rounds (vs the intro's Ω(log n/log log n) bound)."""
    start = rt.net.round_index
    rt.pipelined_broadcast([("b", src)], src=src, kind="broadcast")
    return rt.net.round_index - start
