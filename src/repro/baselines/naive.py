"""Naive NCC algorithms: direct neighbour communication, no butterfly.

These baselines answer the ablation question "why does the paper bother
with orientation + multicast trees?": a node with degree ∆ can talk to its
neighbours directly, but only O(log n) per round, so naive per-phase costs
scale with ``⌈∆ / capacity⌉`` instead of ``a/log n + log n``.

The implementations stay inside the model (they respect capacity by
batching over rounds) and produce correct outputs — they are *slow*, not
wrong, which is exactly the comparison the benchmarks print.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..ncc.graph_input import InputGraph
from ..ncc.message import Message
from ..runtime import NCCRuntime


def _batched_neighbor_exchange(
    rt: NCCRuntime,
    graph: InputGraph,
    payload_of,
    senders,
    *,
    kind: str,
) -> dict[int, list[tuple[int, object]]]:
    """Every sender delivers ``payload_of(u)`` to all its neighbours
    directly over a window of ``Θ(⌈∆/capacity⌉)`` rounds.

    The window is sized by the graph's *global maximum degree* because both
    sides of the exchange are degree-bound: a sender emits deg(u) messages,
    and a receiver takes in up to deg(v).  Each message picks a uniformly
    random round, which keeps per-round loads at O(capacity + log n) w.h.p.
    — this ⌈∆/log n⌉ window is exactly the cost the paper's multicast-tree
    machinery avoids.  Returns per-node (neighbour, payload) lists.
    """
    cap = rt.net.capacity
    window = max(1, math.ceil(2 * graph.max_degree / cap))
    received: dict[int, list[tuple[int, object]]] = {}
    schedule: dict[int, list[Message]] = {r: [] for r in range(window)}
    salt = rt.net.round_index
    for u in senders:
        payload = payload_of(u)
        rng = rt.shared.node_rng(u, (kind, "spread", salt))
        for v in graph.neighbors(u):
            schedule[rng.randrange(window)].append(Message(u, v, payload, kind=kind))
    for r in range(window):
        inbox = rt.net.exchange(schedule[r])
        for v, msgs in inbox.items():
            for m in msgs:
                received.setdefault(v, []).append((m.src, m.payload))
    return received


@dataclass
class NaiveResult:
    rounds: int
    output: object


def naive_bfs(rt: NCCRuntime, graph: InputGraph, source: int) -> NaiveResult:
    """Frontier flooding with direct sends; per phase Θ(⌈∆/log n⌉) rounds."""
    start = rt.net.round_index
    dist: list[int | None] = [None] * graph.n
    parent: list[int | None] = [None] * graph.n
    dist[source] = 0
    frontier = [source]
    with rt.net.phase("naive-bfs"):
        while frontier:
            received = _batched_neighbor_exchange(
                rt, graph, lambda u: u, frontier, kind="naive-bfs"
            )
            nxt = []
            for v, arrivals in received.items():
                if dist[v] is None:
                    best = min(src for src, _ in arrivals)
                    dist[v] = dist[best] + 1  # type: ignore[operator]
                    parent[v] = best
                    nxt.append(v)
            frontier = nxt
    return NaiveResult(rt.net.round_index - start, (dist, parent))


def naive_mis(rt: NCCRuntime, graph: InputGraph, *, seed_tag: str = "naive-mis") -> NaiveResult:
    """Métivier et al. with direct neighbour messages (no multicast trees)."""
    start = rt.net.round_index
    n = graph.n
    in_mis: set[int] = set()
    active = set(range(n))
    with rt.net.phase("naive-mis"):
        rnd = 0
        while active:
            rnd += 1
            values = {
                u: rt.shared.node_rng(u, (seed_tag, rnd)).randrange(n**3)
                for u in active
            }
            received = _batched_neighbor_exchange(
                rt, graph, lambda u: values[u], active, kind="naive-mis"
            )
            joined = set()
            for u in active:
                wins = True
                for src, val in received.get(u, []):
                    if src in active and (val, src) < (values[u], u):
                        wins = False
                        break
                if wins:
                    joined.add(u)
            received2 = _batched_neighbor_exchange(
                rt, graph, lambda u: "JOIN", joined, kind="naive-mis-join"
            )
            in_mis |= joined
            removed = joined | {
                v for v, arr in received2.items() if any(p == "JOIN" for _, p in arr)
            }
            active -= removed
    return NaiveResult(rt.net.round_index - start, in_mis)


def naive_broadcast_tree_setup_rounds(rt: NCCRuntime, graph: InputGraph) -> int:
    """Round cost of the naive broadcast-tree setup of Section 5's intro:
    every node joins the multicast group of *every* neighbour directly, so
    ℓ = ∆ and the setup costs O(d̄ + ∆/log n + log n) — executed for real
    so the ablation benchmark measures, not estimates."""
    start = rt.net.round_index
    memberships = {u: list(graph.neighbors(u)) for u in range(graph.n)}
    rt.multicast_setup(
        memberships,
        tag=rt.shared.fresh_tag("naive-bt"),
        kind="naive-broadcast-setup",
    )
    return rt.net.round_index - start
