"""Table 1 regeneration harness — a thin view over the algorithm registry.

.. deprecated::
    This module is kept as a compatibility shim.  The algorithms now
    register themselves in :mod:`repro.registry` (one
    :class:`~repro.registry.AlgorithmSpec` each, declaring workload
    builder, runner, sequential oracle, and row descriptors), and new code
    should resolve them there — or drive whole scenario grids through
    :class:`repro.api.Session` / :class:`repro.api.RunSpec`.  Everything
    exported here (``TABLE1_RUNNERS``, ``TABLE1_BOUNDS``, ``run_*_row``,
    ``bench_config``, ``standard_workload``, ``sweep``) delegates to the
    registry and stays byte-identical to the pre-registry behaviour, which
    the test-suite pins.

One runner per Table 1 row.  Each runner builds the standard workload for
its algorithm, executes the distributed computation, validates the output
against the sequential oracle, and returns a row dict with the workload
descriptors the paper's bound depends on (n, a, D, W) plus the measured
rounds — exactly what the benchmarks print and EXPERIMENTS.md records.

The default simulation profile uses ``lightweight_sync`` (identical round
accounting for barriers/token waves without materializing their messages)
because the sweeps run hundreds of executions; fidelity tests elsewhere
pin the full message-level mode.
"""

from __future__ import annotations

from typing import Any, Callable

from ..registry import (  # noqa: F401  (re-exported compatibility surface)
    bench_config,
    describe_workload,
    get_algorithm,
    standard_workload,
    table1_specs,
)

# The registry views below are materialized lazily (PEP 562) and cached in
# the module globals: building them imports every algorithms/* module, and
# `repro.analysis` (hence e.g. `analysis.reporting`, imported by the CLI on
# every invocation) must stay cheap to import.
_LAZY_KEYS = {
    "TABLE1_RUNNERS", "TABLE1_BOUNDS",
    "run_mst_row", "run_bfs_row", "run_mis_row",
    "run_matching_row", "run_coloring_row",
}


def _materialize() -> None:
    #: Table 1 row key -> legacy row runner.  A view over the registry: the
    #: keys, their order, and the row dicts are identical to the historical
    #: hand-maintained dict (pinned by ``tests/test_tables.py``).
    runners: dict[str, Callable[..., dict[str, Any]]] = {
        spec.table1_key: spec.run_row for spec in table1_specs()
    }
    #: Table 1 row key -> the paper's round bound.
    bounds: dict[str, str] = {
        spec.table1_key: spec.bound for spec in table1_specs()
    }
    globals().update(
        TABLE1_RUNNERS=runners,
        TABLE1_BOUNDS=bounds,
        # Legacy per-row entry points (still used by benchmarks and tests).
        run_mst_row=runners["MST"],
        run_bfs_row=runners["BFS"],
        run_mis_row=runners["MIS"],
        run_matching_row=runners["MM"],
        run_coloring_row=runners["COL"],
    )


def __getattr__(name: str) -> Any:
    if name in _LAZY_KEYS:
        _materialize()
        return globals()[name]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def sweep(
    runner: Callable[..., dict[str, Any]],
    ns: list[int],
    *,
    a: int = 2,
    seeds: list[int] | None = None,
    **kwargs: Any,
) -> list[dict[str, Any]]:
    """Run a Table 1 runner over a size sweep (one row per (n, seed)).

    Serial and runner-shaped for compatibility; parallel grids should use
    :meth:`repro.api.Session.run_many`.
    """
    seeds = seeds if seeds is not None else [0]
    rows = []
    for n in ns:
        for seed in seeds:
            rows.append(runner(n, a=a, seed=seed, **kwargs))
    return rows
