"""Table 1 regeneration harness.

One runner per Table 1 row.  Each runner builds the standard workload for
its algorithm, executes the distributed computation, validates the output
against the sequential oracle, and returns a row dict with the workload
descriptors the paper's bound depends on (n, a, D, W) plus the measured
rounds — exactly what the benchmarks print and EXPERIMENTS.md records.

The default simulation profile uses ``lightweight_sync`` (identical round
accounting for barriers/token waves without materializing their messages)
because the sweeps run hundreds of executions; fidelity tests elsewhere
pin the full message-level mode.
"""

from __future__ import annotations

from typing import Any, Callable

from ..config import Enforcement, NCCConfig
from ..graphs import arboricity, generators, properties, weights
from ..ncc.graph_input import InputGraph
from ..runtime import NCCRuntime


def bench_config(seed: int = 0, **overrides: Any) -> NCCConfig:
    """The benchmark simulation profile."""
    base = dict(
        seed=seed,
        enforcement=Enforcement.COUNT,
        extras={"lightweight_sync": True},
    )
    base.update(overrides)
    return NCCConfig(**base)


def standard_workload(n: int, a: int, seed: int) -> InputGraph:
    """The bounded-arboricity workload of the T1 sweeps: a union of ``a``
    random spanning forests (arboricity ≤ a, connected)."""
    return generators.forest_union(n, a, seed=seed)


def _describe(
    g: InputGraph, *, with_diameter: bool = False, a_known: int | None = None
) -> dict[str, Any]:
    lo, hi = arboricity.arboricity_bounds(g)
    # A construction-time bound (e.g. forest_union(k) has a ≤ k) beats the
    # greedy estimate, which can overshoot by a constant factor.
    a_label = min(hi, a_known) if a_known is not None else hi
    row: dict[str, Any] = {
        "n": g.n,
        "m": g.m,
        "a": max(lo, a_label),
        "a_lower": lo,
        "a_greedy": hi,
        "max_degree": g.max_degree,
    }
    if with_diameter:
        row["D"] = properties.diameter(g)
    return row


# ----------------------------------------------------------------------
# Table 1 row runners
# ----------------------------------------------------------------------
def run_mst_row(n: int, *, a: int = 2, seed: int = 0, config: NCCConfig | None = None) -> dict[str, Any]:
    """Row T1-MST: weighted MST on a connected bounded-arboricity graph."""
    from ..algorithms.mst import MSTAlgorithm
    from ..baselines.sequential import kruskal_msf

    g = weights.with_random_weights(standard_workload(n, a, seed), seed=seed + 1)
    rt = NCCRuntime(n, config or bench_config(seed))
    result = MSTAlgorithm(rt, g).run()
    row = _describe(g, a_known=a)
    row.update(
        rounds=result.rounds,
        phases=result.phases,
        W=g.max_weight(),
        correct=result.edges == kruskal_msf(g),
        messages=rt.net.stats.messages,
        violations=rt.net.stats.violation_count,
    )
    return row


def run_bfs_row(
    n: int,
    *,
    a: int = 2,
    seed: int = 0,
    family: str = "forest",
    config: NCCConfig | None = None,
) -> dict[str, Any]:
    """Row T1-BFS: BFS tree on a forest-union or grid workload."""
    from ..algorithms.bfs import BFSAlgorithm
    from ..baselines.sequential import bfs_tree

    if family == "grid":
        side = max(2, int(round(n ** 0.5)))
        g = generators.grid(side, side)
    else:
        g = standard_workload(n, a, seed)
    rt = NCCRuntime(g.n, config or bench_config(seed))
    result = BFSAlgorithm(rt, g).run(0)
    expected, _ = bfs_tree(g, 0)
    row = _describe(g, with_diameter=True, a_known=(3 if family == "grid" else a))
    row.update(
        rounds=result.rounds,
        phases=result.phases,
        correct=result.dist == expected,
        messages=rt.net.stats.messages,
        violations=rt.net.stats.violation_count,
    )
    return row


def run_mis_row(n: int, *, a: int = 2, seed: int = 0, config: NCCConfig | None = None) -> dict[str, Any]:
    """Row T1-MIS."""
    from ..algorithms.mis import MISAlgorithm
    from ..baselines.sequential import is_maximal_independent_set

    g = standard_workload(n, a, seed)
    rt = NCCRuntime(n, config or bench_config(seed))
    result = MISAlgorithm(rt, g).run()
    row = _describe(g, a_known=a)
    row.update(
        rounds=result.rounds,
        phases=result.phases,
        mis_size=len(result.members),
        correct=is_maximal_independent_set(g, result.members),
        messages=rt.net.stats.messages,
        violations=rt.net.stats.violation_count,
    )
    return row


def run_matching_row(n: int, *, a: int = 2, seed: int = 0, config: NCCConfig | None = None) -> dict[str, Any]:
    """Row T1-MM."""
    from ..algorithms.matching import MatchingAlgorithm
    from ..baselines.sequential import is_maximal_matching

    g = standard_workload(n, a, seed)
    rt = NCCRuntime(n, config or bench_config(seed))
    result = MatchingAlgorithm(rt, g).run()
    row = _describe(g, a_known=a)
    row.update(
        rounds=result.rounds,
        phases=result.phases,
        matching_size=len(result.edges),
        correct=is_maximal_matching(g, result.edges),
        messages=rt.net.stats.messages,
        violations=rt.net.stats.violation_count,
    )
    return row


def run_coloring_row(n: int, *, a: int = 2, seed: int = 0, config: NCCConfig | None = None) -> dict[str, Any]:
    """Row T1-COL."""
    from ..algorithms.coloring import ColoringAlgorithm
    from ..baselines.sequential import is_proper_coloring

    g = standard_workload(n, a, seed)
    rt = NCCRuntime(n, config or bench_config(seed))
    result = ColoringAlgorithm(rt, g).run()
    row = _describe(g, a_known=a)
    row.update(
        rounds=result.rounds,
        repetitions=result.repetitions,
        colors_used=result.colors_used(),
        palette=result.palette_size,
        correct=is_proper_coloring(g, result.colors)
        and result.colors_used() <= result.palette_size,
        messages=rt.net.stats.messages,
        violations=rt.net.stats.violation_count,
    )
    return row


TABLE1_RUNNERS: dict[str, Callable[..., dict[str, Any]]] = {
    "MST": run_mst_row,
    "BFS": run_bfs_row,
    "MIS": run_mis_row,
    "MM": run_matching_row,
    "COL": run_coloring_row,
}

TABLE1_BOUNDS: dict[str, str] = {
    "MST": "O(log^4 n)",
    "BFS": "O((a + D + log n) log n)",
    "MIS": "O((a + log n) log n)",
    "MM": "O((a + log n) log n)",
    "COL": "O((a + log n) log^{3/2} n)",
}


def sweep(
    runner: Callable[..., dict[str, Any]],
    ns: list[int],
    *,
    a: int = 2,
    seeds: list[int] | None = None,
    **kwargs: Any,
) -> list[dict[str, Any]]:
    """Run a Table 1 runner over a size sweep (one row per (n, seed))."""
    seeds = seeds if seeds is not None else [0]
    rows = []
    for n in ns:
        for seed in seeds:
            rows.append(runner(n, a=a, seed=seed, **kwargs))
    return rows
