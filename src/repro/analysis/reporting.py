"""Plain-text table rendering for the experiment harness.

The benchmarks print the same row structure the paper reports (Table 1 plus
theorem-level claims); this module keeps the formatting in one place so
EXPERIMENTS.md and the bench output stay visually identical.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    title: str | None = None,
) -> str:
    """Monospace table with column auto-sizing."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(
            " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 100:
            return f"{v:.0f}"
        if abs(v) >= 1:
            return f"{v:.2f}"
        return f"{v:.3g}"
    return str(v)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    title: str | None = None,
) -> None:  # pragma: no cover - console convenience
    print(format_table(headers, rows, title=title))
