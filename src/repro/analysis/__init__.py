"""Experiment analysis: complexity-shape fitting, traces, table regeneration."""

from . import complexity, reporting, tables, trace

__all__ = ["complexity", "reporting", "tables", "trace"]
