"""Complexity-shape fitting for measured round counts.

The reproduction target is the *shape* of Table 1, not absolute constants:
for each algorithm we measure rounds over a parameter sweep and check which
candidate asymptotic model fits best (single-coefficient least squares,
compared by normalized RMSE).  A reproduction "holds" when the paper's
model is the best fit — or statistically indistinguishable from it — among
the candidates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

ModelFn = Callable[..., float]


def log2(x: float) -> float:
    return math.log2(max(2.0, x))


#: Candidate models keyed by a readable formula.  Each takes the workload
#: descriptor dict (n, a, D, W, ...) and returns the predicted growth term.
PAPER_MODELS: dict[str, ModelFn] = {
    "log^4 n": lambda p: log2(p["n"]) ** 4,
    "log^3 n": lambda p: log2(p["n"]) ** 3,
    "log^2 n": lambda p: log2(p["n"]) ** 2,
    "log n": lambda p: log2(p["n"]),
    "n": lambda p: float(p["n"]),
    "n log n": lambda p: p["n"] * log2(p["n"]),
    "n / log n": lambda p: p["n"] / log2(p["n"]),
    "sqrt(n)": lambda p: math.sqrt(p["n"]),
    "(a + log n) log n": lambda p: (p.get("a", 1) + log2(p["n"])) * log2(p["n"]),
    "(a + D + log n) log n": lambda p: (
        p.get("a", 1) + p.get("D", 1) + log2(p["n"])
    ) * log2(p["n"]),
    "(a + log n) log^1.5 n": lambda p: (p.get("a", 1) + log2(p["n"])) * log2(p["n"]) ** 1.5,
    "a log n": lambda p: p.get("a", 1) * log2(p["n"]),
    "a + log n": lambda p: p.get("a", 1) + log2(p["n"]),
    "D log n": lambda p: p.get("D", 1) * log2(p["n"]),
}


@dataclass
class FitResult:
    """One model's single-coefficient least-squares fit."""

    model: str
    coefficient: float
    rmse: float           # normalized by mean(y)
    predictions: list[float]

    def __str__(self) -> str:  # pragma: no cover - reporting aid
        return f"{self.coefficient:.3g} * {self.model}  (nrmse={self.rmse:.3f})"


def fit_single_coefficient(
    params: Sequence[Mapping[str, float]],
    rounds: Sequence[float],
    model: ModelFn,
    name: str = "model",
) -> FitResult:
    """Fit ``rounds ≈ c · model(params)`` by least squares."""
    x = np.array([model(p) for p in params], dtype=float)
    y = np.array(list(rounds), dtype=float)
    if len(x) == 0:
        raise ValueError("no data points")
    denom = float(np.dot(x, x))
    c = float(np.dot(x, y) / denom) if denom > 0 else 0.0
    pred = c * x
    mean_y = float(np.mean(y)) or 1.0
    rmse = float(np.sqrt(np.mean((pred - y) ** 2))) / abs(mean_y)
    return FitResult(name, c, rmse, pred.tolist())


def rank_models(
    params: Sequence[Mapping[str, float]],
    rounds: Sequence[float],
    models: Mapping[str, ModelFn] | None = None,
) -> list[FitResult]:
    """Fit every candidate and return them sorted best-first (by nRMSE)."""
    models = models if models is not None else PAPER_MODELS
    fits = [
        fit_single_coefficient(params, rounds, fn, name)
        for name, fn in models.items()
    ]
    return sorted(fits, key=lambda f: f.rmse)


def best_model(
    params: Sequence[Mapping[str, float]],
    rounds: Sequence[float],
    models: Mapping[str, ModelFn] | None = None,
) -> FitResult:
    return rank_models(params, rounds, models)[0]


def growth_exponent(ns: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log y against log n — a quick polynomial-
    degree probe (≈0 for polylog growth over moderate ranges)."""
    lx = np.log(np.array(list(ns), dtype=float))
    ly = np.log(np.maximum(1e-9, np.array(list(ys), dtype=float)))
    lx -= lx.mean()
    return float(np.dot(lx, ly - ly.mean()) / np.dot(lx, lx))


def doubling_ratios(ys: Sequence[float]) -> list[float]:
    """y[i+1]/y[i] for a doubling sweep — polylog algorithms stay near 1,
    linear ones near 2."""
    out = []
    for a, b in zip(ys, ys[1:]):
        out.append(b / a if a else float("inf"))
    return out
