"""Phase-level execution traces.

The network attributes every round to the stack of active phase labels
(``NCCNetwork.phase``), so after a run the statistics contain a full
breakdown of where the rounds went — FindMin echoes vs tree rebuilds vs
barriers.  This module turns that ledger into readable reports; the
quickstart example prints one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..ncc.stats import NetworkStats
from .reporting import format_table


@dataclass(frozen=True)
class PhaseRow:
    label: str
    rounds: int
    messages: int
    bits: int
    entries: int
    rounds_share: float

    def as_list(self) -> list:
        return [
            self.label,
            self.rounds,
            self.messages,
            self.bits,
            self.entries,
            f"{100 * self.rounds_share:.1f}%",
        ]


def phase_rows(
    stats: NetworkStats,
    *,
    prefix: str | None = None,
    top: int | None = None,
) -> list[PhaseRow]:
    """Phases sorted by rounds, optionally filtered by a label prefix.

    Shares are relative to the total rounds of the run.  Nested phases
    overlap (a round inside ``mst:findmin`` is also inside ``mst``), so
    shares of different nesting levels do not add to 100%; filter by prefix
    to compare siblings.
    """
    total = max(1, stats.rounds)
    rows = [
        PhaseRow(
            label=label,
            rounds=ps.rounds,
            messages=ps.messages,
            bits=ps.bits,
            entries=ps.entries,
            rounds_share=ps.rounds / total,
        )
        for label, ps in stats.phases.items()
        if prefix is None or label.startswith(prefix)
    ]
    rows.sort(key=lambda r: (-r.rounds, r.label))
    return rows[:top] if top is not None else rows


def phase_report(
    stats: NetworkStats,
    *,
    prefix: str | None = None,
    top: int | None = 15,
    title: str = "phase breakdown",
) -> str:
    """A formatted table of the run's heaviest phases."""
    rows = phase_rows(stats, prefix=prefix, top=top)
    return format_table(
        ["phase", "rounds", "messages", "bits", "entries", "share"],
        [r.as_list() for r in rows],
        title=title,
    )


def compare_runs(
    runs: Iterable[tuple[str, NetworkStats]],
    *,
    title: str = "run comparison",
) -> str:
    """Side-by-side totals for several runs (ablation convenience)."""
    rows = [
        [
            name,
            s.rounds,
            s.messages,
            s.bits,
            s.violation_count,
            s.dropped,
        ]
        for name, s in runs
    ]
    return format_table(
        ["run", "rounds", "messages", "bits", "violations", "dropped"],
        rows,
        title=title,
    )
