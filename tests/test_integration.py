"""End-to-end integration: full pipelines, reuse, determinism, STRICT mode."""

import pytest

from repro import Enforcement, NCCConfig, NCCRuntime
from repro.algorithms import (
    BFSAlgorithm,
    ColoringAlgorithm,
    MISAlgorithm,
    MSTAlgorithm,
    MatchingAlgorithm,
    build_broadcast_trees,
)
from repro.baselines import sequential as seq
from repro.graphs import generators, weights
from tests.conftest import make_runtime


FAMILIES = {
    "grid": lambda: generators.grid(5, 5),
    "star": lambda: generators.star(25),
    "forest3": lambda: generators.forest_union(25, 3, seed=1),
    "pa": lambda: generators.preferential_attachment(25, 2, seed=2),
}


class TestFullPipeline:
    @pytest.mark.parametrize("family", sorted(FAMILIES), ids=sorted(FAMILIES))
    def test_all_algorithms_one_runtime_strict(self, family):
        """One shared runtime runs every problem back-to-back in STRICT
        mode: no capacity or size violation anywhere, all outputs valid."""
        g = FAMILIES[family]()
        rt = make_runtime(g.n, seed=11)

        bt = build_broadcast_trees(rt, g)

        bfs = BFSAlgorithm(rt, g, broadcast_trees=bt).run(0)
        expected_dist, _ = seq.bfs_tree(g, 0)
        assert bfs.dist == expected_dist

        mis = MISAlgorithm(rt, g, broadcast_trees=bt).run()
        assert seq.is_maximal_independent_set(g, mis.members)

        mm = MatchingAlgorithm(rt, g, broadcast_trees=bt).run()
        assert seq.is_maximal_matching(g, mm.edges)

        col = ColoringAlgorithm(rt, g, orientation=bt.orientation).run()
        assert seq.is_proper_coloring(g, col.colors)
        assert col.colors_used() <= col.palette_size

        wg = weights.with_random_weights(g, seed=4)
        mst = MSTAlgorithm(rt, wg).run()
        assert mst.edges == seq.kruskal_msf(wg)

        assert rt.net.stats.violation_count == 0

    def test_deterministic_full_run(self):
        def run():
            g = generators.forest_union(20, 2, seed=3)
            rt = make_runtime(20, seed=5)
            bt = build_broadcast_trees(rt, g)
            mis = MISAlgorithm(rt, g, broadcast_trees=bt).run()
            mm = MatchingAlgorithm(rt, g, broadcast_trees=bt).run()
            return mis.members, mm.edges, rt.net.round_index, rt.net.stats.messages

        assert run() == run()

    def test_lightweight_sync_same_outputs(self):
        """Lightweight synchronization must change only accounting, never
        results."""
        g = generators.forest_union(20, 2, seed=7)

        def run(lightweight):
            rt = make_runtime(20, seed=5, strict=False, lightweight_sync=lightweight)
            bt = build_broadcast_trees(rt, g)
            return MISAlgorithm(rt, g, broadcast_trees=bt).run().members

        assert run(False) == run(True)

    def test_phase_accounting_totals(self):
        g = generators.grid(4, 4)
        rt = make_runtime(16, seed=2)
        bt = build_broadcast_trees(rt, g)
        MISAlgorithm(rt, g, broadcast_trees=bt).run()
        stats = rt.net.stats
        assert stats.phase("orientation").rounds > 0
        assert stats.phase("mis").rounds > 0
        assert stats.rounds >= stats.phase("mis").rounds


class TestScaleSanity:
    def test_medium_instance_strict(self):
        """A mid-size end-to-end STRICT run — the w.h.p. constants hold."""
        g = generators.forest_union(96, 2, seed=9)
        rt = make_runtime(96, seed=13, lightweight_sync=True)
        bt = build_broadcast_trees(rt, g)
        mis = MISAlgorithm(rt, g, broadcast_trees=bt).run()
        assert seq.is_maximal_independent_set(g, mis.members)

    def test_rounds_stay_polylog_per_phase(self):
        """MIS rounds divided by phases should not grow linearly in n."""
        per_phase = []
        for n in (32, 128):
            g = generators.forest_union(n, 2, seed=3)
            rt = make_runtime(n, seed=5, strict=False, lightweight_sync=True)
            bt = build_broadcast_trees(rt, g)
            res = MISAlgorithm(rt, g, broadcast_trees=bt).run()
            per_phase.append(res.rounds / max(1, res.phases))
        assert per_phase[1] < per_phase[0] * 3
