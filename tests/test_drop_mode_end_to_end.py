"""End-to-end algorithm runs under the model's faithful DROP semantics.

With the default capacity (4·log n) the algorithms' w.h.p. load bounds
hold, so DROP mode never actually drops anything and results must be
bit-identical to COUNT mode.  With starved capacity, drops occur; the
algorithms may then fail loudly (protocol errors from missing messages) or
still produce a valid output — but never an *invalid output accepted
silently*: the dropped counter is the tell-tale, and validity is always
checked.
"""

import pytest

from repro import Enforcement, NCCConfig, NCCRuntime
from repro.baselines import sequential as seq
from repro.errors import ProtocolError, ReproError
from repro.graphs import generators


def runtime(n, mode, capacity_multiplier=4.0, seed=3):
    cfg = NCCConfig(
        seed=seed,
        enforcement=mode,
        capacity_multiplier=capacity_multiplier,
    )
    return NCCRuntime(n, cfg)


class TestDropEqualsCountAtDefaultCapacity:
    """No violations ⇒ DROP must behave exactly like COUNT."""

    def test_mis_identical(self):
        g = generators.forest_union(32, 2, seed=1)
        results = {}
        for mode in (Enforcement.COUNT, Enforcement.DROP):
            from repro.algorithms import MISAlgorithm

            rt = runtime(32, mode)
            res = MISAlgorithm(rt, g).run()
            assert rt.net.stats.dropped == 0
            results[mode] = (res.members, rt.net.round_index)
        assert results[Enforcement.COUNT] == results[Enforcement.DROP]

    def test_bfs_identical(self):
        g = generators.grid(5, 5)
        results = {}
        for mode in (Enforcement.COUNT, Enforcement.DROP):
            from repro.algorithms import BFSAlgorithm

            rt = runtime(25, mode)
            res = BFSAlgorithm(rt, g).run(0)
            results[mode] = (tuple(res.dist), rt.net.round_index)
        assert results[Enforcement.COUNT] == results[Enforcement.DROP]

    def test_mst_identical(self):
        from repro.algorithms import MSTAlgorithm
        from repro.graphs import weights

        g = weights.with_unique_weights(generators.cycle(16), seed=2)
        results = {}
        for mode in (Enforcement.COUNT, Enforcement.DROP):
            rt = runtime(16, mode)
            res = MSTAlgorithm(rt, g).run()
            results[mode] = (frozenset(res.edges), rt.net.round_index)
        assert results[Enforcement.COUNT] == results[Enforcement.DROP]


class TestStarvedDrop:
    """Starved capacity: drops happen; outcomes are loud, never silently wrong."""

    def test_drops_are_recorded(self):
        from repro.algorithms import MISAlgorithm

        g = generators.forest_union(32, 3, seed=4)
        rt = runtime(32, Enforcement.DROP, capacity_multiplier=0.5)
        try:
            res = MISAlgorithm(rt, g).run()
        except ReproError:
            # Losing protocol messages may break invariants mid-run: an
            # exception is an acceptable, *loud* outcome.
            assert rt.net.stats.dropped > 0
            return
        # If it completed, the pressure must be visible...
        assert rt.net.stats.dropped > 0
        # ...and if the output happens to be invalid, the checker says so
        # (we do not require validity under a broken network, only that
        # nothing pretends the run was clean).
        seq.is_maximal_independent_set(g, res.members)

    def test_aggregation_under_drops_deviates_or_completes(self):
        from repro.primitives import SUM, AggregationProblem

        rt = runtime(32, Enforcement.DROP, capacity_multiplier=0.5)
        prob = AggregationProblem(
            memberships={u: {0: 1} for u in range(32)},
            targets={0: 0},
            fn=SUM,
        )
        try:
            out = rt.aggregation(prob)
        except ReproError:
            assert rt.net.stats.dropped > 0
            return
        if rt.net.stats.dropped:
            # value may be < 32 because packets were lost — the dropped
            # counter explains the deviation.
            assert out.values.get(0, 0) <= 32
        else:
            assert out.values[0] == 32
