"""The keyed Multi-Aggregation extension (Appendix B.5's remark: receivers
can get aggregates "corresponding to distinct aggregations")."""

import pytest

from repro.primitives import MAX, MIN, SUM
from tests.conftest import make_runtime


def build_classed_groups(rt, classes, groups_per_class, members_per_group=2):
    """Groups keyed ('cls', g); member u joins several classes' groups."""
    memberships = {}
    gid = 0
    for cls in classes:
        for _ in range(groups_per_class):
            for j in range(members_per_group):
                u = (gid * members_per_group + j + 1) % rt.n
                memberships.setdefault(u, []).append((cls, gid))
            gid += 1
    trees = rt.multicast_setup(memberships)
    return trees, memberships


class TestKeyedMultiAggregation:
    def test_per_class_sums(self):
        rt = make_runtime(24, seed=5)
        trees, memberships = build_classed_groups(rt, ["even", "odd"], 6)
        all_groups = {g for gs in memberships.values() for g in gs}
        packets = {grp: grp[1] for grp in all_groups}
        sources = {grp: 0 for grp in all_groups}
        out = rt.multi_aggregation(
            trees, packets, sources, SUM, result_key=lambda grp: grp[0]
        )
        assert rt.net.stats.violation_count == 0
        expected: dict[int, dict[str, int]] = {}
        for u, gs in memberships.items():
            for cls, g in gs:
                expected.setdefault(u, {}).setdefault(cls, 0)
                expected[u][cls] += g
        for u in memberships:
            assert out.keyed.get(u, {}) == expected[u]
        assert out.values == {}

    def test_unkeyed_mode_unchanged(self):
        rt = make_runtime(16, seed=6)
        trees, memberships = build_classed_groups(rt, ["x"], 4)
        groups = {g for gs in memberships.values() for g in gs}
        packets = {grp: grp[1] + 10 for grp in groups}
        out = rt.multi_aggregation(
            trees, packets, {grp: 0 for grp in groups}, MIN
        )
        assert out.keyed == {}
        for u, gs in memberships.items():
            assert out.values[u] == min(g + 10 for _, g in gs)

    def test_many_keys_per_member_strict(self):
        """A member of groups in many classes receives one aggregate per
        class; final deliveries must batch within capacity."""
        rt = make_runtime(32, seed=7)
        classes = [f"c{i}" for i in range(10)]
        memberships = {1: [(c, i) for i, c in enumerate(classes)]}
        trees = rt.multicast_setup(memberships)
        groups = memberships[1]
        packets = {grp: grp[1] * 2 for grp in groups}
        out = rt.multi_aggregation(
            trees, packets, {grp: 0 for grp in groups}, MAX,
            result_key=lambda grp: grp[0],
        )
        assert rt.net.stats.violation_count == 0
        assert out.keyed[1] == {c: i * 2 for i, c in enumerate(classes)}

    def test_keys_do_not_mix(self):
        """Same member, two classes with overlapping values: MIN per class
        stays separate."""
        rt = make_runtime(16, seed=8)
        memberships = {3: [("a", 0), ("a", 1), ("b", 2)]}
        trees = rt.multicast_setup(memberships)
        packets = {("a", 0): 5, ("a", 1): 9, ("b", 2): 1}
        out = rt.multi_aggregation(
            trees, packets, {g: 0 for g in packets}, MIN,
            result_key=lambda grp: grp[0],
        )
        assert out.keyed[3] == {"a": 5, "b": 1}
