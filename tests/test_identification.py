"""The distributed Identification Algorithm (Section 4.1)."""

import pytest

from repro.algorithms.identification import identification_family, run_identification
from repro.graphs import generators
from tests.conftest import make_runtime


def setup_case(g, playing, seed=1, s=7, q=256):
    """Learners = everyone not playing; playing nodes consider all their
    non-playing neighbours potentially learning."""
    rt = make_runtime(g.n, seed=seed)
    fam = identification_family(rt, s, q, tag="fam")
    playing = set(playing)
    learners = [u for u in range(g.n) if u not in playing]
    candidates = {u: list(g.neighbors(u)) for u in learners}
    potential = {
        v: [w for w in g.neighbors(v) if w not in playing] for v in playing
    }
    return rt, fam, learners, candidates, potential, playing


class TestIdentification:
    def check(self, g, playing, seed=1, **kw):
        rt, fam, learners, candidates, potential, playing = setup_case(
            g, playing, seed=seed, **kw
        )
        res = run_identification(rt, g, learners, candidates, potential, fam)
        assert rt.net.stats.violation_count == 0
        for u in learners:
            if u in res.unsuccessful:
                continue
            expected_red = sorted(v for v in g.neighbors(u) if v not in playing)
            assert sorted(res.red_neighbors[u]) == expected_red
        return res

    def test_no_players_everything_red(self):
        g = generators.cycle(12)
        res = self.check(g, playing=[])
        assert not res.unsuccessful

    def test_all_neighbors_playing_nothing_red(self):
        g = generators.star(12)
        res = self.check(g, playing=range(1, 12))
        assert not res.unsuccessful
        assert res.red_neighbors[0] == []

    def test_mixed_playing(self):
        g = generators.grid(4, 4)
        res = self.check(g, playing=[0, 3, 5, 10, 15])
        assert not res.unsuccessful

    def test_forest_union(self):
        g = generators.forest_union(20, 2, seed=3)
        res = self.check(g, playing=[u for u in range(20) if u % 3 == 0])
        assert not res.unsuccessful

    def test_tiny_q_yields_unsuccessful_not_wrong(self):
        """Starved of trials, the algorithm must degrade to 'unsuccessful',
        never to wrong identifications."""
        g = generators.complete(10)
        rt, fam, learners, candidates, potential, playing = setup_case(
            g, playing=[0, 1], s=4, q=6
        )
        res = run_identification(rt, g, learners, candidates, potential, fam)
        for u, reds in res.red_neighbors.items():
            true_red = {v for v in g.neighbors(u) if v not in playing}
            assert set(reds) <= true_red

    def test_isolated_learner(self):
        from repro import InputGraph

        g = InputGraph(6, [(1, 2)])
        res = self.check(g, playing=[1])
        assert res.red_neighbors[0] == []
        assert res.red_neighbors[2] == []  # its only neighbour plays

    def test_rounds_charged(self):
        g = generators.cycle(16)
        rt, fam, learners, candidates, potential, playing = setup_case(
            g, playing=[0, 4, 8]
        )
        before = rt.net.round_index
        run_identification(rt, g, learners, candidates, potential, fam)
        assert rt.net.round_index > before
