"""Overlay bootstrap from random contacts (Section 6's closing remark)."""

import math

import pytest

from repro.errors import ProtocolError
from repro.overlay import (
    KnowledgeTracker,
    bootstrap_aggregation_tree,
    random_contact_lists,
    tree_aggregate_broadcast,
)
from repro.primitives import MAX, MIN, SUM
from tests.conftest import make_runtime


class TestContacts:
    def test_counts_and_range(self):
        contacts = random_contact_lists(64, 1.5, seed=1)
        k = math.ceil(1.5 * 6)
        for u, lst in enumerate(contacts):
            assert len(lst) == k
            assert u not in lst
            assert len(set(lst)) == len(lst)

    def test_deterministic(self):
        assert random_contact_lists(32, 1.0, seed=3) == random_contact_lists(32, 1.0, seed=3)

    def test_small_n(self):
        contacts = random_contact_lists(2, 1.0, seed=0)
        assert contacts == [[1], [0]]


class TestKnowledgeTracker:
    def test_initial_knowledge(self):
        t = KnowledgeTracker(4, [[1], [2], [3], [0]])
        t.check_send(0, 1)  # fine
        with pytest.raises(ProtocolError):
            t.check_send(0, 2)  # never introduced

    def test_learning(self):
        t = KnowledgeTracker(4, [[1], [2], [3], [0]])
        t.learn(0, 3)
        t.check_send(0, 3)


class TestBootstrap:
    def test_elects_minimum_and_builds_tree(self):
        rt = make_runtime(64, seed=5)
        contacts = random_contact_lists(64, 2.0, seed=7)
        res = bootstrap_aggregation_tree(rt, contacts)
        assert res.leader == 0
        assert res.parent[0] is None
        assert all(res.parent[u] is not None for u in range(1, 64))
        assert rt.net.stats.violation_count == 0

    def test_depth_logarithmic(self):
        for n in (32, 128, 512):
            rt = make_runtime(n, seed=5, strict=False)
            contacts = random_contact_lists(n, 2.0, seed=7)
            res = bootstrap_aggregation_tree(rt, contacts)
            assert res.depth <= 3 * math.log2(n)

    def test_convergence_round_logarithmic(self):
        rt = make_runtime(256, seed=5, strict=False)
        contacts = random_contact_lists(256, 2.0, seed=9)
        res = bootstrap_aggregation_tree(rt, contacts)
        assert res.converged_round <= 3 * math.log2(256)

    def test_parents_come_from_contacts_or_introductions(self):
        """The introduction rule: parent pointers are senders, which the
        tracker verified; re-run raises if any send was unauthorized —
        covered by construction, so just confirm the tree is consistent."""
        rt = make_runtime(48, seed=2)
        contacts = random_contact_lists(48, 2.0, seed=3)
        res = bootstrap_aggregation_tree(rt, contacts)
        for u in range(1, 48):
            p = res.parent[u]
            # u's parent sent to u, so u must be in parent's contact list
            assert u in contacts[p]

    def test_disconnected_contacts_detected(self):
        # One contact per node with a deliberately split contact digraph.
        contacts = [[(u + 1) % 8 if u < 8 else 8 + (u + 1) % 8] for u in range(16)]
        # nodes 8..15 only know each other: min-flood cannot deliver 0.
        contacts = [
            [(u + 1) % 8] if u < 8 else [8 + ((u + 1 - 8) % 8)] for u in range(16)
        ]
        rt = make_runtime(16, seed=1, strict=False)
        with pytest.raises(ProtocolError):
            bootstrap_aggregation_tree(rt, contacts)

    def test_levels_partition_nodes(self):
        rt = make_runtime(40, seed=4)
        contacts = random_contact_lists(40, 2.0, seed=5)
        res = bootstrap_aggregation_tree(rt, contacts)
        flat = [u for lvl in res.tree_levels() for u in lvl]
        assert sorted(flat) == list(range(40))


class TestTreeAggregation:
    def setup_tree(self, n=64, seed=5):
        rt = make_runtime(n, seed=seed)
        contacts = random_contact_lists(n, 2.0, seed=seed + 1)
        tree = bootstrap_aggregation_tree(rt, contacts)
        return rt, tree

    def test_sum_matches_reference(self):
        rt, tree = self.setup_tree()
        total = tree_aggregate_broadcast(rt, tree, {u: u for u in range(64)}, SUM)
        assert total == sum(range(64))
        assert rt.net.stats.violation_count == 0

    def test_min_max(self):
        rt, tree = self.setup_tree()
        assert tree_aggregate_broadcast(rt, tree, {5: 50, 9: 9, 60: 99}, MIN) == 9
        assert tree_aggregate_broadcast(rt, tree, {5: 50, 9: 9, 60: 99}, MAX) == 99

    def test_empty_inputs(self):
        rt, tree = self.setup_tree(32)
        assert tree_aggregate_broadcast(rt, tree, {}, SUM) is None

    def test_rounds_linear_in_depth(self):
        rt, tree = self.setup_tree()
        before = rt.net.round_index
        tree_aggregate_broadcast(rt, tree, {u: 1 for u in range(64)}, SUM)
        rounds = rt.net.round_index - before
        levels = len(tree.tree_levels())
        assert rounds == 2 * (levels - 1)

    def test_comparable_to_butterfly_ab(self):
        """The knowledge-free A&B lands in the same O(log n) regime as
        Theorem 2.2's butterfly version."""
        rt, tree = self.setup_tree(128, seed=3)
        before = rt.net.round_index
        tree_aggregate_broadcast(rt, tree, {u: 1 for u in range(128)}, SUM)
        tree_rounds = rt.net.round_index - before

        rt2 = make_runtime(128, seed=3)
        before = rt2.net.round_index
        rt2.aggregate_and_broadcast({u: 1 for u in range(128)}, SUM)
        bf_rounds = rt2.net.round_index - before

        assert tree_rounds <= 4 * bf_rounds
