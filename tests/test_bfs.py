"""Distributed BFS vs the sequential oracle."""

import pytest

from repro.algorithms import BFSAlgorithm
from repro.baselines.sequential import bfs_tree
from repro.graphs import generators, properties
from tests.conftest import make_runtime


def run_bfs(g, source=0, seed=1, **extras):
    rt = make_runtime(g.n, seed=seed, **extras)
    res = BFSAlgorithm(rt, g).run(source)
    return rt, res


class TestDistances:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: generators.path(16),
            lambda: generators.cycle(15),
            lambda: generators.grid(4, 5),
            lambda: generators.star(20),
            lambda: generators.random_tree(24, seed=2),
            lambda: generators.forest_union(24, 2, seed=3),
            lambda: generators.hypercube(4),
        ],
        ids=["path", "cycle", "grid", "star", "tree", "forest2", "hypercube"],
    )
    def test_distances_match_oracle(self, maker):
        g = maker()
        rt, res = run_bfs(g)
        expected, _ = bfs_tree(g, 0)
        assert res.dist == expected
        assert rt.net.stats.violation_count == 0

    def test_parents_are_smallest_shortest_predecessors(self):
        g = generators.grid(4, 4)
        rt, res = run_bfs(g)
        dist, _ = bfs_tree(g, 0)
        for v in range(16):
            if v == 0:
                assert res.parent[v] is None
                continue
            p = res.parent[v]
            assert p in g.neighbors(v)
            assert dist[p] + 1 == dist[v]
            # smallest-id predecessor (MIN aggregation tie-breaking)
            assert p == min(
                u for u in g.neighbors(v) if dist[u] is not None and dist[u] + 1 == dist[v]
            )

    def test_nonzero_source(self):
        g = generators.path(12)
        rt, res = run_bfs(g, source=6)
        expected, _ = bfs_tree(g, 6)
        assert res.dist == expected

    def test_unreachable_nodes_stay_none(self):
        g = generators.disjoint_cliques(12, 4)
        rt, res = run_bfs(g, source=0)
        for v in range(12):
            if v < 4:
                assert res.dist[v] is not None
            else:
                assert res.dist[v] is None
                assert res.parent[v] is None

    def test_bad_source_rejected(self):
        g = generators.path(8)
        rt = make_runtime(8)
        with pytest.raises(ValueError):
            BFSAlgorithm(rt, g).run(8)


class TestCostShape:
    def test_phases_equal_eccentricity_plus_one(self):
        g = generators.path(20)
        rt, res = run_bfs(g)
        assert res.phases == properties.eccentricity(g, 0) + 1

    def test_rounds_grow_with_diameter(self):
        short = generators.grid(3, 9)  # D = 10
        long = generators.path(27)  # D = 26
        _, r_short = run_bfs(short, extras_marker=None) if False else run_bfs(short)
        _, r_long = run_bfs(long)
        assert r_long.rounds > r_short.rounds

    def test_broadcast_trees_reusable_across_sources(self):
        from repro.algorithms import build_broadcast_trees

        g = generators.grid(4, 4)
        rt = make_runtime(16)
        bt = build_broadcast_trees(rt, g)
        for s in (0, 5, 15):
            res = BFSAlgorithm(rt, g, broadcast_trees=bt).run(s)
            expected, _ = bfs_tree(g, s)
            assert res.dist == expected
        assert rt.net.stats.violation_count == 0
