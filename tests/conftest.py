"""Shared fixtures for the test-suite.

Conventions:

* ``strict_config`` is the default for protocol tests — any capacity or
  message-size violation fails the test immediately, certifying that the
  implementations stay inside the model at the configured constants.
* Graph fixtures are deterministic (fixed seeds) so failures reproduce.
* ``fast_config`` uses lightweight synchronization for tests that only
  check outputs, not message-level fidelity.

Engine replay
-------------
``pytest --engine=batched`` (or ``both``) replays the suite against the
batched round engine: an autouse fixture swaps the process-wide default
engine, which every config that leaves ``NCCConfig.engine`` unset picks up.
Because the engines are certified observably identical
(``tests/test_engine_parity.py``), every test must pass unchanged under
either engine.  Tests that genuinely depend on one implementation pin it
with ``@pytest.mark.engine("reference")`` / ``("batched")``; under a
mismatching ``--engine`` they are skipped rather than silently re-pointed.
"""

from __future__ import annotations

import pytest

import repro.config
from repro import Enforcement, NCCConfig, NCCRuntime
from repro.config import ENGINE_CHOICES, LAZY_ENGINES
from repro.graphs import generators, weights


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--engine",
        action="store",
        default="reference",
        choices=[*ENGINE_CHOICES, *LAZY_ENGINES, "both"],
        help="round engine to replay the suite under "
             "(both = parametrize every test over the built-in engines)",
    )
    parser.addoption(
        "--tracing",
        action="store_true",
        default=False,
        help="replay the suite with a live telemetry tracer installed "
             "(certifies the instrumentation hooks never change behavior)",
    )


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "engine(name): pin a test to one round engine; skipped under a "
        "mismatching --engine run",
    )
    if config.getoption("--engine") == "both":
        # Parametrizing the autouse engine fixture gives class-based
        # Hypothesis tests one class instance per engine, which trips the
        # differing_executors health check.  The test classes here are
        # stateless namespaces, so the check is a false positive under
        # replay; suppress it for this mode only.
        try:
            from hypothesis import HealthCheck, settings
        except ImportError:  # pragma: no cover - hypothesis always present
            return
        settings.register_profile(
            "engine-both",
            suppress_health_check=[HealthCheck.differing_executors],
        )
        settings.load_profile("engine-both")


def pytest_generate_tests(metafunc: pytest.Metafunc) -> None:
    opt = metafunc.config.getoption("--engine")
    if opt == "reference":
        return  # default run: no parametrization, test ids unchanged
    if "_round_engine" in metafunc.fixturenames:
        modes = list(ENGINE_CHOICES) if opt == "both" else [opt]
        metafunc.parametrize(
            "_round_engine", modes, ids=[f"engine-{m}" for m in modes], indirect=True
        )


@pytest.fixture(autouse=True)
def _tracing_replay(request: pytest.FixtureRequest):
    """Under ``--tracing``, run every test with a fresh tracer installed.

    Tracing is observational by contract (ROADMAP: canonical output is a
    pure function of the spec); replaying the suite with the hooks live
    certifies no instrumented site leaks into behavior.
    """
    if not request.config.getoption("--tracing"):
        yield None
        return
    from repro.telemetry import Tracer, install_tracer, uninstall_tracer

    tracer = Tracer(label=request.node.name, scope="pytest")
    previous = install_tracer(tracer)
    try:
        yield tracer
    finally:
        uninstall_tracer(previous)


@pytest.fixture(autouse=True)
def _round_engine(request: pytest.FixtureRequest):
    """Route unset ``NCCConfig.engine`` fields to the engine under test."""
    mode = getattr(request, "param", None)
    marker = request.node.get_closest_marker("engine")
    if marker is not None:
        pinned = marker.args[0]
        if mode is not None and mode != pinned:
            pytest.skip(f"test pinned to round engine {pinned!r}")
        mode = pinned
    mode = mode or "reference"
    previous = repro.config.set_default_engine(mode)
    try:
        yield mode
    finally:
        repro.config.set_default_engine(previous)


@pytest.fixture
def strict_config() -> NCCConfig:
    return NCCConfig(seed=42, enforcement=Enforcement.STRICT)


@pytest.fixture
def count_config() -> NCCConfig:
    return NCCConfig(seed=42, enforcement=Enforcement.COUNT)


@pytest.fixture
def fast_config() -> NCCConfig:
    return NCCConfig(
        seed=42,
        enforcement=Enforcement.COUNT,
        extras={"lightweight_sync": True},
    )


@pytest.fixture
def rt16(strict_config) -> NCCRuntime:
    return NCCRuntime(16, strict_config)


@pytest.fixture
def rt20(strict_config) -> NCCRuntime:
    """Non-power-of-two size: exercises the partner-node paths."""
    return NCCRuntime(20, strict_config)


@pytest.fixture
def rt32(strict_config) -> NCCRuntime:
    return NCCRuntime(32, strict_config)


@pytest.fixture
def small_tree():
    return generators.random_tree(24, seed=5)


@pytest.fixture
def small_grid():
    return generators.grid(5, 5)


@pytest.fixture
def small_star():
    return generators.star(24)


@pytest.fixture
def small_forest2():
    return generators.forest_union(24, 2, seed=9)


@pytest.fixture
def weighted_random():
    g = generators.random_connected(24, extra_edge_prob=0.12, seed=3)
    return weights.with_random_weights(g, seed=4)


def make_runtime(n: int, *, seed: int = 42, strict: bool = True, **extras) -> NCCRuntime:
    cfg = NCCConfig(
        seed=seed,
        enforcement=Enforcement.STRICT if strict else Enforcement.COUNT,
        extras=extras,
    )
    return NCCRuntime(n, cfg)
