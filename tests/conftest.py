"""Shared fixtures for the test-suite.

Conventions:

* ``strict_config`` is the default for protocol tests — any capacity or
  message-size violation fails the test immediately, certifying that the
  implementations stay inside the model at the configured constants.
* Graph fixtures are deterministic (fixed seeds) so failures reproduce.
* ``fast_config`` uses lightweight synchronization for tests that only
  check outputs, not message-level fidelity.
"""

from __future__ import annotations

import pytest

from repro import Enforcement, NCCConfig, NCCRuntime
from repro.graphs import generators, weights


@pytest.fixture
def strict_config() -> NCCConfig:
    return NCCConfig(seed=42, enforcement=Enforcement.STRICT)


@pytest.fixture
def count_config() -> NCCConfig:
    return NCCConfig(seed=42, enforcement=Enforcement.COUNT)


@pytest.fixture
def fast_config() -> NCCConfig:
    return NCCConfig(
        seed=42,
        enforcement=Enforcement.COUNT,
        extras={"lightweight_sync": True},
    )


@pytest.fixture
def rt16(strict_config) -> NCCRuntime:
    return NCCRuntime(16, strict_config)


@pytest.fixture
def rt20(strict_config) -> NCCRuntime:
    """Non-power-of-two size: exercises the partner-node paths."""
    return NCCRuntime(20, strict_config)


@pytest.fixture
def rt32(strict_config) -> NCCRuntime:
    return NCCRuntime(32, strict_config)


@pytest.fixture
def small_tree():
    return generators.random_tree(24, seed=5)


@pytest.fixture
def small_grid():
    return generators.grid(5, 5)


@pytest.fixture
def small_star():
    return generators.star(24)


@pytest.fixture
def small_forest2():
    return generators.forest_union(24, 2, seed=9)


@pytest.fixture
def weighted_random():
    g = generators.random_connected(24, extra_edge_prob=0.12, seed=3)
    return weights.with_random_weights(g, seed=4)


def make_runtime(n: int, *, seed: int = 42, strict: bool = True, **extras) -> NCCRuntime:
    cfg = NCCConfig(
        seed=seed,
        enforcement=Enforcement.STRICT if strict else Enforcement.COUNT,
        extras=extras,
    )
    return NCCRuntime(n, cfg)
