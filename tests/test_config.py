"""NCCConfig: validation, derived model quantities, enforcement parsing."""

import math

import pytest

from repro import ConfigurationError, Enforcement, NCCConfig


class TestValidation:
    def test_defaults_are_valid(self):
        cfg = NCCConfig()
        assert cfg.capacity_multiplier > 0
        assert cfg.enforcement is Enforcement.COUNT

    def test_rejects_nonpositive_capacity_multiplier(self):
        with pytest.raises(ConfigurationError):
            NCCConfig(capacity_multiplier=0)
        with pytest.raises(ConfigurationError):
            NCCConfig(capacity_multiplier=-1.5)

    def test_rejects_nonpositive_bits_multiplier(self):
        with pytest.raises(ConfigurationError):
            NCCConfig(bits_multiplier=0)

    def test_rejects_nonpositive_max_rounds(self):
        with pytest.raises(ConfigurationError):
            NCCConfig(max_rounds=0)

    def test_rejects_small_identification_s(self):
        # Lemma 4.2 needs s >= 4.
        with pytest.raises(ConfigurationError):
            NCCConfig(identification_s_constant=3)

    def test_rejects_bad_q_constant(self):
        with pytest.raises(ConfigurationError):
            NCCConfig(identification_q_constant=0)

    def test_rejects_nonpositive_epsilon(self):
        with pytest.raises(ConfigurationError):
            NCCConfig(coloring_epsilon=0)

    def test_enforcement_accepts_string(self):
        cfg = NCCConfig(enforcement="strict")
        assert cfg.enforcement is Enforcement.STRICT

    def test_enforcement_rejects_unknown_string(self):
        with pytest.raises(ValueError):
            NCCConfig(enforcement="yolo")


class TestDerivedQuantities:
    @pytest.mark.parametrize("n,expected", [(2, 1), (3, 2), (4, 2), (5, 3), (1024, 10)])
    def test_log2n_ceils(self, n, expected):
        assert NCCConfig().log2n(n) == expected

    def test_log2n_floor_of_one(self):
        assert NCCConfig().log2n(1) == 1

    def test_capacity_scales_with_log(self):
        cfg = NCCConfig(capacity_multiplier=4.0)
        assert cfg.capacity(16) == 16
        assert cfg.capacity(1024) == 40

    def test_capacity_minimum_one(self):
        cfg = NCCConfig(capacity_multiplier=0.1)
        assert cfg.capacity(2) >= 1

    def test_message_bits_floor(self):
        cfg = NCCConfig(bits_multiplier=8.0)
        assert cfg.message_bits(2) >= 8
        assert cfg.message_bits(256) == 64

    def test_batch_size_is_ceil_log(self):
        cfg = NCCConfig()
        assert cfg.batch_size(256) == 8
        assert cfg.batch_size(1) == 1

    def test_capacity_monotone_in_n(self):
        cfg = NCCConfig()
        caps = [cfg.capacity(n) for n in (2, 8, 64, 512, 4096)]
        assert caps == sorted(caps)


class TestWith:
    def test_with_replaces_field(self):
        cfg = NCCConfig(seed=1)
        cfg2 = cfg.with_(seed=7)
        assert cfg2.seed == 7
        assert cfg.seed == 1  # original untouched (frozen)

    def test_with_validates(self):
        with pytest.raises(ConfigurationError):
            NCCConfig().with_(capacity_multiplier=-1)

    def test_frozen(self):
        cfg = NCCConfig()
        with pytest.raises(Exception):
            cfg.seed = 9  # type: ignore[misc]
