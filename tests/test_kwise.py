"""k-wise independent hash family: determinism, range, distribution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.kwise import MERSENNE_61, KWiseHash, hash_family


class TestDeterminism:
    def test_same_parameters_same_function(self):
        a = KWiseHash(4, 100, seed=7)
        b = KWiseHash(4, 100, seed=7)
        assert all(a(x) == b(x) for x in range(200))
        assert a == b
        assert hash(a) == hash(b)

    def test_different_seeds_differ_somewhere(self):
        a = KWiseHash(4, 1 << 20, seed=1)
        b = KWiseHash(4, 1 << 20, seed=2)
        assert any(a(x) != b(x) for x in range(50))

    def test_family_members_distinct(self):
        fam = hash_family(8, 4, 1 << 20, seed=3)
        assert len(fam) == 8
        for i in range(8):
            for j in range(i + 1, 8):
                assert any(fam[i](x) != fam[j](x) for x in range(50))


class TestRange:
    @given(st.integers(min_value=0, max_value=2**80), st.integers(min_value=1, max_value=10**6))
    @settings(max_examples=200)
    def test_output_in_range(self, key, range_size):
        h = KWiseHash(5, range_size, seed=11)
        assert 0 <= h(key) < range_size

    def test_bit_is_binary(self):
        h = KWiseHash(5, 1000, seed=4)
        assert set(h.bit(x) for x in range(500)) <= {0, 1}

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            KWiseHash(0, 10, seed=1)
        with pytest.raises(ValueError):
            KWiseHash(2, 0, seed=1)


class TestDistribution:
    def test_roughly_uniform_buckets(self):
        h = KWiseHash(8, 16, seed=13)
        counts = [0] * 16
        samples = 4096
        for x in range(samples):
            counts[h(x)] += 1
        expected = samples / 16
        for c in counts:
            assert 0.5 * expected < c < 1.5 * expected

    def test_bits_roughly_balanced(self):
        h = KWiseHash(8, 2, seed=17)
        ones = sum(h.bit(x) for x in range(4096))
        assert 1700 < ones < 2400

    def test_pairwise_collisions_near_expected(self):
        h = KWiseHash(4, 64, seed=23)
        vals = [h(x) for x in range(512)]
        collisions = sum(
            1 for i in range(len(vals)) for j in range(i + 1, len(vals)) if vals[i] == vals[j]
        )
        expected = 512 * 511 / 2 / 64
        assert 0.6 * expected < collisions < 1.4 * expected


class TestModelHelpers:
    def test_for_model_independence_degree(self):
        h = KWiseHash.for_model(1024, 100, seed=1)
        assert h.k == 11  # ceil(log2 1024) + 1

    def test_for_model_min_degree(self):
        assert KWiseHash.for_model(2, 10, seed=1).k >= 2

    def test_random_bits_counts_coefficients(self):
        h = KWiseHash(6, 100, seed=1)
        assert h.random_bits() == 6 * 61

    def test_large_keys_reduced_mod_prime(self):
        h = KWiseHash(3, 1000, seed=5)
        assert h(MERSENNE_61) == h(0)
        assert h(MERSENNE_61 + 5) == h(5)
