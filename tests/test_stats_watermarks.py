"""Watermark audit: ``max_sent/received_per_round`` on every delivery path.

Satellite of the telemetry issue: the per-round watermark statistics
must be maintained by *every* delivery path — the reference engine's
canonical walks, the batched engine's object and deferred typed-column
deliveries, the whole-round typed bulk, and the sharded block shuffle —
and agree with an independent recomputation from the submitted traffic.
A path that forgets the watermark would silently under-report peak load
in diagnostics while every other observable stays correct, so the pin
here is recomputation, not engine-vs-engine diffing alone.
"""

from collections import Counter

import pytest

from repro import Enforcement, NCCConfig, NCCNetwork
from repro.ncc.message import BatchBuilder, Message
from repro.ncc.sharded import CUTOFF_EXTRA

np = pytest.importorskip("numpy")

N = 32

#: Three rounds with deliberately different skew: a fan-out round (one
#: hot sender), a fan-in round (one hot receiver), and a balanced
#: permutation round.  (src, dst) pairs; payloads derived below.
ROUNDS = [
    [(0, d) for d in range(1, 6)],
    [(s, 7) for s in range(1, 7)],
    [(s, (s + 1) % N) for s in range(N)],
]


def expected_watermarks(rounds):
    """Independent recomputation straight from the submitted pairs."""
    max_sent = max_recv = 0
    for pairs in rounds:
        sent = Counter(s for s, _ in pairs)
        recv = Counter(d for _, d in pairs)
        max_sent = max(max_sent, max(sent.values()))
        max_recv = max(max_recv, max(recv.values()))
    return max_sent, max_recv


def _network(engine):
    extras = {CUTOFF_EXTRA: 1} if engine == "sharded" else {}
    cfg = NCCConfig(
        seed=1, enforcement=Enforcement.COUNT, engine=engine,
        shards=2 if engine == "sharded" else 0, extras=extras,
    )
    return NCCNetwork(N, cfg)


def _payload(s, d):
    return s * 1000 + d


def _submit(nw, pairs, form):
    if form == "list":
        nw.exchange([Message(s, d, _payload(s, d)) for s, d in pairs])
    elif form == "mapping":
        by_src = {}
        for s, d in pairs:
            by_src.setdefault(s, []).append(Message(s, d, _payload(s, d)))
        nw.exchange(by_src)
    elif form == "builder-object":
        b = BatchBuilder()
        for s, d in pairs:
            b.add(s, d, _payload(s, d))
        nw.exchange(b)
    elif form == "builder-typed":
        b = BatchBuilder(kind="t", dtype=np.int64)
        by_src = {}
        for s, d in pairs:
            by_src.setdefault(s, []).append(d)
        for s in sorted(by_src):
            dsts = by_src[s]
            b.add_array(s, dsts, [_payload(s, d) for d in dsts])
        nw.exchange(b)
    elif form == "typed-bulk":
        b = BatchBuilder(kind="t", dtype=np.int64)
        src = np.asarray([s for s, _ in pairs], dtype=np.int64)
        dst = np.asarray([d for _, d in pairs], dtype=np.int64)
        b.add_arrays(src, dst, src * 1000 + dst)
        nw.exchange(b)
    else:  # pragma: no cover - parametrization guard
        raise AssertionError(form)


ENGINES = ("reference", "batched", "sharded")
FORMS = ("list", "mapping", "builder-object", "builder-typed", "typed-bulk")


class TestWatermarkRecomputation:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("form", FORMS)
    def test_watermarks_match_submitted_traffic(self, engine, form):
        nw = _network(engine)
        for pairs in ROUNDS:
            _submit(nw, pairs, form)
        want_sent, want_recv = expected_watermarks(ROUNDS)
        assert nw.stats.max_sent_per_round == want_sent, (engine, form)
        assert nw.stats.max_received_per_round == want_recv, (engine, form)

    @pytest.mark.parametrize("form", FORMS)
    def test_engines_agree_on_watermarks(self, form):
        values = set()
        for engine in ENGINES:
            nw = _network(engine)
            for pairs in ROUNDS:
                _submit(nw, pairs, form)
            values.add(
                (nw.stats.max_sent_per_round, nw.stats.max_received_per_round)
            )
        assert len(values) == 1, values

    def test_summary_carries_watermarks(self):
        nw = _network("reference")
        _submit(nw, ROUNDS[0], "list")
        summary = nw.stats.summary()
        assert summary["max_sent_per_round"] == 5
        assert summary["max_received_per_round"] == 1
