"""Direct-exchange helpers: windows, pinned rounds, batching."""

import pytest

from repro import Enforcement, NCCConfig, NCCNetwork
from repro.primitives.direct import batched_window, send_direct, spread_exchange


def net(n=32):
    return NCCNetwork(n, NCCConfig(seed=2, enforcement=Enforcement.STRICT))


class TestSendDirect:
    def test_one_round_delivery(self):
        nw = net()
        inbox = send_direct(nw, [(0, 1, "a"), (2, 3, "b")])
        assert inbox[1][0].payload == "a"
        assert nw.round_index == 1


class TestSpreadExchange:
    def test_window_fully_elapses(self):
        nw = net()
        spread_exchange(nw, [(0, 1, "x")], window=5)
        assert nw.round_index == 5

    def test_all_messages_arrive(self):
        nw = net()
        sends = [(u, (u + 1) % 32, ("p", u)) for u in range(32)]
        inbox = spread_exchange(nw, sends, window=4)
        total = sum(len(v) for v in inbox.values())
        assert total == 32

    def test_round_of_pins_rounds(self):
        nw = net()
        # all pinned to round 2: a single busy round inside the window
        seen_rounds = []
        observer = lambda r, per: seen_rounds.append((r, sum(len(m) for m in per.values())))
        nw.round_observer = observer
        spread_exchange(
            nw,
            [(u, 0, "x") for u in range(5)],
            window=4,
            round_of=lambda idx, send: 2,
        )
        busy = {r: c for r, c in seen_rounds if c}
        assert busy == {2: 5}

    def test_rng_spreading_respects_capacity(self):
        import random

        nw = net(64)
        # 200 messages to one destination over a window big enough that the
        # per-round load stays within capacity w.h.p.
        sends = [(u % 64, 7, ("p", i)) for i, u in enumerate(range(200))]
        window = 16
        inbox = spread_exchange(nw, sends, window, rng=random.Random(5))
        assert sum(len(v) for v in inbox.values()) == 200
        assert nw.stats.violation_count == 0

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            spread_exchange(net(), [], window=0)

    def test_deterministic_stripe_fallback(self):
        nw = net()
        inbox = spread_exchange(nw, [(0, 1, i) for i in range(6)], window=3)
        assert len(inbox[1]) == 6


class TestBatchedWindow:
    def test_values(self):
        assert batched_window(0, 4) == 1
        assert batched_window(1, 4) == 1
        assert batched_window(4, 4) == 1
        assert batched_window(5, 4) == 2
        assert batched_window(100, 1) == 100

    def test_zero_batch_guard(self):
        assert batched_window(10, 0) == 10
