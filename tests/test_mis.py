"""Distributed MIS: validity, maximality, determinism."""

import pytest

from repro.algorithms import MISAlgorithm
from repro.baselines.sequential import is_independent_set, is_maximal_independent_set
from repro.graphs import generators
from tests.conftest import make_runtime


def run_mis(g, seed=1, **extras):
    rt = make_runtime(g.n, seed=seed, **extras)
    res = MISAlgorithm(rt, g).run()
    return rt, res


class TestValidity:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: generators.path(16),
            lambda: generators.cycle(17),
            lambda: generators.star(20),
            lambda: generators.grid(5, 4),
            lambda: generators.random_tree(24, seed=1),
            lambda: generators.forest_union(24, 3, seed=2),
            lambda: generators.complete(10),
            lambda: generators.gnp(20, 0.2, seed=3),
        ],
        ids=["path", "cycle", "star", "grid", "tree", "forest3", "complete", "gnp"],
    )
    def test_maximal_independent(self, maker):
        g = maker()
        rt, res = run_mis(g)
        assert is_maximal_independent_set(g, res.members)
        assert rt.net.stats.violation_count == 0

    def test_isolated_nodes_always_join(self):
        from repro import InputGraph

        g = InputGraph(10, [(0, 1), (2, 3)])
        rt, res = run_mis(g)
        assert {4, 5, 6, 7, 8, 9} <= res.members

    def test_complete_graph_single_member(self):
        g = generators.complete(12)
        rt, res = run_mis(g)
        assert len(res.members) == 1

    def test_star_center_or_all_leaves(self):
        g = generators.star(16)
        rt, res = run_mis(g)
        assert res.members == {0} or res.members == set(range(1, 16))

    def test_empty_graph_everyone(self):
        from repro import InputGraph

        g = InputGraph(8, [])
        rt, res = run_mis(g)
        assert res.members == set(range(8))


class TestBehaviour:
    def test_deterministic(self):
        g = generators.forest_union(20, 2, seed=5)
        _, a = run_mis(g, seed=7)
        _, b = run_mis(g, seed=7)
        assert a.members == b.members
        assert a.rounds == b.rounds

    def test_different_seeds_may_differ_but_stay_valid(self):
        g = generators.gnp(20, 0.25, seed=8)
        for seed in range(4):
            _, res = run_mis(g, seed=seed)
            assert is_maximal_independent_set(g, res.members)

    def test_phase_count_logarithmic(self):
        g = generators.forest_union(64, 2, seed=9)
        rt, res = run_mis(g, lightweight_sync=True)
        assert res.phases <= 8 * 6 + 16

    def test_size_mismatch_rejected(self):
        rt = make_runtime(8)
        with pytest.raises(ValueError):
            MISAlgorithm(rt, generators.path(4))
