"""Differential parity harness: reference vs batched round engine.

The round engines must be *observably indistinguishable* — same algorithm
outputs, same round counts, same statistics (including the exact violation
ledger order), same delivered inboxes (content, list order, and dict
insertion order), same exceptions, and same DROP-rng draws.  This module
enforces that two ways:

* every algorithm in :mod:`repro.algorithms` runs on seeded random graphs
  under both engines in all three :class:`~repro.config.Enforcement` modes;
* a seeded fuzzer replays raw (including deliberately violating and
  malformed) exchange rounds under both engines.

Any future engine must be added to ``ENGINES`` here; any change that makes
the engines distinguishable is a bug, regardless of which engine is
"right" (see ROADMAP.md, "Engine selection").
"""

from __future__ import annotations

import random

import pytest

from repro import Enforcement, NCCConfig, NCCRuntime, ReproError
from repro.algorithms.bfs import BFSAlgorithm
from repro.algorithms.broadcast_trees import build_broadcast_trees
from repro.algorithms.coloring import ColoringAlgorithm
from repro.algorithms.components import ConnectedComponentsAlgorithm
from repro.algorithms.identification import identification_family, run_identification
from repro.algorithms.matching import MatchingAlgorithm
from repro.algorithms.mis import MISAlgorithm
from repro.algorithms.mst import MSTAlgorithm
from repro.algorithms.orientation import OrientationAlgorithm
from repro.graphs import generators, weights
from repro.ncc.message import Message, MessageBatch
from repro.ncc.network import NCCNetwork

ENGINES = ("reference", "batched")
MODES = tuple(Enforcement)
N = 20
SEED = 7


def _graph():
    return generators.forest_union(N, 2, seed=3)


def _weighted():
    return weights.with_random_weights(_graph(), seed=4)


def _run_identification(rt):
    g = _graph()
    playing = {u for u in range(g.n) if u % 3 == 0}
    fam = identification_family(rt, 7, 256, tag="parity-fam")
    learners = [u for u in range(g.n) if u not in playing]
    candidates = {u: list(g.neighbors(u)) for u in learners}
    potential = {
        v: [w for w in g.neighbors(v) if w not in playing] for v in playing
    }
    res = run_identification(rt, g, learners, candidates, potential, fam)
    return (sorted(res.red_neighbors.items()), sorted(res.unsuccessful), res.rounds)


def _run_broadcast_trees(rt):
    bt = build_broadcast_trees(rt, _graph())
    return (
        bt.setup_rounds,
        bt.orientation_rounds,
        bt.congestion(),
        bt.orientation.out_neighbors,
        bt.trees.root,
        bt.trees.leaf_members,
    )


#: name -> callable(rt) -> comparable result (dataclasses compare by value).
ALGORITHMS = {
    "mst": lambda rt: MSTAlgorithm(rt, _weighted()).run(),
    "components": lambda rt: ConnectedComponentsAlgorithm(rt, _graph()).run(),
    "orientation": lambda rt: OrientationAlgorithm(rt, _graph()).run(),
    "identification": _run_identification,
    "broadcast_trees": _run_broadcast_trees,
    "bfs": lambda rt: BFSAlgorithm(rt, _graph()).run(0),
    "mis": lambda rt: MISAlgorithm(rt, _graph()).run(),
    "matching": lambda rt: MatchingAlgorithm(rt, _graph()).run(),
    "coloring": lambda rt: ColoringAlgorithm(rt, _graph()).run(),
}


def _execute(engine: str, mode: Enforcement, run):
    """Run one algorithm under one engine; capture every observable."""
    cfg = NCCConfig(
        seed=SEED,
        enforcement=mode,
        engine=engine,
        extras={"lightweight_sync": True},
    )
    rt = NCCRuntime(N, cfg)
    result = error = None
    try:
        result = run(rt)
    except ReproError as e:  # STRICT may legitimately raise; must match too
        error = (type(e).__name__, str(e))
    return {
        "result": result,
        "error": error,
        "rounds": rt.net.round_index,
        "stats": rt.net.stats.comparable(),
    }


@pytest.mark.engine("reference")  # runs both engines itself; skip replays
class TestAlgorithmParity:
    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_algorithm_indistinguishable(self, name, mode):
        runs = {e: _execute(e, mode, ALGORITHMS[name]) for e in ENGINES}
        ref, bat = runs["reference"], runs["batched"]
        assert ref["error"] == bat["error"]
        assert ref["result"] == bat["result"]
        assert ref["rounds"] == bat["rounds"]
        assert ref["stats"] == bat["stats"]


# ----------------------------------------------------------------------
# Raw-exchange fuzzing: violating and malformed rounds
# ----------------------------------------------------------------------
def _random_round(rng: random.Random, n: int, cap: int, *, batch: bool):
    """One round of random traffic: some senders over capacity, some
    receivers hot, occasional oversized payloads."""
    out = {}
    hot = rng.randrange(n)  # attract extra traffic to one receiver
    for src in rng.sample(range(n), rng.randrange(1, n)):
        count = rng.choice((0, 1, 2, rng.randrange(1, cap + 6)))
        if not count:
            continue
        dsts, payloads = [], []
        for _ in range(count):
            dsts.append(hot if rng.random() < 0.3 else rng.randrange(n))
            if rng.random() < 0.02:
                payloads.append(tuple(range(200)))  # oversized
            else:
                payloads.append((src, rng.randrange(1 << 16)))
        if batch:
            out[src] = MessageBatch.from_columns(src, dsts, payloads, kind="fuzz")
        else:
            out[src] = [Message(src, d, p, kind="fuzz") for d, p in zip(dsts, payloads)]
    return out


def _replay(engine: str, mode: Enforcement, seed: int, *, batch: bool, n: int = 64):
    cfg = NCCConfig(seed=SEED, enforcement=mode, engine=engine)
    net = NCCNetwork(n, cfg)
    rng = random.Random(seed)
    trace = []
    for r in range(25):
        out = _random_round(rng, n, net.capacity, batch=batch)
        try:
            inboxes = net.exchange(out)
        except ReproError as e:
            trace.append(("error", type(e).__name__, str(e)))
            break
        # Order-sensitive capture: dict insertion order AND list order.
        trace.append([(d, msgs) for d, msgs in inboxes.items()])
    return trace, net.round_index, net.stats.comparable()


@pytest.mark.engine("reference")  # differential by construction
class TestExchangeFuzzParity:
    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    @pytest.mark.parametrize("batch", [False, True], ids=["plain", "batch"])
    @pytest.mark.parametrize("seed", range(6))
    def test_random_rounds_indistinguishable(self, mode, batch, seed):
        ref = _replay("reference", mode, seed, batch=batch)
        bat = _replay("batched", mode, seed, batch=batch)
        assert ref == bat

    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_malformed_src_indistinguishable(self, mode):
        """A Mapping entry whose message src disagrees with the sender key
        must raise identically in every mode and under every engine."""
        outcomes = {}
        for engine in ENGINES:
            net = NCCNetwork(16, NCCConfig(seed=1, enforcement=mode, engine=engine))
            msgs = [Message(0, d % 16, "x") for d in range(net.capacity + 3)]
            msgs[2] = Message(1, 2, "x")  # wrong src, hidden mid-group
            with pytest.raises(ValueError) as e:
                net.exchange({0: msgs})
            outcomes[engine] = (str(e.value), net.stats.comparable())
        assert outcomes["reference"] == outcomes["batched"]

    def test_huge_destination_id_rejected_not_allocated(self):
        """A single absurd dst id in a large round must raise the reference
        ValueError, not size a count table to dst.max()+1 slots."""
        outcomes = {}
        for engine in ENGINES:
            net = NCCNetwork(1024, NCCConfig(seed=1, engine=engine))
            msgs = [Message(s % 1024, (s + 1) % 1024, "x") for s in range(300)]
            msgs[150] = Message(150, 10**12, "x")
            with pytest.raises(ValueError) as e:
                net.exchange(msgs)
            outcomes[engine] = str(e.value)
        assert outcomes["reference"] == outcomes["batched"]

    def test_id_beyond_int64_rejected_identically(self):
        """An id that does not fit an int64 column must still raise the
        reference ValueError (not OverflowError) under every engine and
        for both submission forms."""
        outcomes = {}
        for engine in ENGINES:
            for batch in (False, True):
                net = NCCNetwork(1024, NCCConfig(seed=1, engine=engine))
                dsts = [(s + 1) % 1024 for s in range(300)]
                dsts[150] = 2**63
                if batch:
                    out = {0: MessageBatch.from_columns(0, dsts, ["x"] * 300)}
                else:
                    out = {0: [Message(0, d, "x") for d in dsts]}
                with pytest.raises(ValueError) as e:
                    net.exchange(out)
                outcomes[(engine, batch)] = str(e.value)
        assert len(set(outcomes.values())) == 1

    def test_from_columns_rejects_mismatched_column_lengths(self):
        """Misaligned parallel columns must error, not silently drop the
        tail of the traffic (zip truncation would corrupt accounting)."""
        with pytest.raises(ValueError):
            MessageBatch.from_columns(0, [1, 2, 3], ["a", "b"])
        with pytest.raises(ValueError):
            MessageBatch.from_columns([0, 1], [1, 2, 3], ["a", "b", "c"])

    def test_non_int_node_ids_rejected_at_message_boundary(self):
        """Float ids would be distinct inbox keys to a per-message walk but
        truncate in an int64 column — the Message contract rejects them
        before any engine can diverge."""
        with pytest.raises(TypeError, match="node ids must be ints"):
            Message(0, 2.5, "x")
        with pytest.raises(TypeError, match="node ids must be ints"):
            Message(1.5, 2, "x")
        with pytest.raises(TypeError, match="node ids must be ints"):
            MessageBatch.from_columns(0, [1, 2.5], ["a", "b"])

    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_bad_destination_indistinguishable(self, mode):
        outcomes = {}
        for engine in ENGINES:
            net = NCCNetwork(16, NCCConfig(seed=1, enforcement=mode, engine=engine))
            msgs = [Message(0, d % 16, "x") for d in range(net.capacity + 3)]
            msgs[-1] = Message(0, 99, "x")  # out-of-range dst
            with pytest.raises(ValueError) as e:
                net.exchange({0: msgs})
            outcomes[engine] = (str(e.value), net.stats.comparable())
        assert outcomes["reference"] == outcomes["batched"]
