"""Differential parity harness: reference vs batched vs sharded engine.

The round engines must be *observably indistinguishable* — same algorithm
outputs, same round counts, same statistics (including the exact violation
ledger order), same delivered inboxes (content, list order, and dict
insertion order), same exceptions, and same DROP-rng draws.  This module
enforces that two ways:

* every algorithm in :mod:`repro.algorithms` runs on seeded random graphs
  under both engines in all three :class:`~repro.config.Enforcement` modes;
* a seeded fuzzer replays raw (including deliberately violating and
  malformed) exchange rounds under both engines.

Any future engine must be added to ``ENGINES`` here; any change that makes
the engines distinguishable is a bug, regardless of which engine is
"right" (see ROADMAP.md, "Engine selection").
"""

from __future__ import annotations

import random

import pytest

import repro.ncc.batched as batched_mod
import repro.ncc.message as message_mod
from repro import Enforcement, NCCConfig, NCCRuntime, ReproError
from repro.graphs import generators
from repro.registry import iter_algorithms
from repro.ncc.message import (
    BatchBuilder,
    InboxBatch,
    Message,
    MessageBatch,
    message_construction_count,
    set_typed_payloads,
)
from repro.ncc.network import NCCNetwork

ENGINES = ("reference", "batched", "sharded")
MODES = tuple(Enforcement)
N = 20
SEED = 7


def _engine_cfg(engine: str, **kw) -> NCCConfig:
    """Config for one engine under differential replay.  The sharded
    engine gets a worker count and a round cutoff of 1 so even these tiny
    rounds take the real distributed block shuffle instead of inheriting
    the batched delivery wholesale."""
    if engine == "sharded":
        extras = dict(kw.pop("extras", None) or {})
        extras.setdefault("shard_cutoff", 1)
        return NCCConfig(engine=engine, shards=3, extras=extras, **kw)
    return NCCConfig(engine=engine, **kw)


def _assert_parity(outcomes):
    """Every engine's captured observables must equal the reference's."""
    base = outcomes["reference"]
    for engine, got in outcomes.items():
        assert got == base, f"engine {engine!r} diverged from reference"


def _graph():
    return generators.forest_union(N, 2, seed=3)


# Algorithm discovery goes through the registry: every spec that supports
# the differential harness replays on its canonical workload at
# (n, a, seed) = (N, 2, 3) — exactly the instances the hand-maintained dict
# used to build (``parity=`` overrides on a spec reproduce the composite
# observables, e.g. identification's sorted red-edge tuples).  A new
# algorithm module only has to register itself to be covered here.
ALGORITHMS = {
    spec.name: (lambda s: (lambda rt: s.parity_run(rt, n=N, a=2, seed=3)))(spec)
    for spec in iter_algorithms()
    if spec.supports_parity
}

#: the registry must keep covering at least the historical harness set.
_EXPECTED = {
    "mst",
    "components",
    "orientation",
    "identification",
    "broadcast_trees",
    "bfs",
    "mis",
    "matching",
    "coloring",
}
assert _EXPECTED <= set(ALGORITHMS), sorted(_EXPECTED - set(ALGORITHMS))


def _execute(engine: str, mode: Enforcement, run):
    """Run one algorithm under one engine; capture every observable."""
    cfg = _engine_cfg(
        engine,
        seed=SEED,
        enforcement=mode,
        extras={"lightweight_sync": True},
    )
    rt = NCCRuntime(N, cfg)
    result = error = None
    try:
        result = run(rt)
    except ReproError as e:  # STRICT may legitimately raise; must match too
        error = (type(e).__name__, str(e))
    return {
        "result": result,
        "error": error,
        "rounds": rt.net.round_index,
        "stats": rt.net.stats.comparable(),
    }


@pytest.mark.engine("reference")  # runs both engines itself; skip replays
class TestAlgorithmParity:
    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_algorithm_indistinguishable(self, name, mode):
        runs = {e: _execute(e, mode, ALGORITHMS[name]) for e in ENGINES}
        ref = runs["reference"]
        for engine in ENGINES[1:]:
            got = runs[engine]
            assert ref["error"] == got["error"], engine
            assert ref["result"] == got["result"], engine
            assert ref["rounds"] == got["rounds"], engine
            assert ref["stats"] == got["stats"], engine


# ----------------------------------------------------------------------
# Primitive-level parity: every primitive that submits columnar
# ----------------------------------------------------------------------
# All primitives now build MessageBatch columns via BatchBuilder instead of
# per-message Message lists; each one must stay observably identical under
# both engines in every enforcement mode.
def _memberships(rt):
    rng = random.Random(11)
    return {u: rng.sample(range(6), 2) for u in range(rt.n)}


def _run_aggregation(rt):
    from repro.primitives import SUM, AggregationProblem

    rng = random.Random(5)
    prob = AggregationProblem(
        memberships={u: {g: u for g in rng.sample(range(8), 3)} for u in range(rt.n)},
        targets={g: g for g in range(8)},
        fn=SUM,
    )
    out = rt.aggregation(prob)
    return (sorted(out.values.items()), sorted(out.by_target.items()), out.rounds)


def _run_multicast_setup(rt):
    trees = rt.multicast_setup(_memberships(rt))
    return (
        sorted(trees.root.items()),
        sorted((g, sorted(m.items())) for g, m in trees.leaf_members.items()),
        trees.congestion(),
        trees.member_load(),
    )


def _run_multicast(rt):
    trees = rt.multicast_setup(_memberships(rt))
    out = rt.multicast(
        trees, {g: (g, g + 100) for g in range(6)}, {g: g for g in range(6)}
    )
    return (sorted((u, sorted(p.items())) for u, p in out.received.items()), out.rounds)


def _run_multi_aggregation(rt):
    from repro.primitives import MIN

    trees = rt.multicast_setup(_memberships(rt))
    out = rt.multi_aggregation(
        trees, {g: g for g in range(6)}, {g: g for g in range(6)}, MIN
    )
    return (sorted(out.values.items()), out.rounds)


def _run_multi_aggregation_keyed(rt):
    from repro.primitives import MIN

    trees = rt.multicast_setup(_memberships(rt))
    out = rt.multi_aggregation(
        trees,
        {g: g for g in range(6)},
        {g: g for g in range(6)},
        MIN,
        annotate=lambda rng, g, member, payload: (rng.randrange(100), payload),
        result_key=lambda g: g % 2,
    )
    return (
        sorted((u, sorted(kv.items())) for u, kv in out.keyed.items()),
        out.rounds,
    )


def _run_aggregate_broadcast(rt):
    from repro.primitives import SUM

    total = rt.aggregate_and_broadcast({u: u + 1 for u in range(rt.n)}, SUM)
    return (total, rt.net.round_index)


def _run_pipelined_broadcast(rt):
    rec = rt.pipelined_broadcast(list(range(30)), src=3)
    return (sorted(rec.items()), rt.net.round_index)


def _run_gather(rt):
    items = {u: ("item", u) for u in range(0, rt.n, 3)}
    return (rt.gather_to_root(items), rt.net.round_index)


def _run_direct(rt):
    from repro.primitives.direct import send_direct, spread_exchange

    rng = random.Random(2)
    sends = [(u, (u * 7 + i) % rt.n, (u, i)) for u in range(rt.n) for i in range(3)]
    inbox = send_direct(rt.net, sends)
    spread = spread_exchange(rt.net, sends, 4, rng=rng)
    return (
        [(d, msgs) for d, msgs in inbox.items()],
        [(d, msgs) for d, msgs in spread.items()],
        rt.net.round_index,
    )


PRIMITIVES = {
    "aggregation": _run_aggregation,
    "multicast_setup": _run_multicast_setup,
    "multicast": _run_multicast,
    "multi_aggregation": _run_multi_aggregation,
    "multi_aggregation_keyed": _run_multi_aggregation_keyed,
    "aggregate_broadcast": _run_aggregate_broadcast,
    "pipelined_broadcast": _run_pipelined_broadcast,
    "gather_to_root": _run_gather,
    "direct": _run_direct,
}


@pytest.mark.engine("reference")  # runs both engines itself; skip replays
class TestPrimitiveParity:
    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    @pytest.mark.parametrize("name", sorted(PRIMITIVES))
    def test_primitive_indistinguishable(self, name, mode):
        runs = {e: _execute(e, mode, PRIMITIVES[name]) for e in ENGINES}
        ref = runs["reference"]
        for engine in ENGINES[1:]:
            got = runs[engine]
            assert ref["error"] == got["error"], engine
            assert ref["result"] == got["result"], engine
            assert ref["rounds"] == got["rounds"], engine
            assert ref["stats"] == got["stats"], engine


# ----------------------------------------------------------------------
# Typed-vs-object representation parity
# ----------------------------------------------------------------------
# Payload columns with a declared dtype must be a pure representation
# change: toggling typed payloads off (forcing the object path everywhere)
# may not shift a single observable, under either engine, in any mode.
def _run_multicast_int(rt):
    # Plain-int packets: the instance the typed multicast wire accepts.
    trees = rt.multicast_setup(_memberships(rt))
    out = rt.multicast(
        trees, {g: 1000 + g for g in range(6)}, {g: g for g in range(6)}
    )
    return (sorted((u, sorted(p.items())) for u, p in out.received.items()), out.rounds)


def _run_direct_typed(rt):
    import numpy as np

    from repro.primitives.direct import send_direct

    pair = np.dtype([("a", "i8"), ("b", "i8")])
    sends = [(u, (u * 7 + i) % rt.n, (u, i)) for u in range(rt.n) for i in range(3)]
    inbox = send_direct(rt.net, sends, dtype=pair)
    # Box explicitly: a structured numpy scalar raises on ``== tuple``.
    return (
        [
            (d, [(m.src, tuple(m.payload)) for m in msgs])
            for d, msgs in inbox.items()
        ],
        rt.net.round_index,
    )


TYPED_PRIMITIVES = {
    "aggregation": _run_aggregation,
    "multicast_int": _run_multicast_int,
    "direct_typed": _run_direct_typed,
}


@pytest.mark.engine("reference")  # runs both engines itself; skip replays
class TestTypedRepresentationParity:
    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    @pytest.mark.parametrize("name", sorted(TYPED_PRIMITIVES))
    def test_typed_toggle_invisible(self, name, mode):
        pytest.importorskip("numpy")
        runs = {}
        for engine in ENGINES:
            for typed in (True, False):
                prev = set_typed_payloads(typed)
                try:
                    runs[(engine, typed)] = _execute(
                        engine, mode, TYPED_PRIMITIVES[name]
                    )
                finally:
                    set_typed_payloads(prev)
        base = runs[("reference", False)]
        for key, run in runs.items():
            assert run["error"] == base["error"], key
            assert run["result"] == base["result"], key
            assert run["rounds"] == base["rounds"], key
            assert run["stats"] == base["stats"], key


# ----------------------------------------------------------------------
# Raw-exchange fuzzing: violating and malformed rounds
# ----------------------------------------------------------------------
def _random_round(rng: random.Random, n: int, cap: int, *, batch: bool):
    """One round of random traffic: some senders over capacity, some
    receivers hot, occasional oversized payloads."""
    out = {}
    hot = rng.randrange(n)  # attract extra traffic to one receiver
    for src in rng.sample(range(n), rng.randrange(1, n)):
        count = rng.choice((0, 1, 2, rng.randrange(1, cap + 6)))
        if not count:
            continue
        dsts, payloads = [], []
        for _ in range(count):
            dsts.append(hot if rng.random() < 0.3 else rng.randrange(n))
            if rng.random() < 0.02:
                payloads.append(tuple(range(200)))  # oversized
            else:
                payloads.append((src, rng.randrange(1 << 16)))
        if batch:
            out[src] = MessageBatch.from_columns(src, dsts, payloads, kind="fuzz")
        else:
            out[src] = [Message(src, d, p, kind="fuzz") for d, p in zip(dsts, payloads)]
    return out


def _replay(engine: str, mode: Enforcement, seed: int, *, batch: bool, n: int = 64):
    cfg = _engine_cfg(engine, seed=SEED, enforcement=mode)
    net = NCCNetwork(n, cfg)
    rng = random.Random(seed)
    trace = []
    for r in range(25):
        out = _random_round(rng, n, net.capacity, batch=batch)
        try:
            inboxes = net.exchange(out)
        except ReproError as e:
            trace.append(("error", type(e).__name__, str(e)))
            break
        # Order-sensitive capture: dict insertion order AND list order.
        trace.append([(d, msgs) for d, msgs in inboxes.items()])
    return trace, net.round_index, net.stats.comparable()


@pytest.mark.engine("reference")  # differential by construction
class TestExchangeFuzzParity:
    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    @pytest.mark.parametrize("batch", [False, True], ids=["plain", "batch"])
    @pytest.mark.parametrize("seed", range(6))
    def test_random_rounds_indistinguishable(self, mode, batch, seed):
        ref = _replay("reference", mode, seed, batch=batch)
        bat = _replay("batched", mode, seed, batch=batch)
        assert ref == bat

    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_malformed_src_indistinguishable(self, mode):
        """A Mapping entry whose message src disagrees with the sender key
        must raise identically in every mode and under every engine."""
        outcomes = {}
        for engine in ENGINES:
            net = NCCNetwork(16, _engine_cfg(engine, seed=1, enforcement=mode))
            msgs = [Message(0, d % 16, "x") for d in range(net.capacity + 3)]
            msgs[2] = Message(1, 2, "x")  # wrong src, hidden mid-group
            with pytest.raises(ValueError) as e:
                net.exchange({0: msgs})
            outcomes[engine] = (str(e.value), net.stats.comparable())
        _assert_parity(outcomes)

    def test_huge_destination_id_rejected_not_allocated(self):
        """A single absurd dst id in a large round must raise the reference
        ValueError, not size a count table to dst.max()+1 slots."""
        outcomes = {}
        for engine in ENGINES:
            net = NCCNetwork(1024, _engine_cfg(engine, seed=1))
            msgs = [Message(s % 1024, (s + 1) % 1024, "x") for s in range(300)]
            msgs[150] = Message(150, 10**12, "x")
            with pytest.raises(ValueError) as e:
                net.exchange(msgs)
            outcomes[engine] = str(e.value)
        _assert_parity(outcomes)

    def test_id_beyond_int64_rejected_identically(self):
        """An id that does not fit an int64 column must still raise the
        reference ValueError (not OverflowError) under every engine and
        for both submission forms."""
        outcomes = {}
        for engine in ENGINES:
            for batch in (False, True):
                net = NCCNetwork(1024, _engine_cfg(engine, seed=1))
                dsts = [(s + 1) % 1024 for s in range(300)]
                dsts[150] = 2**63
                if batch:
                    out = {0: MessageBatch.from_columns(0, dsts, ["x"] * 300)}
                else:
                    out = {0: [Message(0, d, "x") for d in dsts]}
                with pytest.raises(ValueError) as e:
                    net.exchange(out)
                outcomes[(engine, batch)] = str(e.value)
        assert len(set(outcomes.values())) == 1

    def test_from_columns_rejects_mismatched_column_lengths(self):
        """Misaligned parallel columns must error, not silently drop the
        tail of the traffic (zip truncation would corrupt accounting)."""
        with pytest.raises(ValueError):
            MessageBatch.from_columns(0, [1, 2, 3], ["a", "b"])
        with pytest.raises(ValueError):
            MessageBatch.from_columns([0, 1], [1, 2, 3], ["a", "b", "c"])

    def test_non_int_node_ids_rejected_at_message_boundary(self):
        """Float ids would be distinct inbox keys to a per-message walk but
        truncate in an int64 column — the Message contract rejects them
        before any engine can diverge."""
        with pytest.raises(TypeError, match="node ids must be ints"):
            Message(0, 2.5, "x")
        with pytest.raises(TypeError, match="node ids must be ints"):
            Message(1.5, 2, "x")
        with pytest.raises(TypeError, match="node ids must be ints"):
            MessageBatch.from_columns(0, [1, 2.5], ["a", "b"])

    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_from_columns_empty_batch(self, mode):
        """An empty batch must behave like no traffic at all: a round still
        elapses, nothing is delivered, statistics untouched — identically
        under both engines."""
        outcomes = {}
        for engine in ENGINES:
            net = NCCNetwork(16, _engine_cfg(engine, seed=1, enforcement=mode))
            empty = MessageBatch.from_columns(3, [], [])
            assert len(empty) == 0
            assert empty.list_cols == ([], [], [])
            inbox = net.exchange({3: empty})
            outcomes[engine] = (inbox, net.round_index, net.stats.comparable())
        _assert_parity(outcomes)
        assert outcomes["reference"][0] == {}
        assert outcomes["reference"][1] == 1

    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_from_columns_single_message(self, mode):
        """A one-message batch delivers exactly that message, with correct
        bits accounting, under both engines."""
        outcomes = {}
        for engine in ENGINES:
            net = NCCNetwork(16, _engine_cfg(engine, seed=1, enforcement=mode))
            batch = MessageBatch.from_columns(4, [9], [("one", 5)], kind="solo")
            inbox = net.exchange({4: batch})
            outcomes[engine] = (
                [(d, msgs) for d, msgs in inbox.items()],
                net.stats.comparable(),
            )
        _assert_parity(outcomes)
        ((dst, msgs),) = outcomes["reference"][0]
        assert dst == 9
        assert len(msgs) == 1
        assert msgs[0].payload == ("one", 5)
        assert msgs[0].kind == "solo"

    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_from_columns_mixed_payloads(self, mode):
        """Mixed tuple/scalar payloads in one batch: sizing and delivery
        must agree between engines (tuples sum their parts, scalars size
        directly, None is a 1-bit token)."""
        payloads = [("tup", 3, 7), 42, None, True, ("nested", (1, 2)), "tag"]
        outcomes = {}
        for engine in ENGINES:
            net = NCCNetwork(16, _engine_cfg(engine, seed=1, enforcement=mode))
            batch = MessageBatch.from_columns(
                0, list(range(1, len(payloads) + 1)), payloads, kind="mix"
            )
            inbox = net.exchange({0: batch})
            outcomes[engine] = (
                [(d, [(m.payload, m.bits) for m in msgs]) for d, msgs in inbox.items()],
                net.stats.comparable(),
            )
        _assert_parity(outcomes)
        delivered = dict(outcomes["reference"][0])
        assert delivered[2] == [(42, 6)]
        assert delivered[3] == [(None, 1)]

    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_bad_destination_indistinguishable(self, mode):
        outcomes = {}
        for engine in ENGINES:
            net = NCCNetwork(16, _engine_cfg(engine, seed=1, enforcement=mode))
            msgs = [Message(0, d % 16, "x") for d in range(net.capacity + 3)]
            msgs[-1] = Message(0, 99, "x")  # out-of-range dst
            with pytest.raises(ValueError) as e:
                net.exchange({0: msgs})
            outcomes[engine] = (str(e.value), net.stats.comparable())
        _assert_parity(outcomes)


# ----------------------------------------------------------------------
# Lazy inbox (InboxBatch) delivery: list-equivalence + zero construction
# ----------------------------------------------------------------------
def _deferred_round_traffic(n, per_sender_count, *, mixed_kinds=False):
    """One deterministic deferred round: every node sends ``per_sender_count``
    messages along shifted permutations (clean at <= capacity)."""
    out = BatchBuilder(kind="lazy")
    for u in range(n):
        for i in range(per_sender_count):
            kind = "lazy:token" if mixed_kinds and i == 0 else None
            out.add(u, (u + i + 1) % n, ("P", u, i), kind=kind)
    return out


@pytest.mark.engine("reference")  # differential by construction
class TestInboxBatchParity:
    """The batched engine delivers lazy ``InboxBatch`` column views; they
    must be observably interchangeable with the reference engine's plain
    lists — content, list order, dict insertion order, statistics — in
    every enforcement mode, while constructing zero ``Message`` objects on
    clean rounds."""

    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    @pytest.mark.parametrize("count", [2, 8], ids=["small", "argsort"])
    @pytest.mark.parametrize("mixed", [False, True], ids=["uniform-kind", "mixed-kind"])
    def test_deferred_round_indistinguishable(self, mode, count, mixed):
        n = 32
        inboxes = {}
        stats = {}
        for engine in ENGINES:
            net = NCCNetwork(n, _engine_cfg(engine, seed=1, enforcement=mode))
            inboxes[engine] = net.exchange(
                _deferred_round_traffic(n, count, mixed_kinds=mixed)
            )
            stats[engine] = net.stats.comparable()
        ref = inboxes["reference"]
        # The reference engine delivered lists; the lazy engines, views.
        assert all(type(box) is list for box in ref.values())
        for engine in ENGINES[1:]:
            bat = inboxes[engine]
            assert stats["reference"] == stats[engine], engine
            # Dict equality AND order, both comparison directions.
            assert list(ref.keys()) == list(bat.keys()), engine
            assert ref == bat, engine
            assert [(d, m) for d, m in bat.items()] == [
                (d, m) for d, m in ref.items()
            ], engine
            assert all(type(box) is InboxBatch for box in bat.values()), engine
            # Column accessors agree with the reference lists without
            # constructing messages.
            before = message_construction_count()
            for dst, box in bat.items():
                assert box.payloads() == [m.payload for m in ref[dst]]
                assert box.srcs() == [m.src for m in ref[dst]]
                assert box.dsts() == [dst] * len(ref[dst])
                assert box.kinds() == [m.kind for m in ref[dst]]
                assert box.items() == [(m.src, m.payload) for m in ref[dst]]
            assert message_construction_count() == before, engine

    @pytest.mark.parametrize("count", [2, 8], ids=["small", "argsort"])
    def test_clean_batched_round_constructs_zero_messages(self, count):
        n = 32
        net = NCCNetwork(
            n, NCCConfig(seed=1, enforcement=Enforcement.COUNT, engine="batched")
        )
        out = _deferred_round_traffic(n, count)
        before = message_construction_count()
        inbox = net.exchange(out)
        assert message_construction_count() == before, (
            "a clean batched round must not construct Message objects"
        )
        # Materialization happens exactly when elements are touched.
        m = next(iter(inbox.values()))[0]
        assert message_construction_count() == before + 1
        assert isinstance(m, Message)

    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_resubmitted_inbox_batches_indistinguishable(self, mode):
        """Delivered InboxBatches can be re-exchanged: as flat traffic they
        re-bucket by the messages' own senders; as a Mapping keyed by the
        old receivers both engines must reject the src mismatch
        identically (mixed-src groups take the generic paths)."""
        outcomes = {}
        for engine in ENGINES:
            net = NCCNetwork(
                32, _engine_cfg(engine, seed=1, enforcement=mode)
            )
            inbox = net.exchange(_deferred_round_traffic(32, 3))
            flat = [m for box in inbox.values() for m in box]
            second = net.exchange(flat)
            resub = {dst: box for dst, box in inbox.items()}
            try:
                net.exchange(resub)
                third = ("delivered",)
            except (ReproError, ValueError) as e:
                third = (type(e).__name__, str(e))
            outcomes[engine] = (
                [(d, list(m)) for d, m in second.items()],
                third,
                net.stats.comparable(),
            )
        _assert_parity(outcomes)

    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_deferred_overload_walks_match(self, mode):
        """Receive overload through deferred submission: DROP draws, the
        violation ledger, and STRICT raises must match the reference."""
        n = 64
        outcomes = {}
        for engine in ENGINES:
            net = NCCNetwork(n, _engine_cfg(engine, seed=1, enforcement=mode))
            out = BatchBuilder(kind="hot")
            for u in range(net.capacity + 10):
                out.add(u, 0, ("h", u))
            try:
                inbox = net.exchange(out)
                outcomes[engine] = (
                    "ok",
                    [(d, sorted(m.payload[1] for m in msgs)) for d, msgs in inbox.items()],
                    net.stats.comparable(),
                )
            except ReproError as e:
                outcomes[engine] = (type(e).__name__, str(e), net.stats.comparable())
        _assert_parity(outcomes)

    def test_deferred_bad_ids_walk_to_reference_errors(self):
        """Out-of-range ids inside a deferred submission raise the
        reference engine's ValueError under both engines — for both the
        small and the argsort-sized round, and including ids too wide for
        an int64 column (which must not surface as OverflowError)."""
        for count, bad_dst in ((2, 99), (8, 99), (2, 2**63), (8, 2**63)):
            outcomes = {}
            for engine in ENGINES:
                net = NCCNetwork(16, _engine_cfg(engine, seed=1))
                out = BatchBuilder()
                for u in range(16):
                    for i in range(count):
                        out.add(u, (u + i + 1) % 16, i)
                out.add(3, bad_dst, "bad")
                with pytest.raises(ValueError) as e:
                    net.exchange(out)
                outcomes[engine] = (str(e.value), net.stats.comparable())
            _assert_parity(outcomes)

    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_duplicate_coercing_keys_merge_inbox_batches(self, mode):
        """Mapping submissions with distinct keys coercing to one int must
        merge even when the first value is a delivered InboxBatch."""
        outcomes = {}
        for engine in ENGINES:
            net = NCCNetwork(32, _engine_cfg(engine, seed=1, enforcement=mode))
            inbox = net.exchange(_deferred_round_traffic(32, 2))
            box = inbox[2]  # receiver 2's batch: all messages have dst 2
            # 2.5 and 2 are distinct dict keys but coerce to one sender.
            resent = {2.5: box, 2: [Message(2, 5, "extra")]}
            try:
                second = net.exchange(resent)
                outcomes[engine] = (
                    "ok",
                    [(d, list(m)) for d, m in second.items()],
                    net.stats.comparable(),
                )
            except (ReproError, ValueError) as e:
                outcomes[engine] = (type(e).__name__, str(e), net.stats.comparable())
        _assert_parity(outcomes)

    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_numpy_free_degraded_path(self, mode, monkeypatch):
        """Without numpy the deferred path buckets the columns in plain
        Python: still InboxBatch delivery, still zero construction on
        clean rounds, still indistinguishable from the reference."""
        monkeypatch.setattr(batched_mod, "_np", None)
        monkeypatch.setattr(message_mod, "_np", None)
        n = 32
        inboxes = {}
        stats = {}
        constructed = {}
        for engine in ENGINES:
            net = NCCNetwork(n, _engine_cfg(engine, seed=1, enforcement=mode))
            before = message_construction_count()
            inboxes[engine] = net.exchange(_deferred_round_traffic(n, 8))
            constructed[engine] = message_construction_count() - before
            stats[engine] = net.stats.comparable()
        assert constructed["reference"] > 0
        for engine in ENGINES[1:]:
            assert stats["reference"] == stats[engine], engine
            assert inboxes["reference"] == inboxes[engine], engine
            assert list(inboxes["reference"]) == list(inboxes[engine]), engine
            assert constructed[engine] == 0, engine
            assert all(
                type(b) is InboxBatch for b in inboxes[engine].values()
            ), engine

    def test_numpy_free_overload_parity(self, monkeypatch):
        monkeypatch.setattr(batched_mod, "_np", None)
        monkeypatch.setattr(message_mod, "_np", None)
        outcomes = {}
        for engine in ENGINES:
            net = NCCNetwork(
                64, _engine_cfg(engine, seed=1, enforcement=Enforcement.DROP)
            )
            out = BatchBuilder(kind="hot")
            for u in range(net.capacity + 10):
                out.add(u, 0, ("h", u))
            inbox = net.exchange(out)
            outcomes[engine] = (
                [(d, sorted(m.payload[1] for m in msgs)) for d, msgs in inbox.items()],
                net.stats.comparable(),
            )
        _assert_parity(outcomes)
