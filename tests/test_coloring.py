"""Distributed O(a)-coloring: properness and palette bounds."""

import pytest

from repro.algorithms import ColoringAlgorithm
from repro.baselines.sequential import is_proper_coloring
from repro.graphs import generators
from tests.conftest import make_runtime


def run_coloring(g, seed=1, **extras):
    rt = make_runtime(g.n, seed=seed, **extras)
    res = ColoringAlgorithm(rt, g).run()
    return rt, res


class TestValidity:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: generators.path(16),
            lambda: generators.cycle(17),
            lambda: generators.star(20),
            lambda: generators.grid(5, 4),
            lambda: generators.random_tree(24, seed=1),
            lambda: generators.forest_union(24, 2, seed=2),
            lambda: generators.forest_union(24, 4, seed=3),
            lambda: generators.gnp(20, 0.2, seed=4),
        ],
        ids=["path", "cycle", "star", "grid", "tree", "forest2", "forest4", "gnp"],
    )
    def test_proper_within_palette(self, maker):
        g = maker()
        rt, res = run_coloring(g)
        assert is_proper_coloring(g, res.colors)
        assert res.colors_used() <= res.palette_size
        assert max(res.colors.values(), default=0) < res.palette_size
        assert rt.net.stats.violation_count == 0

    def test_palette_formula(self):
        g = generators.grid(4, 4)
        rt, res = run_coloring(g)
        eps = rt.config.coloring_epsilon
        import math

        assert res.palette_size == max(1, math.ceil(2 * (1 + eps) * max(1, res.a_hat)))

    def test_star_uses_few_colors(self):
        """a = 1: the palette must be O(1), independent of ∆ = n−1."""
        g = generators.star(24)
        rt, res = run_coloring(g)
        assert is_proper_coloring(g, res.colors)
        assert res.palette_size <= 6

    def test_path_constant_palette(self):
        g = generators.path(24)
        rt, res = run_coloring(g)
        assert res.palette_size <= 9

    def test_palette_scales_with_a_not_delta(self):
        caterpillar = generators.caterpillar(4, 5)  # tree: a=1, ∆=7
        rt, res = run_coloring(caterpillar)
        assert res.palette_size <= 9

    def test_empty_graph(self):
        from repro import InputGraph

        g = InputGraph(8, [])
        rt, res = run_coloring(g)
        assert set(res.colors) == set(range(8))

    def test_complete_graph(self):
        g = generators.complete(8)
        rt, res = run_coloring(g)
        assert is_proper_coloring(g, res.colors)
        assert res.colors_used() == 8  # clique needs n colors


class TestBehaviour:
    def test_deterministic(self):
        g = generators.forest_union(20, 2, seed=5)
        _, a = run_coloring(g, seed=3)
        _, b = run_coloring(g, seed=3)
        assert a.colors == b.colors
        assert a.rounds == b.rounds

    def test_levels_processed_highest_first(self):
        """Star: leaves (level 1) must be colored after the center
        (level 2) — highest level first."""
        g = generators.star(16)
        rt, res = run_coloring(g)
        # center colored in phase 1 of coloring => it keeps color from the
        # full palette; leaves then avoid exactly that color.
        center_color = res.colors[0]
        assert all(res.colors[leaf] != center_color for leaf in range(1, 16))

    def test_precomputed_orientation(self):
        from repro.algorithms import OrientationAlgorithm

        g = generators.grid(4, 4)
        rt = make_runtime(16)
        ori = OrientationAlgorithm(rt, g).run()
        res = ColoringAlgorithm(rt, g, orientation=ori).run()
        assert is_proper_coloring(g, res.colors)

    def test_size_mismatch_rejected(self):
        rt = make_runtime(8)
        with pytest.raises(ValueError):
            ColoringAlgorithm(rt, generators.path(4))
