"""The persistent worker pool: shared-memory graph transport, pool
lifecycle, determinism across pools, and — crucially — crash robustness
(a SIGKILLed worker must not take the sweep down or corrupt its output)."""

import pytest

from repro.api import (
    Manifest,
    ResultStore,
    RunSpec,
    Session,
    WorkerCrashError,
    shared_memory_available,
    sweep_grid,
)
from repro.api.pool import CHAOS_ENV, pack_graph, unpack_graph
from repro.errors import ConfigurationError

needs_shm = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable on this host",
)


def canonical_grid(specs):
    session = Session()
    return [session.canonical(s) for s in specs]


class TestGraphTransport:
    """pack_graph/unpack_graph and the trusted from_canonical_arrays path
    must round-trip a workload graph exactly — the persistent pool ships
    every workload through them."""

    def build(self, name, n, seed):
        from repro.registry import get_algorithm

        return Session()._workload(
            get_algorithm(name), Session().canonical(RunSpec(name, n, seed=seed))
        )

    @pytest.mark.parametrize("algo,n", [("mis", 16), ("mst", 16), ("bfs", 25)])
    def test_roundtrip_preserves_graph(self, algo, n):
        g = self.build(algo, n, seed=1)
        meta, flat = pack_graph(g)
        g2 = unpack_graph(meta, flat)
        assert g2.n == g.n and g2.m == g.m
        assert g2.edges() == g.edges()
        assert g2.is_weighted() == g.is_weighted()
        for u in range(g.n):
            assert g2.neighbors(u) == g.neighbors(u)
        if g.is_weighted():
            for u, v in g.edges():
                assert g2.weight(u, v) == g.weight(u, v)

    def test_weighted_columns_carry_weights(self):
        g = self.build("mst", 16, seed=0)
        meta, flat = pack_graph(g)
        assert meta["weighted"] is True
        assert flat.size == 3 * g.m  # 2m endpoints + m weights


@needs_shm
class TestPoolLifecycle:
    def test_unknown_pool_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown pool kind"):
            Session(pool="bogus")

    def test_close_reaps_workers_and_segments(self):
        session = Session(pool="persistent")
        specs = sweep_grid(["mis"], [16], seeds=[0, 1])
        session.run_many(specs, jobs=2)
        pool = session._pool
        assert pool is not None and pool.alive_workers == 2
        seg_names = [seg.shm.name for seg in pool._segments.values()]
        assert seg_names
        session.close()
        assert pool.alive_workers == 0
        assert session._pool is None
        from multiprocessing import shared_memory

        for name in seg_names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_pool_reused_across_run_many_calls(self):
        with Session(pool="persistent") as session:
            session.run_many(sweep_grid(["mis"], [16], seeds=[0, 1]), jobs=2)
            first = session._pool
            session.run_many(sweep_grid(["mis"], [16], seeds=[2, 3]), jobs=2)
            assert session._pool is first

    def test_context_manager_closes(self):
        with Session(pool="persistent") as session:
            session.run_many(sweep_grid(["mis"], [16], seeds=[0, 1]), jobs=2)
            pool = session._pool
        assert pool.alive_workers == 0


@needs_shm
class TestPersistentDeterminism:
    """The persistent pool must emit byte-identical reports to the serial
    path and the legacy fork pool — reports are a pure function of the
    canonicalized spec regardless of which process ran them."""

    SPECS = sweep_grid(
        ["mis", "matching", "mst"], [16], seeds=[0, 1],
        engines=["reference", "batched"],
    )

    @pytest.mark.engine("reference")  # pins its own engines; skip replays
    def test_persistent_equals_serial_equals_fork(self):
        serial = Session().run_many(self.SPECS, jobs=1)
        with Session(pool="persistent") as s:
            persistent = s.run_many(self.SPECS, jobs=3)
        with Session(pool="fork") as s:
            fork = s.run_many(self.SPECS, jobs=3)
        lines = [r.to_json_line() for r in serial]
        assert [r.to_json_line() for r in persistent] == lines
        assert [r.to_json_line() for r in fork] == lines

    def test_warm_pool_rerun_identical(self):
        specs = sweep_grid(["mis"], [16], seeds=[0, 1, 2])
        with Session(pool="persistent") as s:
            first = s.run_many(specs, jobs=2)
            second = s.run_many(specs, jobs=2)
        assert [r.to_json_line() for r in first] == [
            r.to_json_line() for r in second
        ]


@needs_shm
class TestCrashRobustness:
    """Crash injection via the REPRO_POOL_CHAOS hook: a worker SIGKILLed
    mid-grid must not lose the sweep — its in-flight spec requeues to a
    survivor, the manifest records the incident, and the output is
    byte-identical to an undisturbed run."""

    GRID = sweep_grid(["mis"], [16], seeds=list(range(6)))

    def test_sigkill_mid_grid_sweep_completes(self, tmp_path, monkeypatch):
        grid = canonical_grid(self.GRID)
        victim = grid[3].content_hash()
        flag = tmp_path / "chaos.flag"
        monkeypatch.setenv(CHAOS_ENV, f"{victim[:16]}:{flag}")
        store = str(tmp_path / "store")
        manifest = str(tmp_path / "manifest.jsonl")
        with Session(pool="persistent") as s:
            reports = s.run_many(self.GRID, jobs=2, store=store, manifest=manifest)
        assert len(reports) == len(self.GRID)
        assert flag.exists()  # the injected kill actually fired

        # every spec ran exactly once into the store
        by_hash = ResultStore.open(store).reports_by_hash()  # raises on dupes
        assert set(by_hash) == {s.content_hash() for s in grid}

        # the incident is journaled with the requeue recorded
        mani = Manifest.load(manifest)
        assert mani.complete
        kinds = [(e["kind"], e["requeued"]) for e in mani.incidents]
        assert ("worker-crash", True) in kinds

        # crash recovery is invisible in the results
        monkeypatch.delenv(CHAOS_ENV)
        serial = Session().run_many(self.GRID, jobs=1)
        assert [r.to_json_line() for r in reports] == [
            r.to_json_line() for r in serial
        ]

    def test_poisonous_spec_aborts_with_clean_error(self, tmp_path, monkeypatch):
        grid = canonical_grid(self.GRID)
        victim = grid[2].content_hash()
        # empty flagfile path = kill *every* worker that picks the spec up
        monkeypatch.setenv(CHAOS_ENV, f"{victim[:16]}:")
        with Session(pool="persistent") as s:
            with pytest.raises(WorkerCrashError):
                s.run_many(self.GRID, jobs=2)

    def test_completed_rows_survive_poison_abort(self, tmp_path, monkeypatch):
        # Rows finished before the abort stay durable in the store, and the
        # sweep resumes cleanly once the poison is gone.
        grid = canonical_grid(self.GRID)
        victim = grid[-1].content_hash()  # last row: others complete first
        monkeypatch.setenv(CHAOS_ENV, f"{victim[:16]}:")
        store = str(tmp_path / "store")
        manifest = str(tmp_path / "manifest.jsonl")
        with Session(pool="persistent") as s:
            with pytest.raises(WorkerCrashError):
                s.run_many(self.GRID, jobs=2, store=store, manifest=manifest)
        done_before = Manifest.load(manifest).done_rows
        assert 0 < done_before < len(grid)
        monkeypatch.delenv(CHAOS_ENV)
        with Session(pool="persistent") as s:
            reports = s.run_many(
                self.GRID, jobs=2, store=store, manifest=manifest
            )
        assert len(reports) == len(grid)
        assert Manifest.load(manifest).complete

    def test_chaos_flagfile_fires_exactly_once(self, tmp_path, monkeypatch):
        # Two sweeps over the same grid in one session: the flag file is
        # claimed by the first kill, so the second pass — including the
        # requeued victim spec itself — runs undisturbed on the warm pool.
        grid = canonical_grid(self.GRID)
        flag = tmp_path / "chaos.flag"
        monkeypatch.setenv(CHAOS_ENV, f"{grid[0].content_hash()[:16]}:{flag}")
        with Session(pool="persistent") as s:
            first = s.run_many(self.GRID, jobs=2)
            second = s.run_many(self.GRID, jobs=2)
        assert flag.exists()
        assert [r.to_json_line() for r in first] == [
            r.to_json_line() for r in second
        ]


class TestPoolFallback:
    def test_fork_pool_always_available(self):
        with Session(pool="fork") as s:
            reports = s.run_many(sweep_grid(["mis"], [16], seeds=[0, 1]), jobs=2)
        assert len(reports) == 2 and all(r.correct for r in reports)

    def test_persistent_requires_shm(self, monkeypatch):
        from repro.api import pool as pool_mod

        monkeypatch.setattr(pool_mod, "_SHM_AVAILABLE", False)
        with pytest.raises(ConfigurationError, match="shared_memory"):
            Session(pool="persistent").run_many(
                sweep_grid(["mis"], [16], seeds=[0, 1]), jobs=2
            )

    def test_auto_falls_back_to_fork(self, monkeypatch):
        from repro.api import pool as pool_mod

        monkeypatch.setattr(pool_mod, "_SHM_AVAILABLE", False)
        session = Session(pool="auto")
        assert session._resolved_pool_kind() == "fork"
