"""Boundary sizes: every layer must behave at n = 1, 2, 3, 4.

Degenerate butterflies (d = 0 and d = 1), empty partner sets, and
single-node components are where off-by-one errors in the emulation live;
downstream users hit these sizes first.
"""

import pytest

from repro import InputGraph, NCCRuntime
from repro.primitives import MIN, SUM, AggregationProblem
from tests.conftest import make_runtime


class TestPrimitivesTiny:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_aggregate_and_broadcast(self, n):
        rt = make_runtime(n)
        assert rt.aggregate_and_broadcast({u: u + 1 for u in range(n)}, SUM) == sum(
            range(1, n + 1)
        )

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_aggregation(self, n):
        rt = make_runtime(n)
        prob = AggregationProblem(
            memberships={u: {0: u + 1} for u in range(n)},
            targets={0: n - 1},
            fn=SUM,
        )
        out = rt.aggregation(prob)
        assert out.values[0] == sum(range(1, n + 1))
        assert rt.net.stats.violation_count == 0

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_multicast_roundtrip(self, n):
        rt = make_runtime(n)
        trees = rt.multicast_setup({u: [0] for u in range(n)})
        out = rt.multicast(trees, {0: "hello"}, {0: 0})
        for u in range(n):
            assert out.at(u) == {0: "hello"}

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_multi_aggregation(self, n):
        rt = make_runtime(n)
        # node u joins the group of node (u+1) % n, so it receives that
        # group's packet.
        memberships = {u: [(u + 1) % n] for u in range(n)}
        trees = rt.multicast_setup(memberships)
        out = rt.multi_aggregation(
            trees, {u: u for u in range(n)}, {u: u for u in range(n)}, MIN
        )
        for v in range(n):
            assert out.values[v] == (v + 1) % n

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_barrier_and_broadcast(self, n):
        rt = make_runtime(n)
        rt.barrier()
        out = rt.pipelined_broadcast([1, 2, 3])
        assert all(out[u] == [1, 2, 3] for u in range(n))


class TestAlgorithmsTiny:
    def test_mst_two_nodes(self):
        g = InputGraph(2, [(0, 1)], {(0, 1): 7})
        from repro.algorithms import MSTAlgorithm

        rt = make_runtime(2)
        res = MSTAlgorithm(rt, g).run()
        assert res.edges == {(0, 1)}
        assert res.weight == 7

    def test_mst_triangle(self):
        g = InputGraph(3, [(0, 1), (1, 2), (0, 2)], {(0, 1): 1, (1, 2): 2, (0, 2): 3})
        from repro.algorithms import MSTAlgorithm

        rt = make_runtime(3)
        res = MSTAlgorithm(rt, g).run()
        assert res.edges == {(0, 1), (1, 2)}

    def test_orientation_single_edge(self):
        g = InputGraph(2, [(0, 1)])
        from repro.algorithms import OrientationAlgorithm

        rt = make_runtime(2)
        ori = OrientationAlgorithm(rt, g).run()
        assert ori.max_outdegree == 1

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_mis_path(self, n):
        from repro.algorithms import MISAlgorithm
        from repro.baselines.sequential import is_maximal_independent_set

        g = InputGraph(n, [(i, i + 1) for i in range(n - 1)])
        rt = make_runtime(n)
        res = MISAlgorithm(rt, g).run()
        assert is_maximal_independent_set(g, res.members)

    def test_matching_triangle(self):
        from repro.algorithms import MatchingAlgorithm
        from repro.baselines.sequential import is_maximal_matching

        g = InputGraph(3, [(0, 1), (1, 2), (0, 2)])
        rt = make_runtime(3)
        res = MatchingAlgorithm(rt, g).run()
        assert is_maximal_matching(g, res.edges)
        assert len(res.edges) == 1

    def test_coloring_two_nodes(self):
        from repro.algorithms import ColoringAlgorithm
        from repro.baselines.sequential import is_proper_coloring

        g = InputGraph(2, [(0, 1)])
        rt = make_runtime(2)
        res = ColoringAlgorithm(rt, g).run()
        assert is_proper_coloring(g, res.colors)

    def test_bfs_two_nodes(self):
        from repro.algorithms import BFSAlgorithm

        g = InputGraph(2, [(0, 1)])
        rt = make_runtime(2)
        res = BFSAlgorithm(rt, g).run(0)
        assert res.dist == [0, 1]

    def test_components_singletons(self):
        from repro.algorithms import ConnectedComponentsAlgorithm

        g = InputGraph(3, [])
        rt = make_runtime(3)
        res = ConnectedComponentsAlgorithm(rt, g).run()
        assert res.labels == [0, 1, 2]

    def test_single_node_network(self):
        rt = make_runtime(1)
        g = InputGraph(1, [])
        from repro.algorithms import MISAlgorithm

        res = MISAlgorithm(rt, g).run()
        assert res.members == {0}
