"""Arboricity estimation: bounds sandwich and forest decompositions."""

import pytest

from repro import InputGraph
from repro.graphs import arboricity, generators


class TestKnownValues:
    def test_tree_is_one(self):
        g = generators.random_tree(20, seed=1)
        lo, hi = arboricity.arboricity_bounds(g)
        assert lo == 1 and hi == 1

    def test_cycle_is_two(self):
        g = generators.cycle(10)
        lo, hi = arboricity.arboricity_bounds(g)
        assert lo <= 2 <= hi
        assert hi <= 2

    def test_complete_nash_williams(self):
        # a(K_n) = ceil(n/2)
        g = generators.complete(10)
        lo, hi = arboricity.arboricity_bounds(g)
        assert lo == 5
        assert hi >= 5

    def test_grid_at_most_three(self):
        g = generators.grid(6, 6)
        _, hi = arboricity.arboricity_bounds(g)
        assert hi <= 3

    def test_empty_graph(self):
        g = InputGraph(5, [])
        lo, hi = arboricity.arboricity_bounds(g)
        assert (lo, hi) == (0, 0)

    def test_bounds_sandwich(self):
        for seed in range(5):
            g = generators.gnp(24, 0.2, seed=seed)
            lo, hi = arboricity.arboricity_bounds(g)
            assert lo <= hi


class TestForestPartition:
    def test_partition_covers_all_edges_once(self):
        g = generators.gnp(20, 0.3, seed=3)
        forests = arboricity.greedy_forest_partition(g)
        all_edges = [e for f in forests for e in f]
        assert sorted(all_edges) == sorted(g.edges())

    def test_each_part_is_a_forest(self):
        import networkx as nx

        g = generators.gnp(20, 0.3, seed=4)
        for forest in arboricity.greedy_forest_partition(g):
            fg = nx.Graph(forest)
            assert nx.is_forest(fg)


class TestDegeneracy:
    def test_order_is_permutation(self):
        g = generators.gnp(20, 0.2, seed=5)
        order, _ = arboricity.degeneracy_order(g)
        assert sorted(order) == list(range(20))

    def test_tree_degeneracy_one(self):
        g = generators.random_tree(20, seed=6)
        _, d = arboricity.degeneracy_order(g)
        assert d == 1

    def test_complete_degeneracy(self):
        g = generators.complete(8)
        _, d = arboricity.degeneracy_order(g)
        assert d == 7

    def test_degeneracy_vs_arboricity(self):
        # a <= degeneracy <= 2a - 1
        for seed in range(3):
            g = generators.forest_union(24, 3, seed=seed)
            lo, _ = arboricity.arboricity_bounds(g)
            _, d = arboricity.degeneracy_order(g)
            assert lo <= d + 1  # loose sanity: lower bound can't far exceed


class TestOrientationVerifier:
    def test_accepts_valid(self):
        g = InputGraph(3, [(0, 1), (1, 2)])
        assert arboricity.verify_orientation_bound(g, [(1,), (2,), ()], 1)

    def test_rejects_excess_outdegree(self):
        g = InputGraph(3, [(0, 1), (0, 2)])
        assert not arboricity.verify_orientation_bound(g, [(1, 2), (), ()], 1)

    def test_rejects_double_orientation(self):
        g = InputGraph(2, [(0, 1)])
        assert not arboricity.verify_orientation_bound(g, [(1,), (0,)], 2)

    def test_rejects_missing_edge(self):
        g = InputGraph(3, [(0, 1), (1, 2)])
        assert not arboricity.verify_orientation_bound(g, [(1,), (), ()], 2)
