"""Congested Clique comparator and the model-separation experiments."""

import math

import pytest

from repro.baselines.congested_clique import (
    CongestedClique,
    broadcast_congested_clique,
    broadcast_ncc,
    gossip_congested_clique,
    gossip_ncc,
)
from repro.errors import CapacityError
from tests.conftest import make_runtime


class TestCongestedClique:
    def test_gossip_single_round(self):
        stats = gossip_congested_clique(16)
        assert stats.rounds == 1
        assert stats.messages == 16 * 15

    def test_broadcast_single_round(self):
        stats = broadcast_congested_clique(16)
        assert stats.rounds == 1
        assert stats.messages == 15

    def test_bandwidth_quadratic(self):
        """Θ̃(n²) bits per round — the intro's separation quantity."""
        s16 = gossip_congested_clique(16)
        s64 = gossip_congested_clique(64)
        assert s64.bits > 10 * s16.bits  # 16x messages, larger payload bits

    def test_payload_budget_enforced(self):
        cc = CongestedClique(4)
        with pytest.raises(CapacityError):
            cc.exchange({0: {1: tuple(range(500))}})

    def test_exchange_bad_destination(self):
        cc = CongestedClique(4)
        with pytest.raises(ValueError):
            cc.exchange({0: {7: "x"}})


class TestNCCSide:
    def test_gossip_rounds_near_n_over_log(self):
        rt = make_runtime(32, strict=False)
        rounds = gossip_ncc(rt)
        cap = rt.net.capacity
        assert rounds == math.ceil((32 - 1) / cap)

    def test_gossip_scales_linearly(self):
        r32 = gossip_ncc(make_runtime(32, strict=False))
        r128 = gossip_ncc(make_runtime(128, strict=False))
        # n/log n growth: 4x n gives > 2.5x rounds
        assert r128 >= 2.5 * r32

    def test_gossip_respects_capacity(self):
        rt = make_runtime(32)  # STRICT
        gossip_ncc(rt)
        assert rt.net.stats.violation_count == 0

    def test_broadcast_logarithmic(self):
        r = broadcast_ncc(make_runtime(64))
        assert r <= 4 * math.log2(64)

    def test_separation_gossip(self):
        """The headline: 1 round vs Ω(n / log n) rounds."""
        n = 64
        cc = gossip_congested_clique(n)
        ncc_rounds = gossip_ncc(make_runtime(n, strict=False))
        assert cc.rounds == 1
        assert ncc_rounds >= n / (8 * math.log2(n))
