"""reprolint: the rule corpus, suppressions, baselines, and output formats.

The fixture files under ``tests/lint_fixtures/`` are deliberate
violations (``*_bad.py``) paired with compliant twins (``*_good.py``);
each carries a ``# reprolint: path=`` directive re-scoping it to the
library path its rule guards.  The corpus directory is skipped by
implicit discovery, so these tests always name fixture files explicitly.
"""

import json
import os

import pytest

from repro.lint import (
    BaselineError,
    Finding,
    UnknownRuleError,
    UsageError,
    discover,
    get_rule,
    iter_rules,
    main,
    rule_ids,
    run_paths,
)
from repro.lint import baseline as baseline_mod
from repro.lint.runner import parse_file

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(REPO, "tests", "lint_fixtures")

ALL_RULES = ("NCC001", "NCC002", "NCC003", "NCC004", "NCC005", "NCC006")


def fixture(name):
    return os.path.join(FIXTURES, name)


def findings_for(path, rule):
    return run_paths([path], select=[rule]).findings


# ----------------------------------------------------------------------
# The rule corpus: every rule fires on its bad twin, stays silent on good
# ----------------------------------------------------------------------
class TestRuleCorpus:
    @pytest.mark.parametrize("rule", ALL_RULES)
    def test_bad_fixture_fires(self, rule):
        bad = fixture(f"{rule.lower()}_bad.py")
        found = findings_for(bad, rule)
        assert found, f"{rule} stayed silent on its violation fixture"
        assert all(f.rule == rule for f in found)
        assert all(f.path == bad for f in found)

    @pytest.mark.parametrize("rule", ALL_RULES)
    def test_good_fixture_is_silent(self, rule):
        found = findings_for(fixture(f"{rule.lower()}_good.py"), rule)
        assert found == [], f"{rule} fired on the compliant fixture: {found}"

    @pytest.mark.parametrize("rule", ALL_RULES)
    def test_bad_fixture_under_all_rules_only_fires_its_own(self, rule):
        # The path directive scopes each fixture so that running the FULL
        # rule set over a bad fixture yields only its own rule's findings —
        # fixtures must not trip unrelated rules.
        result = run_paths([fixture(f"{rule.lower()}_bad.py")])
        assert {f.rule for f in result.findings} == {rule}

    def test_ncc001_catalogue(self):
        # The bad twin enumerates every violation class the rule knows.
        msgs = " ".join(
            f.message for f in findings_for(fixture("ncc001_bad.py"), "NCC001")
        )
        for needle in ("unseeded", "seeding", "interpreter-global",
                       "wall-clock", "set literal", "telemetry"):
            assert needle in msgs

    def test_ncc002_fallbacks_are_exempt(self):
        # The good twin boxes inside two fallback spellings (name and
        # annotation); neither may fire.
        assert findings_for(fixture("ncc002_good.py"), "NCC002") == []

    def test_ncc006_constant_tables_are_exempt(self):
        found = findings_for(fixture("ncc006_good.py"), "NCC006")
        assert found == [], found

    def test_ncc006_covers_shard_worker_surface(self, tmp_path):
        # The shard-pool package is part of the worker import surface: the
        # same ambient-state hazards apply to the per-round block workers.
        bad = tmp_path / "bad.py"
        bad.write_text(
            "# reprolint: path=src/repro/ncc/sharded/fixture_workers.py\n"
            "_inflight = {}\n"
        )
        assert [f.rule for f in run_paths([str(bad)]).findings] == ["NCC006"]
        # ...while the write-once pool-handle scalar idiom stays exempt.
        good = tmp_path / "good.py"
        good.write_text(
            "# reprolint: path=src/repro/ncc/sharded/fixture_workers.py\n"
            "_POOL = None\n"
        )
        assert run_paths([str(good)]).findings == []

    def test_ncc001_clock_containment_scoping(self, tmp_path):
        # perf_counter/monotonic are confined to the telemetry package,
        # the session wall stamp, and benchmarks; any other library module
        # taking a clock reading is flagged.
        body = "import time\n\ndef f():\n    return time.perf_counter()\n"
        cases = {
            "src/repro/telemetry/fixture_tracer.py": [],
            "src/repro/api/session.py": [],
            "benchmarks/bench_fixture.py": [],
            "tests/test_fixture_timing.py": [],
            "src/repro/ncc/fixture_engine.py": ["NCC001"],
            "src/repro/api/fixture_pool.py": ["NCC001"],
        }
        for i, (scoped, want) in enumerate(cases.items()):
            mod = tmp_path / f"clock{i}.py"
            mod.write_text(f"# reprolint: path={scoped}\n{body}")
            found = findings_for(str(mod), "NCC001")
            assert [f.rule for f in found] == want, (scoped, found)

    def test_ncc004_covers_trace_exporter(self, tmp_path):
        # Trace documents are compared across runs by the determinism
        # tests, so the telemetry exporter joins the canonical-JSON scope.
        bad = tmp_path / "bad.py"
        bad.write_text(
            "# reprolint: path=src/repro/telemetry/export.py\n"
            "import json\n"
            "def dump(doc):\n"
            "    return json.dumps(doc)\n"
        )
        assert [f.rule for f in findings_for(str(bad), "NCC004")] == ["NCC004"]
        good = tmp_path / "good.py"
        good.write_text(
            "# reprolint: path=src/repro/telemetry/export.py\n"
            "import json\n"
            "def dump(doc):\n"
            "    return json.dumps(doc, sort_keys=True)\n"
        )
        assert findings_for(str(good), "NCC004") == []

    def test_ncc002_covers_sharded_engine(self, tmp_path):
        # The sharded delivery modules are hot-path: Message construction
        # and whole-inbox boxing are flagged there exactly as in batched.py.
        bad = tmp_path / "bad.py"
        bad.write_text(
            "# reprolint: path=src/repro/ncc/sharded/engine.py\n"
            "def deliver(Message, box):\n"
            "    Message(0, 1, 'x')\n"
            "    return box.payloads()\n"
        )
        found = findings_for(str(bad), "NCC002")
        assert len(found) == 2, found
        good = tmp_path / "good.py"
        good.write_text(
            "# reprolint: path=src/repro/ncc/sharded/engine.py\n"
            "def deliver(box):\n"
            "    return box.payload_array()\n"
        )
        assert findings_for(str(good), "NCC002") == []


# ----------------------------------------------------------------------
# Framework mechanics
# ----------------------------------------------------------------------
class TestFramework:
    def test_rule_ids_sorted_and_complete(self):
        assert list(rule_ids()) == list(ALL_RULES)
        assert [r.id for r in iter_rules()] == list(ALL_RULES)

    def test_unknown_rule(self):
        with pytest.raises(UnknownRuleError):
            get_rule("NCC999")

    def test_every_rule_names_its_invariant(self):
        for rule in iter_rules():
            assert rule.name and rule.invariant

    def test_path_directive_rescopes(self):
        ctx = parse_file(fixture("ncc001_bad.py"))
        assert ctx.effective_path == "src/repro/graphs/fixture_mod.py"
        assert ctx.path.endswith("tests/lint_fixtures/ncc001_bad.py")

    def test_discovery_skips_fixture_corpus(self):
        files = discover([os.path.join(REPO, "tests")])
        assert not any("lint_fixtures" in f for f in files)
        assert any(f.endswith("tests/test_lint.py") for f in files)

    def test_discovery_rejects_missing_path(self):
        with pytest.raises(UsageError):
            discover([os.path.join(REPO, "no_such_dir")])

    def test_syntax_error_degrades_to_finding(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        found = run_paths([str(broken)]).findings
        assert [f.rule for f in found] == ["NCC000"]

    def test_suppression_comment(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text(
            "# reprolint: path=src/repro/algorithms/x.py\n"
            "import random\n"
            "a = random.Random()  # reprolint: disable=NCC001\n"
            "b = random.Random()  # reprolint: disable=NCC004\n"
            "c = random.Random()  # reprolint: disable=all\n"
        )
        result = run_paths([str(src)], select=["NCC001"])
        # line 3 and 5 suppressed; line 4's disable names the wrong rule
        assert [f.line for f in result.findings] == [4]
        assert result.suppressed == 2


# ----------------------------------------------------------------------
# Baseline: shrink-only budgets
# ----------------------------------------------------------------------
def _finding(path, rule, line=1):
    return Finding(rule=rule, path=path, line=line, col=0, message="m")


class TestBaseline:
    def test_partition_budget(self):
        base = {"a.py::NCC001": 2}
        findings = [_finding("a.py", "NCC001", i) for i in (1, 2, 3)]
        new, baselined, stale = baseline_mod.partition(findings, base)
        assert baselined == 2
        assert [f.line for f in new] == [3]  # overflow beyond the budget
        assert stale == {}

    def test_partition_stale(self):
        new, baselined, stale = baseline_mod.partition(
            [], {"gone.py::NCC002": 3}
        )
        assert (new, baselined) == ([], 0)
        assert stale == {"gone.py::NCC002": 3}

    def test_shrink_never_grows(self):
        old = {"a.py::NCC001": 2}
        findings = [
            _finding("a.py", "NCC001", 1),
            _finding("a.py", "NCC001", 2),
            _finding("a.py", "NCC001", 3),  # would need budget 3
            _finding("b.py", "NCC002", 1),  # not in the baseline at all
        ]
        assert baseline_mod.shrink(old, findings) == {"a.py::NCC001": 2}

    def test_shrink_drops_fixed_and_clamps(self):
        old = {"a.py::NCC001": 5, "gone.py::NCC003": 2}
        findings = [_finding("a.py", "NCC001", 1)]
        assert baseline_mod.shrink(old, findings) == {"a.py::NCC001": 1}

    def test_load_missing_is_empty(self, tmp_path):
        assert baseline_mod.load(str(tmp_path / "nope.json")) == {}

    def test_load_rejects_malformed(self, tmp_path):
        bad = tmp_path / "base.json"
        bad.write_text('{"a.py::NCC001": "two"}')
        with pytest.raises(BaselineError):
            baseline_mod.load(str(bad))

    def test_save_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "base.json")
        baseline_mod.save(path, {"b.py::NCC002": 1, "a.py::NCC001": 2})
        assert baseline_mod.load(path) == {"a.py::NCC001": 2, "b.py::NCC002": 1}


# ----------------------------------------------------------------------
# CLI surface: exit codes, update/strict workflow, JSON stability
# ----------------------------------------------------------------------
class TestCliWorkflow:
    def test_findings_exit_1(self, capsys):
        code = main([fixture("ncc001_bad.py"), "--baseline", "none"])
        assert code == 1
        out = capsys.readouterr().out
        assert "NCC001" in out and "finding(s)" in out

    def test_clean_exit_0(self, capsys):
        assert main([fixture("ncc001_good.py"), "--baseline", "none"]) == 0

    def test_bootstrap_then_green_then_strict_stale(self, tmp_path, capsys):
        base = str(tmp_path / "baseline.json")
        bad = fixture("ncc001_bad.py")
        good = fixture("ncc001_good.py")
        # Bootstrap: adopting a missing baseline grandfathers everything.
        assert main([bad, "--baseline", base, "--update-baseline"]) == 0
        adopted = baseline_mod.load(base)
        assert adopted == {f"{bad}::NCC001": 8}
        # Same findings are now baselined: green.
        assert main([bad, "--baseline", base]) == 0
        # The violations get fixed (lint the good twin): entries go stale —
        # plain run still green, --strict forces the shrink.
        assert main([good, "--baseline", base]) == 0
        assert main([good, "--baseline", base, "--strict"]) == 1
        assert "shrink" in capsys.readouterr().err
        assert main([good, "--baseline", base, "--update-baseline"]) == 0
        assert baseline_mod.load(base) == {}
        assert main([good, "--baseline", base, "--strict"]) == 0

    def test_update_baseline_never_adopts_new_findings(self, tmp_path):
        # Once a baseline exists, --update-baseline cannot grandfather a
        # fresh violation: shrink-only means new findings still fail.
        base = str(tmp_path / "baseline.json")
        baseline_mod.save(base, {})
        assert main([fixture("ncc002_bad.py"), "--baseline", base,
                     "--update-baseline"]) == 1
        assert baseline_mod.load(base) == {}

    def test_usage_error_exit_2(self, capsys):
        assert main(["definitely/not/a/path", "--baseline", "none"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_unknown_rule_exit_2(self, capsys):
        assert main([fixture("ncc001_good.py"), "--select", "NCC999",
                     "--baseline", "none"]) == 2
        assert "NCC999" in capsys.readouterr().err

    def test_malformed_baseline_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "base.json"
        bad.write_text("[1, 2]")
        assert main([fixture("ncc001_good.py"), "--baseline", str(bad)]) == 2
        assert "baseline" in capsys.readouterr().err

    def test_json_format_is_byte_stable(self, capsys):
        argv = [fixture("ncc003_bad.py"), "--format", "json",
                "--baseline", "none"]
        assert main(argv) == 1
        first = capsys.readouterr().out
        assert main(argv) == 1
        second = capsys.readouterr().out
        assert first == second
        doc = json.loads(first)
        assert doc["version"] == 1
        assert doc["rules"] == list(ALL_RULES)
        assert {f["rule"] for f in doc["findings"]} == {"NCC003"}
        # keys are sorted at every level
        assert list(doc) == sorted(doc)

    def test_output_artifact_matches_stdout_json(self, tmp_path, capsys):
        out = str(tmp_path / "findings.json")
        argv = [fixture("ncc004_bad.py"), "--format", "json",
                "--baseline", "none", "--output", out]
        assert main(argv) == 1
        stdout = capsys.readouterr().out
        with open(out, encoding="utf-8") as fh:
            assert fh.read() == stdout

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule in out


# ----------------------------------------------------------------------
# The repo itself must lint clean (the CI gate, run as a test)
# ----------------------------------------------------------------------
class TestRepoIsClean:
    def test_src_tests_benchmarks_lint_clean(self):
        result = run_paths(
            [os.path.join(REPO, d) for d in ("src", "tests", "benchmarks")]
        )
        rendered = "\n".join(f.render() for f in result.findings)
        assert result.findings == [], f"repo has lint findings:\n{rendered}"

    def test_checked_in_baseline_is_empty(self):
        assert baseline_mod.load(
            os.path.join(REPO, "reprolint-baseline.json")
        ) == {}
