"""The command-line interface."""

import pytest

from repro.cli import main


class TestInfo:
    def test_prints_model_parameters(self, capsys):
        assert main(["info", "--n", "64"]) == 0
        out = capsys.readouterr().out
        assert "n=64" in out
        assert "capacity" in out

    def test_default_n(self, capsys):
        assert main(["info"]) == 0


class TestRun:
    def test_mis(self, capsys):
        assert main(["run", "mis", "--n", "24", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "MIS" in out and "rounds" in out

    def test_matching_alias(self, capsys):
        assert main(["run", "matching", "--n", "20", "--seed", "1"]) == 0
        assert "MM" in capsys.readouterr().out

    def test_bfs_grid_family(self, capsys):
        assert main(["run", "bfs", "--n", "25", "--family", "grid"]) == 0

    def test_unknown_algorithm(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err


class TestTable1:
    def test_selected_rows(self, capsys):
        assert main(["table1", "--rows", "MIS", "--ns", "16,24", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "T1-MIS" in out
        assert out.count("True") >= 2

    def test_unknown_row_is_error_code(self, capsys):
        assert main(["table1", "--rows", "XYZ", "--ns", "16"]) == 2


class TestSeparation:
    def test_gossip_table(self, capsys):
        assert main(["separation", "--ns", "16,32"]) == 0
        out = capsys.readouterr().out
        assert "Congested Clique" in out
        assert "NCC" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
